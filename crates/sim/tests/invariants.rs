//! Property tests for the simulator's end-to-end invariants: whatever the
//! paths, losses, and scheduler do, the transport must deliver exactly
//! the enqueued byte stream, in order, without inventing or losing data.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{
    CcAlgo, ConnectionConfig, PathConfig, ReceiverMode, SchedulerSpec, Sim, SubflowConfig,
};
use proptest::prelude::*;

const SCHEDULERS: [&str; 5] = [
    "default",
    "roundRobin",
    "redundant",
    "redundantIfNoQ",
    "opportunisticRedundant",
];

fn scheduler_src(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .expect("known scheduler")
}

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    scheduler: &'static str,
    rtts_ms: Vec<u64>,
    loss: f64,
    rate: u64,
    flow_bytes: u64,
    coupled: bool,
    legacy_receiver: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        0..SCHEDULERS.len(),
        proptest::collection::vec(5u64..80, 1..4),
        0.0f64..0.08,
        prop_oneof![Just(250_000u64), Just(1_250_000), Just(5_000_000)],
        1_400u64..200_000,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(seed, sched, rtts_ms, loss, rate, flow_bytes, coupled, legacy_receiver)| Scenario {
                seed,
                scheduler: SCHEDULERS[sched],
                rtts_ms,
                loss,
                rate,
                flow_bytes,
                coupled,
                legacy_receiver,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exactly the enqueued bytes are delivered, in order, for any path
    /// mix, loss rate, congestion control, receiver mode, and scheduler.
    #[test]
    fn transfers_are_exact_and_complete(sc in scenario()) {
        let mut sim = Sim::new(sc.seed);
        let subflows = sc
            .rtts_ms
            .iter()
            .map(|ms| {
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(*ms), sc.rate).with_loss(sc.loss),
                )
            })
            .collect();
        let mut cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl(scheduler_src(sc.scheduler)));
        if sc.coupled {
            cfg = cfg.with_cc(CcAlgo::Lia);
        }
        if sc.legacy_receiver {
            cfg = cfg.with_receiver_mode(ReceiverMode::Legacy);
        }
        let conn = sim.add_connection(cfg).expect("compiles");
        sim.app_send_at(conn, 0, sc.flow_bytes, 0);
        sim.run_to_completion(600 * SECONDS);

        let c = &sim.connections[conn];
        // Deliver exactly once, completely, in order.
        prop_assert!(
            c.all_acked(),
            "{:?}: transfer did not complete (delivered {} of {})",
            sc, c.stats.delivered_bytes, sc.flow_bytes
        );
        prop_assert_eq!(c.stats.delivered_bytes, sc.flow_bytes, "{:?}", sc.clone());
        prop_assert_eq!(c.receiver.delivered_total, sc.flow_bytes, "{:?}", sc.clone());
        // Conservation: unique payload never exceeds total transmitted,
        // and everything enqueued was transmitted at least once.
        prop_assert!(c.stats.unique_tx_bytes <= c.stats.tx_bytes);
        prop_assert!(c.stats.unique_tx_bytes >= sc.flow_bytes);
        prop_assert_eq!(c.stats.enqueued_bytes, sc.flow_bytes, "{:?}", sc.clone());
    }

    /// Congestion windows stay within sane bounds under any loss pattern.
    #[test]
    fn cwnd_bounds_hold(seed in any::<u64>(), loss in 0.0f64..0.15) {
        let mut sim = Sim::new(seed);
        let cfg = ConnectionConfig::new(
            vec![SubflowConfig::new(
                PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(loss),
            )],
            SchedulerSpec::dsl(scheduler_src("default")),
        );
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, 100_000, 0);
        sim.run_to_completion(120 * SECONDS);
        let c = &sim.connections[conn];
        prop_assert!(c.subflows[0].cc.cwnd >= 1, "cwnd never below 1");
        // With a ~20 KB BDP and cwnd validation, the window cannot run away.
        prop_assert!(c.subflows[0].cc.cwnd < 10_000, "cwnd runaway: {}", c.subflows[0].cc.cwnd);
    }

    /// Determinism: identical scenarios are bit-identical.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>()) {
        let run = || {
            let mut sim = Sim::new(seed);
            let cfg = ConnectionConfig::new(
                vec![
                    SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000).with_loss(0.03)),
                    SubflowConfig::new(PathConfig::symmetric(from_millis(35), 1_250_000).with_loss(0.03)),
                ],
                SchedulerSpec::dsl(scheduler_src("default")),
            );
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 60_000, 0);
            sim.run_to_completion(60 * SECONDS);
            let c = &sim.connections[conn];
            (
                c.stats.tx_packets,
                c.stats.subflows[0].wire_losses,
                c.stats.subflows[1].wire_losses,
                sim.events_processed,
            )
        };
        prop_assert_eq!(run(), run());
    }
}
