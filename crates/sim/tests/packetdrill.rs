//! Packetdrill-style scripted receiver tests.
//!
//! Paper §4.2: "We appreciated the use of packetdrill, a tool that uses
//! crafted input packet traces for testing the Linux network stack, to
//! extensively test the receiver side packet handling for incoming packet
//! combinations." This module implements a miniature packetdrill: crafted
//! arrival traces with inline assertions, driven against both receiver
//! modes.
//!
//! Script grammar (one directive per line, `#` comments):
//!
//! ```text
//! mode improved|legacy
//! subflows <n>
//! buf <bytes>
//! arrive sbf=<i> sseq=<n> dseq=<bytes> size=<bytes>
//! expect delivered=<bytes>
//! expect data_ack=<bytes>
//! expect sbf_ack sbf=<i> =<n>
//! expect rwnd=<bytes>
//! ```

use mptcp_sim::receiver::{Receiver, ReceiverMode};
use progmp_core::env::PacketRef;

struct Driver {
    rx: Receiver,
    next_pkt: u64,
    line_no: usize,
}

fn kv(token: &str, key: &str) -> Option<u64> {
    token.strip_prefix(key)?.strip_prefix('=')?.parse().ok()
}

/// Runs a script, panicking with the line number on any failed
/// expectation.
fn run_script(script: &str) {
    let mut mode = ReceiverMode::Improved;
    let mut subflows = 2usize;
    let mut buf = 1u64 << 20;
    let mut driver: Option<Driver> = None;

    for (i, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let cmd = tokens.next().expect("non-empty line");
        match cmd {
            "mode" => {
                mode = match tokens.next() {
                    Some("improved") => ReceiverMode::Improved,
                    Some("legacy") => ReceiverMode::Legacy,
                    other => panic!("line {}: bad mode {other:?}", i + 1),
                };
            }
            "subflows" => {
                subflows = tokens.next().and_then(|t| t.parse().ok()).expect("count");
            }
            "buf" => {
                buf = tokens.next().and_then(|t| t.parse().ok()).expect("bytes");
            }
            "arrive" => {
                let d = driver.get_or_insert_with(|| Driver {
                    rx: Receiver::new(mode, subflows, buf),
                    next_pkt: 1,
                    line_no: 0,
                });
                d.line_no = i + 1;
                let (mut sbf, mut sseq, mut dseq, mut size) = (None, None, None, None);
                for t in tokens {
                    if let Some(v) = kv(t, "sbf") {
                        sbf = Some(v as usize);
                    } else if let Some(v) = kv(t, "sseq") {
                        sseq = Some(v);
                    } else if let Some(v) = kv(t, "dseq") {
                        dseq = Some(v);
                    } else if let Some(v) = kv(t, "size") {
                        size = Some(v as u32);
                    } else {
                        panic!("line {}: bad token {t}", i + 1);
                    }
                }
                let pkt = PacketRef(d.next_pkt);
                d.next_pkt += 1;
                d.rx.on_arrival(
                    sbf.expect("sbf"),
                    sseq.expect("sseq"),
                    dseq.expect("dseq"),
                    pkt,
                    size.expect("size"),
                );
            }
            "expect" => {
                let d = driver.as_ref().expect("arrive before expect");
                let rest: Vec<&str> = tokens.collect();
                match rest.as_slice() {
                    [t] if t.starts_with("delivered=") => {
                        let want = kv(t, "delivered").expect("bytes");
                        assert_eq!(
                            d.rx.delivered_total,
                            want,
                            "line {}: delivered_total",
                            i + 1
                        );
                    }
                    [t] if t.starts_with("data_ack=") => {
                        let want = kv(t, "data_ack").expect("bytes");
                        assert_eq!(d.rx.expected(), want, "line {}: data_ack", i + 1);
                    }
                    [t] if t.starts_with("rwnd=") => {
                        let want = kv(t, "rwnd").expect("bytes");
                        assert_eq!(d.rx.rwnd(), want, "line {}: rwnd", i + 1);
                    }
                    ["sbf_ack", s, v] => {
                        let sbf = kv(s, "sbf").expect("sbf") as usize;
                        let want: u64 = v.strip_prefix('=').expect("=n").parse().expect("n");
                        assert_eq!(d.rx.sbf_ack(sbf), want, "line {}: sbf_ack", i + 1);
                    }
                    other => panic!("line {}: bad expectation {other:?}", i + 1),
                }
            }
            other => panic!("line {}: unknown directive {other}", i + 1),
        }
    }
}

#[test]
fn drill_in_order_single_subflow() {
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=0 dseq=0    size=1000
        expect delivered=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000
        expect delivered=2000
        expect data_ack=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}

#[test]
fn drill_cross_subflow_reordering() {
    run_script(
        "
        mode improved
        subflows 2
        # Second kilobyte arrives first, on the other subflow.
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        expect delivered=0
        expect rwnd=1047576          # 1 MiB minus the buffered kilobyte
        arrive sbf=0 sseq=0 dseq=0 size=1000
        expect delivered=2000
        expect rwnd=1048576
        ",
    );
}

#[test]
fn drill_paper_blocking_pattern_improved() {
    // The §4.2 pattern: subflow 0's first transmission (dseq 1000) is
    // lost; its second (dseq 0) arrives subflow-out-of-order but is
    // meta-in-order. The improved receiver delivers immediately.
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=1 dseq=0 size=1000
        expect delivered=1000
        expect sbf_ack sbf=0 =0      # the subflow-level hole remains
        arrive sbf=0 sseq=0 dseq=1000 size=1000   # retransmission
        expect delivered=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}

#[test]
fn drill_paper_blocking_pattern_legacy() {
    // Same trace on the legacy receiver: delivery is blocked until the
    // subflow-level hole fills.
    run_script(
        "
        mode legacy
        subflows 1
        arrive sbf=0 sseq=1 dseq=0 size=1000
        expect delivered=0           # held in the subflow OOO queue
        arrive sbf=0 sseq=0 dseq=1000 size=1000
        expect delivered=2000
        ",
    );
}

#[test]
fn drill_redundant_copies_are_idempotent() {
    run_script(
        "
        mode improved
        subflows 2
        arrive sbf=0 sseq=0 dseq=0 size=1000
        arrive sbf=1 sseq=0 dseq=0 size=1000   # redundant copy
        expect delivered=1000
        arrive sbf=1 sseq=1 dseq=1000 size=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000 # redundant copy, reversed
        expect delivered=2000
        expect sbf_ack sbf=0 =2
        expect sbf_ack sbf=1 =2
        ",
    );
}

#[test]
fn drill_interleaved_losses_both_subflows() {
    run_script(
        "
        mode improved
        subflows 2
        # Striped transfer, one loss per subflow, recovered at the end.
        arrive sbf=0 sseq=0 dseq=0    size=1000
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        # sbf=0 sseq=1 (dseq 2000) lost; sbf=1 sseq=1 (dseq 3000) lost
        arrive sbf=0 sseq=2 dseq=4000 size=1000
        arrive sbf=1 sseq=2 dseq=5000 size=1000
        expect delivered=2000
        expect sbf_ack sbf=0 =1
        arrive sbf=0 sseq=1 dseq=2000 size=1000   # retransmission
        expect delivered=3000
        expect sbf_ack sbf=0 =3
        arrive sbf=1 sseq=1 dseq=3000 size=1000   # retransmission
        expect delivered=6000
        expect sbf_ack sbf=1 =3
        ",
    );
}

#[test]
fn drill_legacy_holds_chain_until_gap_fills() {
    run_script(
        "
        mode legacy
        subflows 2
        arrive sbf=0 sseq=0 dseq=0    size=1000
        expect delivered=1000
        # Three in-data-order packets on sbf 1 whose first copy is lost.
        arrive sbf=1 sseq=1 dseq=2000 size=1000
        arrive sbf=1 sseq=2 dseq=3000 size=1000
        expect delivered=1000
        expect sbf_ack sbf=1 =0
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        expect delivered=4000
        expect sbf_ack sbf=1 =3
        ",
    );
}

// ---------------------------------------------------------------------------
// Scripted fault scenarios: packetdrill-style crafted *network* traces
// (scheduler + engine level), complementing the receiver scripts above.
// ---------------------------------------------------------------------------

mod blackout {
    use mptcp_sim::time::{from_millis, SECONDS};
    use mptcp_sim::{
        ConnectionConfig, FaultClause, FaultPlan, PathConfig, SchedulerSpec, Sim, SubflowConfig,
    };

    const FLOW: u64 = 500_000;

    fn two_path_sim(seed: u64, source: &str) -> (Sim, usize) {
        let mut sim = Sim::new(seed);
        sim.enable_oracle("packetdrill-blackout", true);
        let cfg = ConnectionConfig::new(
            vec![
                // Subflow 0 is the best (lowest-RTT) subflow.
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
                SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
            ],
            SchedulerSpec::dsl(source),
        );
        let conn = sim.add_connection(cfg).expect("compiles");
        // A backlogged bulk source (not a one-shot enqueue) so pushes —
        // and therefore the per-path loss draws — spread over the
        // transfer instead of clustering at t=0.
        sim.add_bulk_source(conn, FLOW, 0);
        (sim, conn)
    }

    fn scheduler_src(name: &str) -> &'static str {
        progmp_schedulers::sources::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .expect("known scheduler")
    }

    /// Full blackout of the best subflow for the remainder of the run:
    /// the redundant scheduler sends every packet on every subflow, so
    /// delivery must still complete over the surviving slow subflow.
    #[test]
    fn redundant_survives_permanent_blackout_of_best_subflow() {
        let (mut sim, conn) = two_path_sim(7, scheduler_src("redundant"));
        sim.apply_fault_plan(
            conn,
            &FaultPlan {
                clauses: vec![FaultClause::Blackout {
                    sbf: 0,
                    from: from_millis(120),
                    until: 600 * SECONDS,
                }],
            },
        );
        sim.run_to_completion(600 * SECONDS);

        let c = &sim.connections[conn];
        assert!(
            c.all_acked(),
            "redundant must deliver despite the blackout: {} of {FLOW}",
            c.stats.delivered_bytes
        );
        assert_eq!(c.stats.delivered_bytes, FLOW);
        assert!(
            c.stats.subflows[0].wire_losses > 0,
            "the blackout actually ate traffic on the best subflow"
        );
        assert!(sim.oracle_violations().is_empty());
    }

    /// Transient full blackout of the only subflow minRttSimple uses:
    /// in-flight segments are lost, RTOs fire, segments enter the
    /// reinjection queue, and once the path heals the transfer recovers
    /// and completes exactly.
    #[test]
    fn min_rtt_reinjects_and_recovers_from_blackout() {
        let source = include_str!("../../../examples/schedulers/min_rtt.progmp");
        let (mut sim, conn) = two_path_sim(11, source);
        // minRttSimple has no congestion-window gate, so even the bulk
        // source's pushes cluster in the transfer's first milliseconds;
        // the window starts at 2 ms to cover them.
        sim.apply_fault_plan(
            conn,
            &FaultPlan {
                clauses: vec![FaultClause::Blackout {
                    sbf: 0,
                    from: from_millis(2),
                    until: from_millis(2_000),
                }],
            },
        );
        sim.run_to_completion(600 * SECONDS);

        let c = &sim.connections[conn];
        assert!(
            c.all_acked(),
            "min_rtt must recover after the blackout clears: {} of {FLOW}",
            c.stats.delivered_bytes
        );
        assert_eq!(c.stats.delivered_bytes, FLOW);
        assert_eq!(c.receiver.delivered_total, FLOW);
        assert!(
            c.stats.subflows[0].timeouts >= 1,
            "the blackout must force at least one RTO"
        );
        assert!(
            c.stats.reinjections > 0,
            "lost segments must pass through the reinjection queue"
        );
        assert!(sim.oracle_violations().is_empty());
    }
}

#[test]
fn drill_old_duplicates_do_not_regress_state() {
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=0 dseq=0    size=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000
        expect delivered=2000
        arrive sbf=0 sseq=0 dseq=0    size=1000   # stale duplicate
        expect delivered=2000
        expect data_ack=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}
