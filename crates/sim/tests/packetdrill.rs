//! Packetdrill-style scripted receiver tests.
//!
//! Paper §4.2: "We appreciated the use of packetdrill, a tool that uses
//! crafted input packet traces for testing the Linux network stack, to
//! extensively test the receiver side packet handling for incoming packet
//! combinations." This module implements a miniature packetdrill: crafted
//! arrival traces with inline assertions, driven against both receiver
//! modes.
//!
//! Script grammar (one directive per line, `#` comments):
//!
//! ```text
//! mode improved|legacy
//! subflows <n>
//! buf <bytes>
//! arrive sbf=<i> sseq=<n> dseq=<bytes> size=<bytes>
//! expect delivered=<bytes>
//! expect data_ack=<bytes>
//! expect sbf_ack sbf=<i> =<n>
//! expect rwnd=<bytes>
//! ```

use mptcp_sim::receiver::{Receiver, ReceiverMode};
use progmp_core::env::PacketRef;

struct Driver {
    rx: Receiver,
    next_pkt: u64,
    line_no: usize,
}

fn kv(token: &str, key: &str) -> Option<u64> {
    token.strip_prefix(key)?.strip_prefix('=')?.parse().ok()
}

/// Runs a script, panicking with the line number on any failed
/// expectation.
fn run_script(script: &str) {
    let mut mode = ReceiverMode::Improved;
    let mut subflows = 2usize;
    let mut buf = 1u64 << 20;
    let mut driver: Option<Driver> = None;

    for (i, raw) in script.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let cmd = tokens.next().expect("non-empty line");
        match cmd {
            "mode" => {
                mode = match tokens.next() {
                    Some("improved") => ReceiverMode::Improved,
                    Some("legacy") => ReceiverMode::Legacy,
                    other => panic!("line {}: bad mode {other:?}", i + 1),
                };
            }
            "subflows" => {
                subflows = tokens.next().and_then(|t| t.parse().ok()).expect("count");
            }
            "buf" => {
                buf = tokens.next().and_then(|t| t.parse().ok()).expect("bytes");
            }
            "arrive" => {
                let d = driver.get_or_insert_with(|| Driver {
                    rx: Receiver::new(mode, subflows, buf),
                    next_pkt: 1,
                    line_no: 0,
                });
                d.line_no = i + 1;
                let (mut sbf, mut sseq, mut dseq, mut size) = (None, None, None, None);
                for t in tokens {
                    if let Some(v) = kv(t, "sbf") {
                        sbf = Some(v as usize);
                    } else if let Some(v) = kv(t, "sseq") {
                        sseq = Some(v);
                    } else if let Some(v) = kv(t, "dseq") {
                        dseq = Some(v);
                    } else if let Some(v) = kv(t, "size") {
                        size = Some(v as u32);
                    } else {
                        panic!("line {}: bad token {t}", i + 1);
                    }
                }
                let pkt = PacketRef(d.next_pkt);
                d.next_pkt += 1;
                d.rx.on_arrival(
                    sbf.expect("sbf"),
                    sseq.expect("sseq"),
                    dseq.expect("dseq"),
                    pkt,
                    size.expect("size"),
                );
            }
            "expect" => {
                let d = driver.as_ref().expect("arrive before expect");
                let rest: Vec<&str> = tokens.collect();
                match rest.as_slice() {
                    [t] if t.starts_with("delivered=") => {
                        let want = kv(t, "delivered").expect("bytes");
                        assert_eq!(
                            d.rx.delivered_total,
                            want,
                            "line {}: delivered_total",
                            i + 1
                        );
                    }
                    [t] if t.starts_with("data_ack=") => {
                        let want = kv(t, "data_ack").expect("bytes");
                        assert_eq!(d.rx.expected(), want, "line {}: data_ack", i + 1);
                    }
                    [t] if t.starts_with("rwnd=") => {
                        let want = kv(t, "rwnd").expect("bytes");
                        assert_eq!(d.rx.rwnd(), want, "line {}: rwnd", i + 1);
                    }
                    ["sbf_ack", s, v] => {
                        let sbf = kv(s, "sbf").expect("sbf") as usize;
                        let want: u64 = v.strip_prefix('=').expect("=n").parse().expect("n");
                        assert_eq!(d.rx.sbf_ack(sbf), want, "line {}: sbf_ack", i + 1);
                    }
                    other => panic!("line {}: bad expectation {other:?}", i + 1),
                }
            }
            other => panic!("line {}: unknown directive {other}", i + 1),
        }
    }
}

#[test]
fn drill_in_order_single_subflow() {
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=0 dseq=0    size=1000
        expect delivered=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000
        expect delivered=2000
        expect data_ack=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}

#[test]
fn drill_cross_subflow_reordering() {
    run_script(
        "
        mode improved
        subflows 2
        # Second kilobyte arrives first, on the other subflow.
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        expect delivered=0
        expect rwnd=1047576          # 1 MiB minus the buffered kilobyte
        arrive sbf=0 sseq=0 dseq=0 size=1000
        expect delivered=2000
        expect rwnd=1048576
        ",
    );
}

#[test]
fn drill_paper_blocking_pattern_improved() {
    // The §4.2 pattern: subflow 0's first transmission (dseq 1000) is
    // lost; its second (dseq 0) arrives subflow-out-of-order but is
    // meta-in-order. The improved receiver delivers immediately.
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=1 dseq=0 size=1000
        expect delivered=1000
        expect sbf_ack sbf=0 =0      # the subflow-level hole remains
        arrive sbf=0 sseq=0 dseq=1000 size=1000   # retransmission
        expect delivered=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}

#[test]
fn drill_paper_blocking_pattern_legacy() {
    // Same trace on the legacy receiver: delivery is blocked until the
    // subflow-level hole fills.
    run_script(
        "
        mode legacy
        subflows 1
        arrive sbf=0 sseq=1 dseq=0 size=1000
        expect delivered=0           # held in the subflow OOO queue
        arrive sbf=0 sseq=0 dseq=1000 size=1000
        expect delivered=2000
        ",
    );
}

#[test]
fn drill_redundant_copies_are_idempotent() {
    run_script(
        "
        mode improved
        subflows 2
        arrive sbf=0 sseq=0 dseq=0 size=1000
        arrive sbf=1 sseq=0 dseq=0 size=1000   # redundant copy
        expect delivered=1000
        arrive sbf=1 sseq=1 dseq=1000 size=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000 # redundant copy, reversed
        expect delivered=2000
        expect sbf_ack sbf=0 =2
        expect sbf_ack sbf=1 =2
        ",
    );
}

#[test]
fn drill_interleaved_losses_both_subflows() {
    run_script(
        "
        mode improved
        subflows 2
        # Striped transfer, one loss per subflow, recovered at the end.
        arrive sbf=0 sseq=0 dseq=0    size=1000
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        # sbf=0 sseq=1 (dseq 2000) lost; sbf=1 sseq=1 (dseq 3000) lost
        arrive sbf=0 sseq=2 dseq=4000 size=1000
        arrive sbf=1 sseq=2 dseq=5000 size=1000
        expect delivered=2000
        expect sbf_ack sbf=0 =1
        arrive sbf=0 sseq=1 dseq=2000 size=1000   # retransmission
        expect delivered=3000
        expect sbf_ack sbf=0 =3
        arrive sbf=1 sseq=1 dseq=3000 size=1000   # retransmission
        expect delivered=6000
        expect sbf_ack sbf=1 =3
        ",
    );
}

#[test]
fn drill_legacy_holds_chain_until_gap_fills() {
    run_script(
        "
        mode legacy
        subflows 2
        arrive sbf=0 sseq=0 dseq=0    size=1000
        expect delivered=1000
        # Three in-data-order packets on sbf 1 whose first copy is lost.
        arrive sbf=1 sseq=1 dseq=2000 size=1000
        arrive sbf=1 sseq=2 dseq=3000 size=1000
        expect delivered=1000
        expect sbf_ack sbf=1 =0
        arrive sbf=1 sseq=0 dseq=1000 size=1000
        expect delivered=4000
        expect sbf_ack sbf=1 =3
        ",
    );
}

#[test]
fn drill_old_duplicates_do_not_regress_state() {
    run_script(
        "
        mode improved
        subflows 1
        arrive sbf=0 sseq=0 dseq=0    size=1000
        arrive sbf=0 sseq=1 dseq=1000 size=1000
        expect delivered=2000
        arrive sbf=0 sseq=0 dseq=0    size=1000   # stale duplicate
        expect delivered=2000
        expect data_ack=2000
        expect sbf_ack sbf=0 =2
        ",
    );
}
