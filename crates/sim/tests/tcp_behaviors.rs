//! End-to-end TCP-machinery behaviours of the simulator: coupled
//! congestion control, bounded receive buffers, tiny link queues, and
//! recovery timers all keep transfers correct.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{CcAlgo, ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};

const MIN_RTT: &str = progmp_schedulers::DEFAULT_MIN_RTT;

fn transfer_time(cc: CcAlgo, loss: f64, recv_buf: u64, queue_cap: usize, bytes: u64) -> u64 {
    let mut sim = Sim::new(4242);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(
                PathConfig::symmetric(from_millis(20), 1_250_000)
                    .with_loss(loss)
                    .with_queue_cap(queue_cap),
            ),
            SubflowConfig::new(
                PathConfig::symmetric(from_millis(30), 1_250_000)
                    .with_loss(loss)
                    .with_queue_cap(queue_cap),
            ),
        ],
        SchedulerSpec::dsl(MIN_RTT),
    )
    .with_cc(cc)
    .with_recv_buf(recv_buf)
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.add_bulk_source(conn, bytes, 0);
    sim.run_to_completion(600 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked(), "transfer must complete");
    c.stats.delivery_time_of(bytes).expect("completed")
}

#[test]
fn lia_is_no_more_aggressive_than_uncoupled_reno() {
    // RFC 6356: the coupled increase never exceeds the uncoupled one, so
    // a LIA transfer can only be slower or equal.
    let reno = transfer_time(CcAlgo::Reno, 0.0, 4 << 20, 1000, 3_000_000);
    let lia = transfer_time(CcAlgo::Lia, 0.0, 4 << 20, 1000, 3_000_000);
    assert!(
        lia >= reno,
        "LIA ({lia}) must not beat uncoupled Reno ({reno})"
    );
    // But both still aggregate the two paths: bounded by ~2.4 MB/s.
    assert!(lia < 3 * SECONDS, "LIA still aggregates both paths: {lia}");
}

#[test]
fn tiny_receive_buffer_still_delivers_everything() {
    // A 16 KB receive buffer bounds out-of-order buffering hard; the
    // transfer must still complete exactly.
    let t = transfer_time(CcAlgo::Reno, 0.01, 16 * 1024, 1000, 500_000);
    assert!(t < 600 * SECONDS);
}

#[test]
fn tiny_link_queue_recovers_from_tail_drops() {
    // A 5-packet egress queue causes heavy local drops under slow-start
    // bursts; loss recovery must still deliver everything.
    let t = transfer_time(CcAlgo::Reno, 0.0, 4 << 20, 5, 1_000_000);
    assert!(t < 600 * SECONDS);
}

#[test]
fn severe_random_loss_still_completes() {
    let t = transfer_time(CcAlgo::Reno, 0.15, 4 << 20, 1000, 200_000);
    assert!(t < 600 * SECONDS);
}

#[test]
fn tail_loss_probe_bounds_last_packet_recovery() {
    // A thin flow on a path that loses a lot: TLP (PTO ≈ 2*RTT + 10 ms)
    // keeps per-flow completion well under the 200 ms minimum RTO in the
    // common case. Statistically: the median over seeds must be far below
    // the RTO floor even with 10% loss.
    let mut times: Vec<u64> = (0..30)
        .map(|seed| {
            let mut sim = Sim::new(9000 + seed);
            let cfg = ConnectionConfig::new(
                vec![SubflowConfig::new(
                    PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(0.10),
                )],
                SchedulerSpec::dsl(MIN_RTT),
            )
            .with_timelines();
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 4 * 1400, 0);
            sim.run_to_completion(120 * SECONDS);
            let c = &sim.connections[conn];
            assert!(c.all_acked());
            c.stats.delivery_time_of(4 * 1400).unwrap()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    assert!(
        median < 100 * from_millis(1),
        "median FCT {median} should stay below the RTO floor thanks to TLP"
    );
}

#[test]
fn per_subflow_counters_are_consistent() {
    let mut sim = Sim::new(5);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000).with_loss(0.02)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(25), 1_250_000).with_loss(0.02)),
        ],
        SchedulerSpec::dsl(MIN_RTT),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.app_send_at(conn, 0, 300_000, 0);
    sim.run_to_completion(120 * SECONDS);
    let c = &sim.connections[conn];
    let per_sbf_pkts: u64 = c.stats.subflows.iter().map(|s| s.tx_packets).sum();
    let per_sbf_bytes: u64 = c.stats.subflows.iter().map(|s| s.tx_bytes).sum();
    assert_eq!(per_sbf_pkts, c.stats.tx_packets);
    assert_eq!(per_sbf_bytes, c.stats.tx_bytes);
    let timeline_bytes: u64 = c
        .stats
        .tx_timeline
        .iter()
        .map(|(_, _, b)| u64::from(*b))
        .sum();
    assert_eq!(timeline_bytes, c.stats.tx_bytes);
    for s in &c.stats.subflows {
        assert!(s.wire_losses <= s.tx_packets);
        assert!(s.retransmissions <= s.tx_packets);
    }
}
