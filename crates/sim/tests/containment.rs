//! Containment-tier regression suite (TESTING.md): the supervisor must
//! convert every scheduler fault class into quarantine + fallback +
//! deterministic backoff re-admission, with zero panics and zero
//! permanently stalled connections, and every incident must be
//! reproducible from its replay string alone.

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{
    ConnectionConfig, ContainAction, ContainState, ContainmentConfig, FaultClass, NativeTrapping,
    PathConfig, SchedulerSpec, Sim, SubflowConfig,
};

/// A scheduler whose certificate proves work-conservation.
const PROVED_WC_DSL: &str =
    "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

/// Never pushes (R1 defaults to 0), and its honest certificate knows it.
const REGISTER_GATED_DSL: &str =
    "IF (R1 > 0 AND !Q.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

fn two_paths() -> Vec<SubflowConfig> {
    vec![
        SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
        SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
    ]
}

/// Builds a contained, oracle-panicking sim: any *uncontained* violation
/// aborts the test, which is exactly the "zero panics" guarantee the
/// supervisor makes.
fn contained_sim(seed: u64, cfg: ConnectionConfig) -> Sim {
    let mut sim = Sim::new(seed);
    sim.enable_containment(ContainmentConfig::default());
    sim.enable_oracle(format!("seed {seed}"), true);
    sim.add_connection(cfg).unwrap();
    sim
}

#[test]
fn step_budget_bomb_completes_via_fallback_and_pins() {
    let mut cfg = ConnectionConfig::new(two_paths(), SchedulerSpec::dsl(PROVED_WC_DSL));
    cfg.step_budget = 3; // certified bound is far larger; 3 aborts every run
    let mut sim = contained_sim(7, cfg);
    sim.app_send_at(0, 0, 200_000, 0);
    sim.run_to_completion(60 * SECONDS);

    assert!(
        sim.connections[0].all_acked(),
        "the fallback must drain the transfer the bombed scheduler cannot"
    );
    let sup = sim.supervisor().unwrap();
    assert_eq!(sup.state(0), ContainState::Pinned, "persistent fault pins");
    let first = &sim.incidents()[0];
    assert_eq!(first.action, ContainAction::Quarantined);
    assert_eq!(first.class, FaultClass::StepBudget { budget: 3 });
    assert!(first.backoff > 0);
    assert!(
        sim.incidents()
            .iter()
            .any(|i| i.action == ContainAction::Pinned),
        "three strikes trip the per-connection breaker: {:?}",
        sim.incidents()
    );
    // One exec abort per strike — not one per trigger: the fallback,
    // not the broken program, handles all intermediate triggers.
    assert_eq!(sim.connections[0].stats.scheduler_errors, 3);
    assert!(
        sim.oracle_violations().is_empty(),
        "contained, not reported"
    );
}

#[test]
fn starver_is_contained_by_the_stall_watchdog() {
    let cfg = ConnectionConfig::new(two_paths(), SchedulerSpec::dsl("RETURN;"));
    let mut sim = contained_sim(11, cfg);
    sim.app_send_at(0, 0, 150_000, 0);
    sim.run_to_completion(60 * SECONDS);

    assert!(
        sim.connections[0].all_acked(),
        "no permanently stalled connection under containment"
    );
    let stall = sim
        .incidents()
        .iter()
        .find(|i| i.class == FaultClass::ProgressStall)
        .expect("the watchdog must classify a starver as a progress stall");
    assert_eq!(stall.action, ContainAction::Quarantined);
    // The watchdog ticks on the connection's own clock: first check one
    // period after the data arrived.
    assert_eq!(stall.at, ContainmentConfig::default().stall_check_interval);
}

#[test]
fn backend_trap_is_contained_with_its_origin() {
    let cfg = ConnectionConfig::new(
        two_paths(),
        SchedulerSpec::Native(Box::new(NativeTrapping::new(2))),
    );
    let mut sim = contained_sim(13, cfg);
    sim.app_send_at(0, 0, 150_000, 0);
    sim.run_to_completion(60 * SECONDS);

    assert!(sim.connections[0].all_acked());
    assert!(
        sim.incidents().iter().any(|i| matches!(
            &i.class,
            FaultClass::BackendTrap {
                origin: "native-trapping",
                ..
            }
        )),
        "{:?}",
        sim.incidents()
    );
}

#[test]
fn transient_fault_survives_probationary_readmission() {
    let cfg = ConnectionConfig::new(
        two_paths(),
        SchedulerSpec::Native(Box::new(NativeTrapping::one_shot(2))),
    );
    let mut sim = contained_sim(17, cfg);
    sim.app_send_at(0, 0, 500_000, 0);
    sim.run_to_completion(60 * SECONDS);

    assert!(sim.connections[0].all_acked());
    let sup = sim.supervisor().unwrap();
    assert_eq!(
        sup.state(0),
        ContainState::Probation,
        "one transient trap must not pin: the original scheduler is back"
    );
    let actions: Vec<ContainAction> = sim.incidents().iter().map(|i| i.action).collect();
    assert_eq!(
        actions,
        vec![ContainAction::Quarantined, ContainAction::Readmitted],
        "exactly one quarantine/readmit cycle: {:?}",
        sim.incidents()
    );
}

#[test]
fn certificate_violation_is_quarantined_not_panicked() {
    // Pair a never-pushing scheduler with a stolen proved-WC certificate:
    // a faked verifier soundness gap. The oracle is in panicking mode, so
    // without containment routing this test would abort.
    let proved_cert = progmp_core::compile(PROVED_WC_DSL)
        .unwrap()
        .property_certificate()
        .clone();
    let cfg = ConnectionConfig::new(two_paths(), SchedulerSpec::dsl(REGISTER_GATED_DSL))
        .with_cert_override(proved_cert);
    let mut sim = contained_sim(19, cfg);
    sim.app_send_at(0, 0, 150_000, 0);
    sim.run_to_completion(60 * SECONDS);

    assert!(sim.connections[0].all_acked());
    let first = &sim.incidents()[0];
    assert_eq!(
        first.class,
        FaultClass::OracleViolation {
            invariant: "property-work-conservation"
        },
        "{:?}",
        sim.incidents()
    );
    assert_eq!(first.at, 0, "caught on the very first execution");
    assert!(
        !sim.oracle_violations().is_empty(),
        "the violation stays on record even though it was contained"
    );
}

#[test]
fn incident_replay_string_reproduces_the_fault() {
    let build = || {
        let mut cfg = ConnectionConfig::new(two_paths(), SchedulerSpec::dsl(PROVED_WC_DSL));
        cfg.step_budget = 3;
        cfg
    };
    let mut sim = contained_sim(23, build());
    sim.app_send_at(0, 0, 200_000, 0);
    sim.run_to_completion(60 * SECONDS);
    let incident = sim.incidents()[0].clone();

    // Parse the integer-only replay string back into a scenario...
    let mut seed = None;
    let mut conn = None;
    let mut class = None;
    let mut at = None;
    for tok in incident.replay.split_whitespace() {
        let (k, v) = tok.split_once('=').expect("k=v tokens");
        match k {
            "seed" => seed = Some(v.parse::<u64>().unwrap()),
            "conn" => conn = Some(v.parse::<u64>().unwrap()),
            "class" => class = Some(v.to_string()),
            "at" => at = Some(v.parse::<u64>().unwrap()),
            other => panic!("unknown replay key {other}"),
        }
    }
    // ...and re-run it: the same fault recurs at the same simulated time.
    let mut replay = contained_sim(seed.unwrap(), build());
    replay.app_send_at(0, 0, 200_000, 0);
    replay.run_to_completion(60 * SECONDS);
    let class = class.unwrap();
    assert!(
        replay
            .incidents()
            .iter()
            .any(|i| i.conn == conn.unwrap() && i.at == at.unwrap() && i.class.name() == class),
        "replay must reproduce the incident: {:?}",
        replay.incidents()
    );

    // Full determinism: the entire incident log is bit-identical.
    let a: Vec<String> = sim.incidents().iter().map(|i| i.to_string()).collect();
    let b: Vec<String> = replay.incidents().iter().map(|i| i.to_string()).collect();
    assert_eq!(a, b);
}

#[test]
fn without_containment_faults_surface_the_old_way() {
    let mut cfg = ConnectionConfig::new(two_paths(), SchedulerSpec::dsl(PROVED_WC_DSL));
    cfg.step_budget = 3;
    let mut sim = Sim::new(29);
    sim.enable_oracle("seed 29", false); // collect, not panic
    sim.add_connection(cfg).unwrap();
    sim.app_send_at(0, 0, 200_000, 0);
    sim.run_to_completion(10 * SECONDS);

    assert!(sim.supervisor().is_none());
    assert!(sim.incidents().is_empty());
    assert!(
        !sim.connections[0].all_acked(),
        "no fallback: the bombed scheduler strands the transfer"
    );
    assert!(
        sim.oracle_violations()
            .iter()
            .any(|v| v.invariant == "step-bound"),
        "without containment the oracle reports instead: {:?}",
        sim.oracle_violations()
    );
    assert!(sim.connections[0].stats.scheduler_errors > 0);
}
