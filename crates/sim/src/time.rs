//! Simulation time: integer nanoseconds since simulation start.

/// A point in simulated time, in nanoseconds since simulation start.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROS: SimTime = 1_000;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000_000;
/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000_000;

/// Converts a nanosecond time to whole microseconds.
pub fn as_micros(t: SimTime) -> u64 {
    t / MICROS
}

/// Converts a nanosecond time to fractional seconds.
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / SECONDS as f64
}

/// Converts milliseconds to [`SimTime`].
pub fn from_millis(ms: u64) -> SimTime {
    ms * MILLIS
}

/// Converts microseconds to [`SimTime`].
pub fn from_micros(us: u64) -> SimTime {
    us * MICROS
}

/// Converts fractional seconds to [`SimTime`].
pub fn from_secs_f64(s: f64) -> SimTime {
    (s * SECONDS as f64) as SimTime
}

/// Duration of serializing `bytes` at `rate_bps` bytes/second.
pub fn serialize_time(bytes: u64, rate_byte_per_sec: u64) -> SimTime {
    if rate_byte_per_sec == 0 {
        return 0;
    }
    bytes.saturating_mul(SECONDS) / rate_byte_per_sec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(from_millis(3), 3_000_000);
        assert_eq!(from_micros(5), 5_000);
        assert_eq!(as_micros(from_micros(42)), 42);
        assert!((as_secs_f64(SECONDS) - 1.0).abs() < 1e-12);
        assert_eq!(from_secs_f64(0.5), 500 * MILLIS);
    }

    #[test]
    fn serialization_time() {
        // 1250 bytes at 1,250,000 B/s (10 Mbit/s) = 1 ms.
        assert_eq!(serialize_time(1250, 1_250_000), MILLIS);
        assert_eq!(
            serialize_time(100, 0),
            0,
            "zero rate treated as instantaneous"
        );
    }
}
