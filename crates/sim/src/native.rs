//! Native Rust schedulers.
//!
//! The paper compares its runtime environments against the C
//! implementations compiled into the kernel (Fig. 9). A
//! [`NativeScheduler`] is the Rust analogue: it runs against the same
//! [`progmp_core::exec::ExecCtx`] effect model (so semantics and the
//! no-packet-loss guarantee are identical) but with zero interpretation
//! overhead.

use progmp_core::env::{QueueKind, SubflowProp};
use progmp_core::exec::{ExecCtx, NULL_HANDLE};
use progmp_core::ExecError;

/// A scheduler implemented directly in Rust.
pub trait NativeScheduler {
    /// Scheduler name for diagnostics.
    fn name(&self) -> &str;

    /// Performs one scheduler execution against the environment context.
    fn schedule(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError>;
}

/// Native reimplementation of the Linux default (minimum-RTT) scheduler:
/// reinjections first, then the lowest-RTT subflow with a free congestion
/// window, skipping TSQ-throttled, lossy, and backup subflows (backups are
/// used only when no non-backup subflow exists).
#[derive(Debug, Default, Clone)]
pub struct NativeMinRtt;

/// Selects the minimum-RTT subflow with window space, honoring backup
/// semantics. Returns [`NULL_HANDLE`] when none qualifies.
pub fn pick_min_rtt_subflow(ctx: &ExecCtx<'_>) -> i64 {
    let n = ctx.subflow_count();
    // Kernel backup semantics: backup subflows are eligible only when no
    // non-backup subflow is established at all.
    let mut any_non_backup = false;
    for i in 0..n {
        let s = ctx.subflow_at(i);
        if ctx.subflow_prop(s, SubflowProp::IsBackup) == 0 {
            any_non_backup = true;
            break;
        }
    }
    let mut best = NULL_HANDLE;
    let mut best_rtt = i64::MAX;
    for i in 0..n {
        let s = ctx.subflow_at(i);
        if any_non_backup && ctx.subflow_prop(s, SubflowProp::IsBackup) != 0 {
            continue;
        }
        if ctx.subflow_prop(s, SubflowProp::TsqThrottled) != 0
            || ctx.subflow_prop(s, SubflowProp::Lossy) != 0
        {
            continue;
        }
        let cwnd = ctx.subflow_prop(s, SubflowProp::Cwnd);
        let in_flight = ctx.subflow_prop(s, SubflowProp::SkbsInFlight)
            + ctx.subflow_prop(s, SubflowProp::Queued);
        if cwnd <= in_flight {
            continue;
        }
        let rtt = ctx.subflow_prop(s, SubflowProp::Rtt);
        if best == NULL_HANDLE || rtt < best_rtt {
            best = s;
            best_rtt = rtt;
        }
    }
    best
}

impl NativeScheduler for NativeMinRtt {
    fn name(&self) -> &str {
        "native-minrtt"
    }

    fn schedule(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        ctx.step(1)?;
        let sbf = pick_min_rtt_subflow(ctx);
        if sbf == NULL_HANDLE {
            return Ok(());
        }
        // Reinjection queue has priority; skip copies already sent on this
        // subflow when possible.
        let rq_len = ctx.queue_raw_len(QueueKind::Reinject);
        for i in 0..rq_len {
            ctx.step(1)?;
            let pkt = ctx.queue_get(QueueKind::Reinject, i);
            if pkt == NULL_HANDLE {
                continue;
            }
            if ctx.sent_on(pkt, sbf) == 0 {
                ctx.pop(pkt);
                ctx.push(sbf, pkt);
                return Ok(());
            }
        }
        // Fall back to any reinjection, then fresh data.
        let pkt = ctx.queue_get(QueueKind::Reinject, 0);
        if pkt != NULL_HANDLE {
            ctx.pop(pkt);
            ctx.push(sbf, pkt);
            return Ok(());
        }
        let pkt = first_visible(ctx, QueueKind::SendQueue);
        if pkt != NULL_HANDLE {
            ctx.pop(pkt);
            ctx.push(sbf, pkt);
        }
        Ok(())
    }
}

/// First packet of `queue` still visible in this execution.
pub fn first_visible(ctx: &ExecCtx<'_>, queue: QueueKind) -> i64 {
    let len = ctx.queue_raw_len(queue);
    for i in 0..len {
        let pkt = ctx.queue_get(queue, i);
        if pkt != NULL_HANDLE {
            return pkt;
        }
    }
    NULL_HANDLE
}

/// Native round-robin over non-throttled subflows (cyclic state kept in
/// the struct rather than a register).
#[derive(Debug, Default, Clone)]
pub struct NativeRoundRobin {
    next: usize,
}

impl NativeScheduler for NativeRoundRobin {
    fn name(&self) -> &str {
        "native-rr"
    }

    fn schedule(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        ctx.step(1)?;
        let n = ctx.subflow_count();
        if n == 0 {
            return Ok(());
        }
        let pkt = first_visible(ctx, QueueKind::SendQueue);
        if pkt == NULL_HANDLE {
            return Ok(());
        }
        for off in 0..n {
            let idx = (self.next as i64 + off) % n;
            let s = ctx.subflow_at(idx);
            if ctx.subflow_prop(s, SubflowProp::TsqThrottled) != 0
                || ctx.subflow_prop(s, SubflowProp::Lossy) != 0
            {
                continue;
            }
            let cwnd = ctx.subflow_prop(s, SubflowProp::Cwnd);
            let used = ctx.subflow_prop(s, SubflowProp::SkbsInFlight)
                + ctx.subflow_prop(s, SubflowProp::Queued);
            if cwnd > used {
                ctx.pop(pkt);
                ctx.push(s, pkt);
                self.next = ((idx + 1) % n) as usize;
                return Ok(());
            }
        }
        Ok(())
    }
}

/// A scheduler that behaves like [`NativeMinRtt`] for its first
/// `trap_after` executions and then raises a structured
/// [`ExecError::Trap`] on every subsequent call. Exercises the
/// containment supervisor's backend-trap boundary: native code has no
/// bytecode verifier in front of it, so a runtime trap is its only
/// structured failure mode.
#[derive(Debug, Clone)]
pub struct NativeTrapping {
    /// Healthy executions before the first trap.
    pub trap_after: u64,
    /// Traps left to raise before behaving again (`u64::MAX` = forever).
    traps_remaining: u64,
    calls: u64,
    inner: NativeMinRtt,
}

impl NativeTrapping {
    /// Schedules like minRtt for `trap_after` calls, then traps forever.
    pub fn new(trap_after: u64) -> Self {
        NativeTrapping {
            trap_after,
            traps_remaining: u64::MAX,
            calls: 0,
            inner: NativeMinRtt,
        }
    }

    /// Schedules like minRtt for `trap_after` calls, traps exactly once,
    /// then behaves forever — a transient fault the containment
    /// supervisor's probationary re-admission should survive.
    pub fn one_shot(trap_after: u64) -> Self {
        NativeTrapping {
            traps_remaining: 1,
            ..NativeTrapping::new(trap_after)
        }
    }
}

impl NativeScheduler for NativeTrapping {
    fn name(&self) -> &str {
        "native-trapping"
    }

    fn schedule(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        self.calls += 1;
        if self.calls > self.trap_after && self.traps_remaining > 0 {
            if self.traps_remaining != u64::MAX {
                self.traps_remaining -= 1;
            }
            return Err(ExecError::Trap {
                origin: "native-trapping",
                detail: format!("deliberate trap on call {}", self.calls),
            });
        }
        self.inner.schedule(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmp_core::env::{RegId, SchedulerEnv, SubflowProp};
    use progmp_core::testenv::MockEnv;

    fn run_native(s: &mut dyn NativeScheduler, env: &mut MockEnv) {
        let mut ctx = ExecCtx::new(env, 100_000);
        s.schedule(&mut ctx).unwrap();
        let (regs, actions, _) = ctx.finish();
        env.apply(&regs, &actions);
        let _ = regs[RegId::R1.index()];
    }

    fn env2() -> MockEnv {
        let mut env = MockEnv::new();
        for (id, rtt) in [(0u32, 10_000i64), (1, 40_000)] {
            env.add_subflow(id);
            env.set_subflow_prop(id, SubflowProp::Rtt, rtt);
            env.set_subflow_prop(id, SubflowProp::Cwnd, 10);
        }
        env
    }

    #[test]
    fn native_min_rtt_prefers_fast_subflow() {
        let mut env = env2();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run_native(&mut NativeMinRtt, &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn native_min_rtt_skips_exhausted_window() {
        let mut env = env2();
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run_native(&mut NativeMinRtt, &mut env);
        assert_eq!(env.transmissions[0].0 .0, 1, "falls over to higher RTT");
    }

    #[test]
    fn native_min_rtt_prioritizes_reinjections() {
        let mut env = env2();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.push_packet(QueueKind::Reinject, 2, 1, 1400);
        env.push_packet(QueueKind::Unacked, 2, 1, 1400);
        env.mark_sent_on(2, 1);
        run_native(&mut NativeMinRtt, &mut env);
        assert_eq!(env.transmissions[0].1 .0, 2, "reinjection first");
        assert_eq!(env.transmissions[0].0 .0, 0, "on the other subflow");
    }

    #[test]
    fn native_min_rtt_honors_backup_semantics() {
        let mut env = env2();
        env.set_subflow_prop(0, SubflowProp::IsBackup, 1);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run_native(&mut NativeMinRtt, &mut env);
        assert_eq!(
            env.transmissions[0].0 .0, 1,
            "higher-RTT non-backup beats low-RTT backup"
        );
    }

    #[test]
    fn native_trapping_schedules_then_traps() {
        let mut env = env2();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        let mut s = NativeTrapping::new(1);
        run_native(&mut s, &mut env);
        assert_eq!(env.transmissions.len(), 1, "first call behaves like minRtt");
        let mut ctx = ExecCtx::new(&env, 100_000);
        let err = s.schedule(&mut ctx).unwrap_err();
        assert!(matches!(
            err,
            ExecError::Trap {
                origin: "native-trapping",
                ..
            }
        ));
    }

    #[test]
    fn native_round_robin_cycles() {
        let mut env = env2();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.push_packet(QueueKind::SendQueue, 2, 1, 1400);
        let mut rr = NativeRoundRobin::default();
        run_native(&mut rr, &mut env);
        run_native(&mut rr, &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
        assert_eq!(env.transmissions[1].0 .0, 1);
    }
}
