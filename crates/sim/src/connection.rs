//! The MPTCP meta socket: sending queues, subflow bookkeeping, acknowledge
//! processing, loss recovery, and the [`SchedulerEnv`] implementation the
//! scheduler programming model executes against.

use crate::cc::{lia_alpha_x1024, CcAlgo};
use crate::packet::SegmentSlab;
use crate::receiver::Receiver;
use crate::stats::ConnStats;
use crate::subflow::{Subflow, TxRec};
use crate::time::SimTime;
use progmp_core::env::{
    Action, PacketProp, PacketRef, QueueKind, RegId, SchedulerEnv, SubflowId, SubflowProp,
    NUM_REGISTERS,
};
use progmp_core::exec::ExecCtx;
use progmp_core::{ExecError, SchedulerInstance};

/// The scheduler bound to a connection: a compiled ProgMP program or a
/// native Rust scheduler.
pub enum SchedulerHandle {
    /// DSL program instance.
    Dsl(SchedulerInstance),
    /// Native Rust scheduler.
    Native(Box<dyn crate::native::NativeScheduler>),
}

impl SchedulerHandle {
    /// Runs one scheduler execution against `ctx`.
    pub fn execute_once(&mut self, ctx: &mut ExecCtx<'_>) -> Result<(), ExecError> {
        match self {
            // The instance-level execute() applies effects itself; here we
            // need the raw execution because the connection applies
            // effects. Route through the backend-agnostic raw API.
            SchedulerHandle::Dsl(inst) => inst.execute_raw(ctx),
            SchedulerHandle::Native(n) => n.schedule(ctx),
        }
    }
}

/// What an acknowledgement did, so the engine can schedule follow-ups.
#[derive(Debug, Default)]
pub struct AckOutcome {
    /// Retransmission-timer action.
    pub rearm_rto_at: Option<SimTime>,
    /// Disarm the timer (nothing in flight).
    pub disarm_rto: bool,
    /// Packets the subflow must auto-retransmit on itself (fast
    /// retransmit), as (packet, existing subflow seq).
    pub auto_retransmit: Vec<(PacketRef, u64)>,
    /// Whether a loss was suspected (packets entered `RQ`).
    pub loss_suspected: bool,
}

/// Sender-side state of one MPTCP connection.
pub struct Connection {
    /// Connection index within the simulation.
    pub id: usize,
    /// Global identity for fleet-sharded runs (defaults to `id`): keys
    /// the connection's deterministic random streams, including the
    /// containment supervisor's backoff jitter, so containment behaviour
    /// is invariant under fleet partitioning.
    pub identity: u64,
    /// All subflows, established or not; `SubflowId(i)` indexes this.
    pub subflows: Vec<Subflow>,
    /// Cache of established subflow ids, in establishment order.
    active: Vec<SubflowId>,
    /// All segments ever created, in the connection's segment arena.
    pub segments: SegmentSlab,
    q: Vec<PacketRef>,
    qu: Vec<PacketRef>,
    rq: Vec<PacketRef>,
    registers: [i64; NUM_REGISTERS],
    /// The connection's scheduler (taken while executing).
    pub scheduler: Option<SchedulerHandle>,
    /// Receiver-side state.
    pub receiver: Receiver,
    /// Congestion-control algorithm.
    pub cc_algo: CcAlgo,
    /// Maximum segment size.
    pub mss: u32,
    /// Simulation time as seen by property reads; kept current by the
    /// engine before each scheduler execution.
    pub now: SimTime,
    next_data_seq: u64,
    /// Meta-level cumulative acknowledged bytes.
    pub data_acked: u64,
    /// Last advertised receive window (bytes).
    pub adv_rwnd: u64,
    /// Transmissions requested by the last scheduler execution.
    pending_tx: Vec<(SubflowId, PacketRef)>,
    /// Measurement state.
    pub stats: ConnStats,
    /// Scheduler step budget per execution.
    pub step_budget: u64,
    /// Compressed-execution round limit per trigger.
    pub max_sched_rounds: u32,
    /// Whether timelines are recorded.
    pub record_timelines: bool,
    /// Default packet property for newly enqueued data (set through the
    /// extended API).
    pub default_prop: u32,
    /// Whether the scheduler can pop the reinjection queue (from the
    /// compiled program's static analysis). Schedulers that provably
    /// never read `RQ` — like the paper's Fig. 3 minimal example —
    /// cannot recover reinjected segments, so the liveness oracle must
    /// not hold them to that standard.
    pub pops_rq: bool,
    /// The compiled program's semantic property certificate (DSL
    /// schedulers only). When present and the invariant oracle is
    /// attached, the engine checks every scheduler execution against the
    /// statically proved properties
    /// ([`crate::oracle::InvariantOracle::check_properties`]).
    pub prop_cert: Option<progmp_core::PropertyCertificate>,
}

impl Connection {
    /// Creates a connection; the engine populates subflows and receiver.
    pub fn new(
        id: usize,
        subflows: Vec<Subflow>,
        receiver: Receiver,
        scheduler: SchedulerHandle,
        cc_algo: CcAlgo,
        mss: u32,
        recv_buf: u64,
    ) -> Self {
        let n = subflows.len();
        let active = subflows
            .iter()
            .filter(|s| s.established)
            .map(|s| s.id)
            .collect();
        Connection {
            id,
            identity: id as u64,
            subflows,
            active,
            segments: SegmentSlab::new(),
            q: Vec::new(),
            qu: Vec::new(),
            rq: Vec::new(),
            registers: [0; NUM_REGISTERS],
            scheduler: Some(scheduler),
            receiver,
            cc_algo,
            mss,
            now: 0,
            next_data_seq: 0,
            data_acked: 0,
            adv_rwnd: recv_buf,
            pending_tx: Vec::new(),
            stats: ConnStats::new(n),
            step_budget: progmp_core::DEFAULT_STEP_BUDGET,
            max_sched_rounds: 256,
            record_timelines: false,
            default_prop: 0,
            pops_rq: true,
            prop_cert: None,
        }
    }

    /// Refreshes the established-subflow cache after a path change.
    pub fn refresh_active(&mut self) {
        self.active = self
            .subflows
            .iter()
            .filter(|s| s.established)
            .map(|s| s.id)
            .collect();
    }

    /// Bytes currently waiting in the sending queue `Q`.
    pub fn q_bytes(&self) -> u64 {
        self.q
            .iter()
            .filter_map(|p| self.segments.get(*p))
            .map(|s| u64::from(s.size))
            .sum()
    }

    /// Whether every byte enqueued so far has been acknowledged.
    pub fn all_acked(&self) -> bool {
        self.data_acked >= self.next_data_seq
    }

    /// Total bytes enqueued so far.
    pub fn enqueued_bytes(&self) -> u64 {
        self.next_data_seq
    }

    /// Segment lookup (read-only).
    pub fn segment(&self, pkt: PacketRef) -> Option<&crate::packet::Segment> {
        self.segments.get(pkt)
    }

    /// Splits `bytes` of application data into MSS segments with property
    /// `prop` and appends them to `Q`. Returns the created handles.
    pub fn enqueue_data(&mut self, bytes: u64, prop: u32, now: SimTime) -> Vec<PacketRef> {
        let mut out = Vec::new();
        let mut remaining = bytes;
        while remaining > 0 {
            let size = remaining.min(u64::from(self.mss)) as u32;
            let id = self.segments.alloc(self.next_data_seq, size, prop, now);
            self.next_data_seq += u64::from(size);
            self.q.push(id);
            out.push(id);
            remaining -= u64::from(size);
        }
        self.stats.enqueued_bytes += bytes;
        out
    }

    /// Removes all segments fully covered by the meta cumulative ack from
    /// every queue ("acknowledged packets are automatically removed from
    /// *all* queues", paper §3.1).
    pub fn meta_ack(&mut self, data_ack: u64) {
        if data_ack <= self.data_acked {
            return;
        }
        self.data_acked = data_ack;
        let segs = &self.segments;
        let covered = |p: &PacketRef| {
            segs.get(*p)
                .map(|s| s.end_seq() <= data_ack)
                .unwrap_or(true)
        };
        self.q.retain(|p| !covered(p));
        self.qu.retain(|p| !covered(p));
        self.rq.retain(|p| !covered(p));
    }

    /// Processes an acknowledgement arriving on subflow `sbf_idx`.
    #[allow(clippy::too_many_arguments)]
    pub fn handle_ack(
        &mut self,
        sbf_idx: usize,
        sbf_ack: u64,
        data_ack: u64,
        rwnd: u64,
        now: SimTime,
    ) -> AckOutcome {
        let mut out = AckOutcome::default();
        self.adv_rwnd = rwnd;
        self.meta_ack(data_ack);

        let lia_flows: Vec<(u64, u64)> = self
            .subflows
            .iter()
            .filter(|s| s.established)
            .map(|s| (s.cc.cwnd, s.rtt.srtt()))
            .collect();
        let lia_idx = self
            .subflows
            .iter()
            .take(sbf_idx)
            .filter(|s| s.established)
            .count();

        let sbf = &mut self.subflows[sbf_idx];
        sbf.last_activity = now;

        if sbf_ack > sbf.acked_seq {
            // Congestion-window validation (RFC 2861): only grow the
            // window when the flow was actually using it; an app-limited
            // subflow must not inflate cwnd without bound.
            let was_cwnd_limited = sbf.in_flight() as u64 >= sbf.cc.cwnd;
            let (pkts, bytes, sample) = sbf.take_acked(sbf_ack, now);
            sbf.acked_seq = sbf_ack;
            sbf.dupacks = 0;
            if let Some(rtt) = sample {
                sbf.rtt.sample(rtt);
            }
            sbf.record_delivered(now, bytes);
            let factor = match self.cc_algo {
                CcAlgo::Reno => 1024,
                CcAlgo::Lia => {
                    lia_alpha_x1024(&lia_flows, lia_idx.min(lia_flows.len().saturating_sub(1)))
                }
            };
            if was_cwnd_limited {
                sbf.cc.on_ack(pkts, factor);
            }
            sbf.cc.maybe_exit_recovery(sbf_ack);
            sbf.rto_token += 1;
            if sbf.in_flight() > 0 {
                sbf.rto_armed = true;
                out.rearm_rto_at = Some(now + sbf.rtt.rto());
            } else {
                sbf.rto_armed = false;
                out.disarm_rto = true;
            }
        } else if sbf.in_flight() > 0 {
            sbf.dupacks += 1;
            if sbf.dupacks >= 3 {
                sbf.dupacks = 0;
                // Fast retransmit: the subflow retransmits its oldest
                // unacked segment on itself (TCP semantics) and the meta
                // level adds the segment to the reinjection queue for the
                // scheduler to recover across subflows.
                if let Some(front) = sbf.sent.front() {
                    let (pkt, seq) = (front.pkt, front.sbf_seq);
                    sbf.lost_skbs += 1;
                    sbf.cc.on_fast_retransmit(sbf_ack, sbf.next_seq);
                    self.stats.subflows[sbf_idx].fast_retransmits += 1;
                    out.auto_retransmit.push((pkt, seq));
                    out.loss_suspected = self.reinject(pkt);
                }
            }
        }
        out
    }

    /// Handles a retransmission-timeout on `sbf_idx`: every in-flight
    /// segment becomes loss-suspected (entering `RQ`), the window
    /// collapses, and the oldest segment is retransmitted on the subflow.
    pub fn handle_rto(&mut self, sbf_idx: usize, _now: SimTime) -> AckOutcome {
        let mut out = AckOutcome::default();
        let sbf = &mut self.subflows[sbf_idx];
        if sbf.in_flight() == 0 {
            sbf.rto_armed = false;
            out.disarm_rto = true;
            return out;
        }
        sbf.cc.on_timeout(sbf.next_seq);
        sbf.rtt.backoff();
        self.stats.subflows[sbf_idx].timeouts += 1;
        let in_flight: Vec<(PacketRef, u64)> =
            sbf.sent.iter().map(|r| (r.pkt, r.sbf_seq)).collect();
        sbf.lost_skbs += in_flight.len() as u64;
        if let Some(&(pkt, seq)) = in_flight.first() {
            out.auto_retransmit.push((pkt, seq));
        }
        for &(pkt, _) in &in_flight {
            out.loss_suspected |= self.reinject(pkt);
        }
        out
    }

    /// Adds a segment to the reinjection queue if it is still
    /// unacknowledged and not already queued. Returns true if added.
    pub fn reinject(&mut self, pkt: PacketRef) -> bool {
        let Some(seg) = self.segments.get(pkt) else {
            return false;
        };
        if seg.end_seq() <= self.data_acked {
            return false;
        }
        if self.rq.contains(&pkt) {
            return false;
        }
        self.rq.push(pkt);
        self.stats.reinjections += 1;
        true
    }

    /// Structural queue invariants, checked by the chaos oracle after
    /// every event: the queues hold only known, unacknowledged segments,
    /// without duplicates, and a segment is never simultaneously
    /// schedulable (`Q`/`RQ`) twice. Returns the first violation found.
    pub fn queue_invariants(&self) -> Result<(), String> {
        for (name, queue) in [("Q", &self.q), ("QU", &self.qu), ("RQ", &self.rq)] {
            for pkt in queue {
                let Some(seg) = self.segments.get(*pkt) else {
                    return Err(format!("{name} holds unknown segment {pkt:?}"));
                };
                if seg.end_seq() <= self.data_acked {
                    return Err(format!(
                        "{name} holds fully acked segment {pkt:?} (end_seq {} <= data_acked {})",
                        seg.end_seq(),
                        self.data_acked
                    ));
                }
            }
            let mut seen = queue.iter().collect::<Vec<_>>();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != queue.len() {
                return Err(format!("{name} contains a duplicate packet handle"));
            }
        }
        if let Some(pkt) = self.q.iter().find(|p| self.rq.contains(p)) {
            return Err(format!("segment {pkt:?} in both Q and RQ"));
        }
        Ok(())
    }

    /// Marks a subflow established/closed. In-flight segments of a closing
    /// subflow become loss-suspected.
    pub fn set_subflow_established(&mut self, sbf_idx: usize, up: bool) {
        let sbf = &mut self.subflows[sbf_idx];
        sbf.established = up;
        if !up {
            let drained = sbf.drain_in_flight();
            let n = drained.len() as u64;
            self.subflows[sbf_idx].lost_skbs += n;
            for rec in drained {
                self.reinject(rec.pkt);
            }
        }
        self.refresh_active();
    }

    /// Drains the transmissions requested by the last scheduler execution.
    pub fn take_pending_tx(&mut self) -> Vec<(SubflowId, PacketRef)> {
        std::mem::take(&mut self.pending_tx)
    }

    /// Records a transmission in the subflow's in-flight list; returns the
    /// assigned subflow sequence number. `reuse_seq` keeps the existing
    /// record for TCP-level retransmissions.
    pub fn record_tx(
        &mut self,
        sbf_idx: usize,
        pkt: PacketRef,
        size: u32,
        now: SimTime,
        reuse_seq: Option<u64>,
    ) -> u64 {
        let sbf = &mut self.subflows[sbf_idx];
        match reuse_seq {
            Some(seq) => {
                if let Some(rec) = sbf.sent.iter_mut().find(|r| r.sbf_seq == seq) {
                    rec.is_rtx = true;
                    rec.sent_at = now;
                }
                seq
            }
            None => {
                let seq = sbf.next_seq;
                sbf.next_seq += 1;
                sbf.sent.push_back(TxRec {
                    sbf_seq: seq,
                    pkt,
                    size,
                    sent_at: now,
                    is_rtx: false,
                });
                seq
            }
        }
    }

    /// Direct register write (the extended API's `setRegister`).
    pub fn set_register_direct(&mut self, reg: RegId, value: i64) {
        self.registers[reg.index()] = value;
    }

    /// Direct register read.
    pub fn register_direct(&self, reg: RegId) -> i64 {
        self.registers[reg.index()]
    }
}

impl SchedulerEnv for Connection {
    fn subflows(&self) -> &[SubflowId] {
        &self.active
    }

    fn subflow_prop(&self, subflow: SubflowId, prop: SubflowProp) -> i64 {
        let Some(sbf) = self.subflows.get(subflow.0 as usize) else {
            return 0;
        };
        if !sbf.established {
            return 0;
        }
        match prop {
            SubflowProp::Id => i64::from(subflow.0),
            SubflowProp::Rtt => (sbf.rtt.srtt() / 1000) as i64, // µs
            SubflowProp::RttVar => (sbf.rtt.rttvar() / 1000) as i64,
            SubflowProp::Cwnd => sbf.cc.cwnd as i64,
            SubflowProp::Ssthresh => sbf.cc.ssthresh.min(i64::MAX as u64) as i64,
            SubflowProp::SkbsInFlight => sbf.in_flight() as i64,
            SubflowProp::Queued => sbf.path.queued_at(self.now) as i64,
            SubflowProp::LostSkbs => sbf.lost_skbs as i64,
            SubflowProp::IsBackup => i64::from(sbf.is_backup),
            SubflowProp::TsqThrottled => i64::from(sbf.tsq_throttled(self.now)),
            SubflowProp::Lossy => i64::from(sbf.cc.lossy()),
            SubflowProp::Mss => i64::from(sbf.mss),
            SubflowProp::Bw => sbf.bw_estimate().min(i64::MAX as u64) as i64,
            SubflowProp::RwndFree => self.adv_rwnd.min(i64::MAX as u64) as i64,
            SubflowProp::LastActAge => (self.now.saturating_sub(sbf.last_activity) / 1000) as i64,
            SubflowProp::Cost => sbf.cost,
        }
    }

    fn queue(&self, queue: QueueKind) -> &[PacketRef] {
        match queue {
            QueueKind::SendQueue => &self.q,
            QueueKind::Unacked => &self.qu,
            QueueKind::Reinject => &self.rq,
        }
    }

    fn packet_prop(&self, packet: PacketRef, prop: PacketProp) -> i64 {
        let Some(seg) = self.segments.get(packet) else {
            return 0;
        };
        match prop {
            PacketProp::Seq => seg.seq.min(i64::MAX as u64) as i64,
            PacketProp::Size => i64::from(seg.size),
            PacketProp::UserProp => i64::from(seg.prop),
            PacketProp::SentCount => i64::from(seg.sent_count),
            PacketProp::Age => (self.now.saturating_sub(seg.enqueued_at) / 1000) as i64,
        }
    }

    fn sent_on(&self, packet: PacketRef, subflow: SubflowId) -> bool {
        self.segments
            .get(packet)
            .map(|s| s.sent_on(subflow))
            .unwrap_or(false)
    }

    fn has_window_for(&self, _subflow: SubflowId, packet: PacketRef) -> bool {
        let Some(seg) = self.segments.get(packet) else {
            return false;
        };
        seg.end_seq() <= self.data_acked + self.adv_rwnd
    }

    fn register(&self, reg: RegId) -> i64 {
        self.registers[reg.index()]
    }

    fn apply(&mut self, registers: &[i64; NUM_REGISTERS], actions: &[Action]) {
        self.registers = *registers;
        for action in actions {
            match *action {
                Action::Push { subflow, packet } => {
                    let idx = subflow.0 as usize;
                    if self
                        .subflows
                        .get(idx)
                        .map(|s| !s.established)
                        .unwrap_or(true)
                    {
                        continue; // vanished subflow: packet stays schedulable
                    }
                    if !self.segments.contains(packet) {
                        continue;
                    }
                    let was_queued = {
                        let before = self.q.len() + self.rq.len();
                        self.q.retain(|p| *p != packet);
                        self.rq.retain(|p| *p != packet);
                        before != self.q.len() + self.rq.len()
                    };
                    if was_queued && !self.qu.contains(&packet) {
                        self.qu.push(packet);
                    }
                    if let Some(seg) = self.segments.get_mut(packet) {
                        seg.record_tx(subflow);
                        if seg.sent_count == 1 {
                            self.stats.unique_tx_bytes += u64::from(seg.size);
                        }
                    }
                    self.pending_tx.push((subflow, packet));
                }
                Action::Drop { packet } => {
                    self.q.retain(|p| *p != packet);
                    self.rq.retain(|p| *p != packet);
                    self.stats.scheduler_drops += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{Path, PathConfig};
    use crate::receiver::ReceiverMode;
    use crate::time::from_millis;

    fn make_conn() -> Connection {
        let subflows = vec![
            Subflow::new(
                SubflowId(0),
                Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000)),
                1400,
            ),
            Subflow::new(
                SubflowId(1),
                Path::new(&PathConfig::symmetric(from_millis(40), 1_250_000)),
                1400,
            ),
        ];
        let receiver = Receiver::new(ReceiverMode::Improved, 2, 1 << 20);
        Connection::new(
            0,
            subflows,
            receiver,
            SchedulerHandle::Native(Box::new(crate::native::NativeMinRtt)),
            CcAlgo::Reno,
            1400,
            1 << 20,
        )
    }

    #[test]
    fn enqueue_segments_data() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(3000, 7, 0);
        assert_eq!(pkts.len(), 3, "3000 B at 1400 MSS -> 1400+1400+200");
        assert_eq!(c.q_bytes(), 3000);
        let seg = c.segment(pkts[2]).unwrap();
        assert_eq!(seg.size, 200);
        assert_eq!(seg.seq, 2800);
        assert_eq!(seg.prop, 7);
    }

    #[test]
    fn meta_ack_removes_from_all_queues() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(2800, 0, 0);
        // Simulate one pushed, one reinjection-queued.
        c.qu.push(pkts[0]);
        c.q.retain(|p| *p != pkts[0]);
        c.rq.push(pkts[0]);
        c.meta_ack(1400);
        assert!(c.qu.is_empty());
        assert!(c.rq.is_empty());
        assert_eq!(c.q.len(), 1);
        assert!(!c.all_acked());
        c.meta_ack(2800);
        assert!(c.all_acked());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit_and_reinjection() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(4200, 0, 0);
        for (i, &p) in pkts.iter().enumerate() {
            c.qu.push(p);
            c.record_tx(0, p, 1400, 0, None);
            let _ = i;
        }
        c.q.clear();
        let mut loss = false;
        for _ in 0..3 {
            let out = c.handle_ack(0, 0, 0, 1 << 20, from_millis(15));
            loss |= out.loss_suspected;
            if loss {
                assert_eq!(out.auto_retransmit.len(), 1);
                assert_eq!(out.auto_retransmit[0].0, pkts[0]);
            }
        }
        assert!(loss, "third dupack suspects loss");
        assert_eq!(c.queue(QueueKind::Reinject), &[pkts[0]]);
        assert!(c.subflows[0].cc.lossy());
    }

    #[test]
    fn ack_advances_and_samples_rtt() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(1400, 0, 0);
        c.record_tx(0, pkts[0], 1400, 0, None);
        let out = c.handle_ack(0, 1, 1400, 1 << 20, from_millis(12));
        assert!(out.disarm_rto);
        assert_eq!(c.subflows[0].rtt.srtt(), from_millis(12));
        assert_eq!(c.subflows[0].in_flight(), 0);
        assert!(c.all_acked());
    }

    #[test]
    fn rto_reinjects_all_in_flight() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(4200, 0, 0);
        for &p in &pkts {
            c.qu.push(p);
            c.record_tx(0, p, 1400, 0, None);
        }
        c.q.clear();
        let out = c.handle_rto(0, from_millis(300));
        assert!(out.loss_suspected);
        assert_eq!(c.queue(QueueKind::Reinject).len(), 3);
        assert_eq!(c.subflows[0].cc.cwnd, 1);
        assert_eq!(out.auto_retransmit.len(), 1);
    }

    #[test]
    fn subflow_teardown_reinjects_in_flight() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(2800, 0, 0);
        for &p in &pkts {
            c.qu.push(p);
            c.record_tx(1, p, 1400, 0, None);
        }
        c.set_subflow_established(1, false);
        assert_eq!(c.subflows()[..], [SubflowId(0)]);
        assert_eq!(c.queue(QueueKind::Reinject).len(), 2);
    }

    #[test]
    fn env_properties_reflect_state() {
        let mut c = make_conn();
        c.subflows[0].rtt.sample(from_millis(10));
        c.subflows[1].is_backup = true;
        c.subflows[1].cost = 3;
        assert_eq!(c.subflow_prop(SubflowId(0), SubflowProp::Rtt), 10_000);
        assert_eq!(c.subflow_prop(SubflowId(0), SubflowProp::Cwnd), 10);
        assert_eq!(c.subflow_prop(SubflowId(1), SubflowProp::IsBackup), 1);
        assert_eq!(c.subflow_prop(SubflowId(1), SubflowProp::Cost), 3);
        assert_eq!(
            c.subflow_prop(SubflowId(9), SubflowProp::Rtt),
            0,
            "unknown subflow reads 0"
        );
    }

    #[test]
    fn has_window_for_respects_advertised_window() {
        let mut c = make_conn();
        c.adv_rwnd = 2000;
        let pkts = c.enqueue_data(4200, 0, 0);
        assert!(c.has_window_for(SubflowId(0), pkts[0]));
        assert!(
            !c.has_window_for(SubflowId(0), pkts[2]),
            "beyond window edge"
        );
    }

    #[test]
    fn push_action_to_closed_subflow_keeps_packet() {
        let mut c = make_conn();
        let pkts = c.enqueue_data(1400, 0, 0);
        c.set_subflow_established(1, false);
        let regs = [0i64; NUM_REGISTERS];
        c.apply(
            &regs,
            &[Action::Push {
                subflow: SubflowId(1),
                packet: pkts[0],
            }],
        );
        assert_eq!(c.queue(QueueKind::SendQueue).len(), 1);
        assert!(c.take_pending_tx().is_empty());
    }
}
