//! Sharded multi-connection simulation: the fleet runner.
//!
//! A [`run_fleet`] call simulates `N` independent MPTCP connections,
//! partitioned into contiguous shards across worker threads. Each shard
//! owns a private [`Sim`] (no shared mutable state, no locks on the
//! event hot path), and **results are bit-identical regardless of the
//! worker count**:
//!
//! * every connection's scenario is built from a per-connection seed
//!   drawn from the frozen xorshift64\* stream
//!   ([`conn_seeds`]) — a pure function of `(fleet seed, global index)`;
//! * every shard `Sim` uses the fleet seed, and registers each
//!   connection under its *global* index
//!   ([`Sim::add_connection_with_identity`]), so per-path loss/jitter
//!   streams never depend on the partition;
//! * connections in one shard share an event queue but no state, so
//!   their interleaving cannot influence each other's counters.
//!
//! The determinism conformance test
//! (`crates/conformance/tests/fleet_determinism.rs`) pins this by
//! running the same fleet at 1, 2, and 8 workers and comparing
//! per-connection [`ConnStats::snapshot_text`] digests byte-for-byte.
//!
//! [`ConnStats::snapshot_text`]: crate::stats::ConnStats::snapshot_text

use crate::config::ConnectionConfig;
use crate::engine::Sim;
use crate::faults::{ChaosRng, FaultPlan};
use crate::oracle::OracleViolation;
use crate::supervisor::{ContainAction, ContainmentConfig, IncidentReport};
use crate::time::SimTime;
use progmp_core::env::RegId;
use std::time::{Duration, Instant};

/// Application workload of one fleet connection.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Backlogged bulk source that keeps `Q` topped up until `bytes`
    /// have been enqueued (iPerf-style).
    Bulk {
        /// Total transfer size.
        bytes: u64,
        /// Packet property of the data.
        prop: u32,
    },
    /// Discrete application sends: `(time, bytes, prop)`.
    SendAt(Vec<(SimTime, u64, u32)>),
    /// Constant-bitrate source.
    Cbr {
        /// First chunk time.
        start: SimTime,
        /// End of the stream.
        end: SimTime,
        /// Rate in bytes/second.
        rate: u64,
        /// Chunk interval.
        chunk: SimTime,
        /// Packet property of the data.
        prop: u32,
    },
}

/// Everything one connection of the fleet runs: its configuration, its
/// application workload, optional register signalling, and an optional
/// chaos fault plan.
pub struct ConnScenario {
    /// Connection configuration (paths, scheduler, knobs).
    pub config: ConnectionConfig,
    /// Application traffic.
    pub workload: Workload,
    /// Scheduled register writes `(time, register, value)` — the
    /// extended API's application signals.
    pub registers: Vec<(SimTime, RegId, i64)>,
    /// Fault plan to apply, if any.
    pub fault_plan: Option<FaultPlan>,
}

impl ConnScenario {
    /// A scenario with no register signals and no faults.
    pub fn new(config: ConnectionConfig, workload: Workload) -> Self {
        ConnScenario {
            config,
            workload,
            registers: Vec::new(),
            fault_plan: None,
        }
    }
}

/// How fleet shards arm the runtime invariant oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// No oracle (fastest).
    Off,
    /// Collect violations into the [`FleetReport`], with the per-event
    /// replay log disabled (the scale-bench configuration).
    Collect,
    /// Panic on the first violation, with full replay log.
    Panic,
}

/// Parameters of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of connections.
    pub connections: usize,
    /// Worker threads; 0 means one per available CPU.
    pub workers: usize,
    /// Fleet seed: the root of every derived stream.
    pub seed: u64,
    /// Simulated-time bound per shard.
    pub horizon: SimTime,
    /// Oracle arming mode.
    pub oracle: OracleMode,
    /// Containment supervisor configuration; `None` runs uncontained.
    /// Per-connection containment decisions (backoff draws, watchdog
    /// ticks) are pure functions of `(fleet seed, global index)`, so
    /// digests stay bit-identical across worker counts. The fleet-level
    /// breaker is shard-local and only flips oracle *routing*, never
    /// simulated behaviour, so it cannot perturb digests either.
    pub containment: Option<ContainmentConfig>,
}

impl FleetConfig {
    /// A fleet of `connections` with `seed`, one worker per CPU, a
    /// 300-simulated-second horizon and the oracle off.
    pub fn new(connections: usize, seed: u64) -> Self {
        FleetConfig {
            connections,
            workers: 0,
            seed,
            horizon: 300 * crate::time::SECONDS,
            oracle: OracleMode::Off,
            containment: None,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the simulated-time horizon.
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the oracle mode.
    pub fn with_oracle(mut self, oracle: OracleMode) -> Self {
        self.oracle = oracle;
        self
    }

    /// Enables the containment supervisor on every shard.
    pub fn with_containment(mut self, cfg: ContainmentConfig) -> Self {
        self.containment = Some(cfg);
        self
    }

    /// The effective worker count (resolves `0` to the CPU count).
    pub fn effective_workers(&self) -> usize {
        let w = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        w.max(1)
    }
}

/// Outcome of one fleet connection, in global-index order.
#[derive(Debug, Clone)]
pub struct ConnReport {
    /// Global connection index.
    pub conn: usize,
    /// FNV-1a digest of [`ConnStats::snapshot_text`] — the
    /// bit-identity witness compared across worker counts.
    ///
    /// [`ConnStats::snapshot_text`]: crate::stats::ConnStats::snapshot_text
    pub digest: u64,
    /// Bytes delivered in order to the application.
    pub delivered_bytes: u64,
    /// Bytes the application enqueued.
    pub enqueued_bytes: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Completed scheduler executions.
    pub scheduler_executions: u64,
    /// Total scheduler steps.
    pub scheduler_steps: u64,
    /// Host nanoseconds spent inside scheduler executions.
    pub scheduler_host_ns: u64,
    /// Whether every enqueued byte was acknowledged in time.
    pub all_acked: bool,
}

/// Aggregate outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-connection outcomes, ordered by global index.
    pub per_conn: Vec<ConnReport>,
    /// Total events processed across all shards (invariant under the
    /// worker count: each connection's event count is its own).
    pub events_processed: u64,
    /// Oracle violations across all shards (empty unless armed).
    pub violations: Vec<OracleViolation>,
    /// Containment incidents across all shards (empty unless the
    /// supervisor is enabled), concatenated in shard order.
    pub incidents: Vec<IncidentReport>,
    /// Wall-clock time of the parallel section.
    pub wall: Duration,
    /// Worker threads actually used.
    pub workers: usize,
}

impl FleetReport {
    /// Simulation throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.events_processed as f64 / secs
    }

    /// Order-sensitive fold of all per-connection digests: one number
    /// that witnesses the whole fleet's bit-identity.
    pub fn digest(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for c in &self.per_conn {
            for b in c.digest.to_le_bytes() {
                acc ^= u64::from(b);
                acc = acc.wrapping_mul(0x100_0000_01b3);
            }
        }
        acc
    }

    /// Total host nanoseconds spent inside scheduler executions.
    pub fn scheduler_host_ns(&self) -> u64 {
        self.per_conn.iter().map(|c| c.scheduler_host_ns).sum()
    }

    /// Fraction of connections that acknowledged all enqueued data.
    pub fn completion_rate(&self) -> f64 {
        if self.per_conn.is_empty() {
            return 1.0;
        }
        self.per_conn.iter().filter(|c| c.all_acked).count() as f64 / self.per_conn.len() as f64
    }

    /// Number of quarantine transitions (including pins) across the fleet.
    pub fn quarantines(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.action, ContainAction::Quarantined | ContainAction::Pinned))
            .count()
    }

    /// Containment incidents in the partition-independent canonical
    /// order — sorted by `(conn, at)` with shard-local fleet-breaker
    /// trips excluded (the breaker depends on which connections share a
    /// shard, by design). Two runs of the same fleet at different worker
    /// counts must produce identical canonical incident logs.
    pub fn canonical_incidents(&self) -> Vec<&IncidentReport> {
        let mut out: Vec<&IncidentReport> = self
            .incidents
            .iter()
            .filter(|i| i.action != ContainAction::FleetBreakerTripped)
            .collect();
        out.sort_by_key(|i| (i.conn, i.at));
        out
    }
}

/// FNV-1a 64-bit hash (the digest primitive; stable forever).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        acc ^= u64::from(b);
        acc = acc.wrapping_mul(0x100_0000_01b3);
    }
    acc
}

/// The per-connection seed stream: `n` draws from a fresh frozen
/// xorshift64\* generator over the fleet seed. Seed `i` depends only on
/// `(seed, i)`, never on the partition.
pub fn conn_seeds(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = ChaosRng::new(seed ^ 0xF1EE_7F1E_E7F1_EE7F);
    (0..n).map(|_| rng.next_u64()).collect()
}

/// Runs the fleet: builds each connection's scenario from
/// `scenario(global_index, conn_seed)`, partitions the connections into
/// contiguous shards across worker threads, simulates every shard to
/// its horizon, and collects per-connection reports in global order.
///
/// # Panics
///
/// Panics if a scenario's scheduler fails to compile, or (in
/// [`OracleMode::Panic`]) on the first invariant violation.
pub fn run_fleet<F>(cfg: &FleetConfig, scenario: F) -> FleetReport
where
    F: Fn(usize, u64) -> ConnScenario + Sync,
{
    let n = cfg.connections;
    let workers = cfg.effective_workers().min(n.max(1));
    let seeds = conn_seeds(cfg.seed, n);
    // Contiguous shards, sizes differing by at most one.
    let mut bounds = Vec::with_capacity(workers + 1);
    for w in 0..=workers {
        bounds.push(w * n / workers);
    }

    let scenario = &scenario;
    let seeds = &seeds;
    let t0 = Instant::now();
    let mut shard_results: Vec<Option<ShardResult>> = (0..workers).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let (lo, hi) = (bounds[w], bounds[w + 1]);
            handles.push(scope.spawn(move || run_shard(cfg, scenario, seeds, w, lo, hi)));
        }
        for (w, h) in handles.into_iter().enumerate() {
            shard_results[w] = Some(h.join().expect("fleet shard panicked"));
        }
    });
    let wall = t0.elapsed();

    let mut report = FleetReport {
        per_conn: Vec::with_capacity(n),
        events_processed: 0,
        violations: Vec::new(),
        incidents: Vec::new(),
        wall,
        workers,
    };
    for shard in shard_results.into_iter().flatten() {
        report.per_conn.extend(shard.per_conn);
        report.events_processed += shard.events_processed;
        report.violations.extend(shard.violations);
        report.incidents.extend(shard.incidents);
    }
    debug_assert!(report.per_conn.windows(2).all(|w| w[0].conn < w[1].conn));
    report
}

struct ShardResult {
    per_conn: Vec<ConnReport>,
    events_processed: u64,
    violations: Vec<OracleViolation>,
    incidents: Vec<IncidentReport>,
}

fn run_shard<F>(
    cfg: &FleetConfig,
    scenario: &F,
    seeds: &[u64],
    shard: usize,
    lo: usize,
    hi: usize,
) -> ShardResult
where
    F: Fn(usize, u64) -> ConnScenario + Sync,
{
    let mut sim = Sim::new(cfg.seed);
    if let Some(contain) = &cfg.containment {
        sim.enable_containment(contain.clone());
    }
    match cfg.oracle {
        OracleMode::Off => {}
        OracleMode::Collect => {
            sim.enable_oracle(format!("fleet seed={} shard={shard}", cfg.seed), false);
            // Formatting a replay log for every event would dominate
            // fleet-scale runs; violations still carry full detail.
            sim.oracle_mut().expect("oracle enabled").log_events = false;
        }
        OracleMode::Panic => {
            sim.enable_oracle(format!("fleet seed={} shard={shard}", cfg.seed), true);
        }
    }
    for (global, &seed) in seeds.iter().enumerate().take(hi).skip(lo) {
        let sc = scenario(global, seed);
        let conn = sim
            .add_connection_with_identity(sc.config, global as u64)
            .expect("fleet scheduler compiles");
        match sc.workload {
            Workload::Bulk { bytes, prop } => {
                sim.add_bulk_source(conn, bytes, prop);
            }
            Workload::SendAt(sends) => {
                for (at, bytes, prop) in sends {
                    sim.app_send_at(conn, at, bytes, prop);
                }
            }
            Workload::Cbr {
                start,
                end,
                rate,
                chunk,
                prop,
            } => {
                sim.add_cbr_source(conn, start, end, rate, chunk, prop);
            }
        }
        for (at, reg, value) in sc.registers {
            sim.set_register_at(conn, at, reg, value);
        }
        if let Some(plan) = &sc.fault_plan {
            sim.apply_fault_plan(conn, plan);
        }
    }
    sim.run_to_completion(cfg.horizon);
    let per_conn = (lo..hi)
        .map(|global| {
            let c = &sim.connections[global - lo];
            ConnReport {
                conn: global,
                digest: fnv1a64(c.stats.snapshot_text().as_bytes()),
                delivered_bytes: c.stats.delivered_bytes,
                enqueued_bytes: c.stats.enqueued_bytes,
                tx_packets: c.stats.tx_packets,
                scheduler_executions: c.stats.scheduler_executions,
                scheduler_steps: c.stats.scheduler_steps,
                scheduler_host_ns: c.stats.scheduler_host_ns,
                all_acked: c.all_acked(),
            }
        })
        .collect();
    ShardResult {
        per_conn,
        events_processed: sim.events_processed,
        violations: sim.oracle_violations().to_vec(),
        incidents: sim.incidents().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConnectionConfig, SchedulerSpec, SubflowConfig};
    use crate::path::PathConfig;
    use crate::time::{from_millis, SECONDS};

    fn scenario(_global: usize, seed: u64) -> ConnScenario {
        let loss = (seed % 3) as f64 * 0.01;
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(10), 1_250_000).with_loss(loss),
                ),
                SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
            ],
            SchedulerSpec::dsl(crate::engine::tests::MIN_RTT_DSL),
        );
        ConnScenario::new(
            cfg,
            Workload::Bulk {
                bytes: 30_000 + (seed % 5) * 1400,
                prop: 0,
            },
        )
    }

    #[test]
    fn fleet_runs_and_reports_in_global_order() {
        let cfg = FleetConfig::new(6, 42)
            .with_workers(2)
            .with_horizon(60 * SECONDS)
            .with_oracle(OracleMode::Collect);
        let report = run_fleet(&cfg, scenario);
        assert_eq!(report.per_conn.len(), 6);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        for (i, c) in report.per_conn.iter().enumerate() {
            assert_eq!(c.conn, i);
            assert!(c.all_acked, "conn {i} completed");
            assert!(c.delivered_bytes >= 30_000);
        }
        assert!(report.events_processed > 0);
        assert!(report.events_per_sec() > 0.0);
    }

    #[test]
    fn digests_are_identical_across_worker_counts() {
        let run = |workers| {
            let cfg = FleetConfig::new(5, 7)
                .with_workers(workers)
                .with_horizon(60 * SECONDS);
            run_fleet(&cfg, scenario)
        };
        let one = run(1);
        let three = run(3);
        assert_eq!(one.workers, 1);
        assert_eq!(three.workers, 3);
        assert_eq!(one.events_processed, three.events_processed);
        assert_eq!(one.digest(), three.digest());
        for (a, b) in one.per_conn.iter().zip(&three.per_conn) {
            assert_eq!(a.digest, b.digest, "conn {}", a.conn);
            assert_eq!(a.tx_packets, b.tx_packets);
        }
    }

    #[test]
    fn containment_is_invariant_under_sharding() {
        // Every third connection is a starver the supervisor must
        // quarantine; the rest are healthy. Digests and the canonical
        // incident log must not depend on the partition.
        let chaotic = |global: usize, seed: u64| {
            let dsl = if global % 3 == 2 {
                "RETURN;"
            } else {
                crate::engine::tests::MIN_RTT_DSL
            };
            let cfg = ConnectionConfig::new(
                vec![
                    SubflowConfig::new(
                        PathConfig::symmetric(from_millis(10), 1_250_000)
                            .with_loss((seed % 3) as f64 * 0.01),
                    ),
                    SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
                ],
                SchedulerSpec::dsl(dsl),
            );
            ConnScenario::new(
                cfg,
                Workload::Bulk {
                    bytes: 30_000 + (seed % 5) * 1400,
                    prop: 0,
                },
            )
        };
        let run = |workers| {
            let cfg = FleetConfig::new(6, 21)
                .with_workers(workers)
                .with_horizon(120 * SECONDS)
                .with_oracle(OracleMode::Collect)
                .with_containment(ContainmentConfig::default());
            run_fleet(&cfg, chaotic)
        };
        let one = run(1);
        let three = run(3);
        assert!(one.quarantines() > 0, "the starvers must be contained");
        assert_eq!(one.digest(), three.digest());
        let render = |r: &FleetReport| -> Vec<String> {
            r.canonical_incidents()
                .iter()
                .map(|i| i.to_string())
                .collect()
        };
        assert_eq!(render(&one), render(&three));
        for c in &one.per_conn {
            assert!(c.all_acked, "conn {} completed via fallback", c.conn);
        }
    }

    #[test]
    fn conn_seeds_are_frozen() {
        let a = conn_seeds(1, 4);
        assert_eq!(a, conn_seeds(1, 4));
        assert_ne!(a, conn_seeds(2, 4));
        // Prefix property: growing the fleet never changes earlier seeds.
        assert_eq!(a[..], conn_seeds(1, 8)[..4]);
    }

    #[test]
    fn workers_never_exceed_connections() {
        let cfg = FleetConfig::new(2, 9)
            .with_workers(8)
            .with_horizon(30 * SECONDS);
        let report = run_fleet(&cfg, scenario);
        assert_eq!(report.workers, 2);
        assert_eq!(report.per_conn.len(), 2);
    }

    #[test]
    fn fnv_digest_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
