//! The path manager — building block (ii) of the MPTCP implementation
//! (paper §2.1): decides on the creation and removal of subflows, with
//! "relaxed time constraints" compared to the scheduler (it runs on a
//! periodic tick, not per packet).
//!
//! Two policies are provided:
//!
//! * [`PathManagerPolicy::Static`] — subflows exactly as configured (the
//!   default when no manager is attached);
//! * [`PathManagerPolicy::Handover`] — the §5.2 scenario automated: when
//!   the primary subflow degrades (RTT above a threshold or its loss
//!   counter rising), the backup subflow is established and the handover
//!   register `R3` is signaled so a handover-aware scheduler starts
//!   compensating; once the primary recovers, the signal is cleared.

use crate::connection::Connection;
use crate::time::SimTime;
use progmp_core::env::RegId;

/// Decision policy of a path manager.
#[derive(Debug, Clone)]
pub enum PathManagerPolicy {
    /// Keep the configured subflows; never intervene.
    Static,
    /// Establish `standby` and signal `R3 = 1` when `primary` degrades.
    Handover {
        /// Index of the monitored primary subflow.
        primary: u32,
        /// Index of the standby subflow to establish on degradation.
        standby: u32,
        /// Smoothed-RTT threshold (ns) above which the primary counts as
        /// degraded.
        rtt_threshold: SimTime,
        /// Additional lost packets per tick above which the primary
        /// counts as degraded.
        loss_delta_threshold: u64,
        /// Consecutive healthy ticks required before the handover signal
        /// is cleared again.
        recovery_ticks: u32,
    },
}

/// An action the engine applies on behalf of the path manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmAction {
    /// Establish subflow `idx`.
    SubflowUp(u32),
    /// Tear subflow `idx` down.
    SubflowDown(u32),
    /// Write a scheduler register (handover signalling).
    SetRegister(RegId, i64),
}

/// Per-connection path-manager state.
#[derive(Debug, Clone)]
pub struct PathManager {
    /// The decision policy.
    pub policy: PathManagerPolicy,
    /// Evaluation interval.
    pub interval: SimTime,
    last_lost: u64,
    healthy_streak: u32,
    handover_active: bool,
}

impl PathManager {
    /// Creates a manager evaluating `policy` every `interval`.
    pub fn new(policy: PathManagerPolicy, interval: SimTime) -> Self {
        PathManager {
            policy,
            interval,
            last_lost: 0,
            healthy_streak: 0,
            handover_active: false,
        }
    }

    /// Whether the manager currently signals an active handover.
    pub fn handover_active(&self) -> bool {
        self.handover_active
    }

    /// Evaluates the policy against the connection's current state and
    /// returns the actions to apply.
    pub fn tick(&mut self, conn: &Connection) -> Vec<PmAction> {
        match self.policy {
            PathManagerPolicy::Static => Vec::new(),
            PathManagerPolicy::Handover {
                primary,
                standby,
                rtt_threshold,
                loss_delta_threshold,
                recovery_ticks,
            } => {
                let mut actions = Vec::new();
                let Some(p) = conn.subflows.get(primary as usize) else {
                    return actions;
                };
                let lost = p.lost_skbs;
                let loss_delta = lost.saturating_sub(self.last_lost);
                self.last_lost = lost;
                let degraded = p.established
                    && (p.rtt.srtt() > rtt_threshold || loss_delta >= loss_delta_threshold);
                let standby_up = conn
                    .subflows
                    .get(standby as usize)
                    .map(|s| s.established)
                    .unwrap_or(false);

                if degraded {
                    self.healthy_streak = 0;
                    if !standby_up {
                        actions.push(PmAction::SubflowUp(standby));
                    }
                    if !self.handover_active {
                        self.handover_active = true;
                        actions.push(PmAction::SetRegister(RegId::R3, 1));
                    }
                } else if self.handover_active {
                    self.healthy_streak += 1;
                    if self.healthy_streak >= recovery_ticks {
                        self.handover_active = false;
                        self.healthy_streak = 0;
                        actions.push(PmAction::SetRegister(RegId::R3, 0));
                    }
                }
                actions
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgo;
    use crate::connection::{Connection, SchedulerHandle};
    use crate::native::NativeMinRtt;
    use crate::path::{Path, PathConfig};
    use crate::receiver::{Receiver, ReceiverMode};
    use crate::subflow::Subflow;
    use crate::time::{from_millis, MILLIS};
    use progmp_core::env::SubflowId;

    fn conn() -> Connection {
        let mut subflows = vec![
            Subflow::new(
                SubflowId(0),
                Path::new(&PathConfig::symmetric(from_millis(15), 1_250_000)),
                1400,
            ),
            Subflow::new(
                SubflowId(1),
                Path::new(&PathConfig::symmetric(from_millis(45), 1_250_000)),
                1400,
            ),
        ];
        subflows[0].rtt.sample(from_millis(15));
        subflows[1].established = false;
        let mut c = Connection::new(
            0,
            subflows,
            Receiver::new(ReceiverMode::Improved, 2, 1 << 20),
            SchedulerHandle::Native(Box::new(NativeMinRtt)),
            CcAlgo::Reno,
            1400,
            1 << 20,
        );
        c.refresh_active();
        c
    }

    fn handover_pm() -> PathManager {
        PathManager::new(
            PathManagerPolicy::Handover {
                primary: 0,
                standby: 1,
                rtt_threshold: from_millis(100),
                loss_delta_threshold: 3,
                recovery_ticks: 2,
            },
            100 * MILLIS,
        )
    }

    #[test]
    fn static_policy_never_acts() {
        let mut pm = PathManager::new(PathManagerPolicy::Static, 100 * MILLIS);
        assert!(pm.tick(&conn()).is_empty());
    }

    #[test]
    fn healthy_primary_no_action() {
        let mut pm = handover_pm();
        assert!(pm.tick(&conn()).is_empty());
        assert!(!pm.handover_active());
    }

    #[test]
    fn rtt_degradation_triggers_handover() {
        let mut pm = handover_pm();
        let mut c = conn();
        for _ in 0..20 {
            c.subflows[0].rtt.sample(from_millis(200));
        }
        let actions = pm.tick(&c);
        assert!(actions.contains(&PmAction::SubflowUp(1)));
        assert!(actions.contains(&PmAction::SetRegister(RegId::R3, 1)));
        assert!(pm.handover_active());
    }

    #[test]
    fn loss_burst_triggers_handover() {
        let mut pm = handover_pm();
        let mut c = conn();
        c.subflows[0].lost_skbs = 10;
        let actions = pm.tick(&c);
        assert!(actions.contains(&PmAction::SetRegister(RegId::R3, 1)));
        // Loss delta resets: the next tick without new losses is healthy.
        let actions = pm.tick(&c);
        assert!(actions.is_empty(), "recovery streak building: {actions:?}");
    }

    #[test]
    fn recovery_clears_signal_after_streak() {
        let mut pm = handover_pm();
        let mut c = conn();
        c.subflows[0].lost_skbs = 10;
        pm.tick(&c); // handover
        c.subflows[1].established = true;
        assert!(pm.tick(&c).is_empty(), "first healthy tick");
        let actions = pm.tick(&c);
        assert_eq!(actions, vec![PmAction::SetRegister(RegId::R3, 0)]);
        assert!(!pm.handover_active());
    }

    #[test]
    fn standby_not_duplicated() {
        let mut pm = handover_pm();
        let mut c = conn();
        c.subflows[0].lost_skbs = 10;
        pm.tick(&c);
        c.subflows[1].established = true;
        c.subflows[0].lost_skbs = 20;
        let actions = pm.tick(&c);
        assert!(
            !actions.contains(&PmAction::SubflowUp(1)),
            "standby already up: {actions:?}"
        );
    }
}
