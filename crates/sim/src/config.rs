//! Connection and scheduler configuration.

use crate::cc::CcAlgo;
use crate::native::NativeScheduler;
use crate::path::PathConfig;
use crate::receiver::ReceiverMode;
use crate::time::SimTime;
use progmp_core::Backend;

/// Configuration of one subflow of a connection.
#[derive(Debug, Clone)]
pub struct SubflowConfig {
    /// The network path.
    pub path: PathConfig,
    /// Whether the path manager flags the subflow as backup.
    pub backup: bool,
    /// Application-assigned cost/preference weight (`COST`).
    pub cost: i64,
    /// When the subflow becomes established (0 = from the start).
    pub start_at: SimTime,
}

impl SubflowConfig {
    /// A non-backup, zero-cost subflow established from the start.
    pub fn new(path: PathConfig) -> Self {
        SubflowConfig {
            path,
            backup: false,
            cost: 0,
            start_at: 0,
        }
    }

    /// Marks the subflow as backup.
    pub fn backup(mut self) -> Self {
        self.backup = true;
        self
    }

    /// Sets the cost/preference weight.
    pub fn with_cost(mut self, cost: i64) -> Self {
        self.cost = cost;
        self
    }

    /// Delays establishment until `at`.
    pub fn starting_at(mut self, at: SimTime) -> Self {
        self.start_at = at;
        self
    }
}

/// Which scheduler a connection runs.
pub enum SchedulerSpec {
    /// A ProgMP program compiled from source and run on `backend`.
    Dsl {
        /// Scheduler source text.
        source: String,
        /// Execution backend.
        backend: Backend,
    },
    /// A native Rust scheduler (the analogue of the paper's C-based
    /// in-kernel schedulers, used as the Fig. 9 overhead baseline).
    Native(Box<dyn NativeScheduler>),
}

impl std::fmt::Debug for SchedulerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerSpec::Dsl { backend, .. } => {
                write!(f, "SchedulerSpec::Dsl({})", backend.name())
            }
            SchedulerSpec::Native(n) => write!(f, "SchedulerSpec::Native({})", n.name()),
        }
    }
}

impl SchedulerSpec {
    /// Convenience constructor for a DSL scheduler on the VM backend.
    pub fn dsl(source: impl Into<String>) -> Self {
        SchedulerSpec::Dsl {
            source: source.into(),
            backend: Backend::Vm,
        }
    }

    /// Convenience constructor for a DSL scheduler on a specific backend.
    pub fn dsl_on(source: impl Into<String>, backend: Backend) -> Self {
        SchedulerSpec::Dsl {
            source: source.into(),
            backend,
        }
    }
}

/// Configuration of one MPTCP connection.
#[derive(Debug)]
pub struct ConnectionConfig {
    /// The subflows (at least one).
    pub subflows: Vec<SubflowConfig>,
    /// The scheduler.
    pub scheduler: SchedulerSpec,
    /// Congestion-control algorithm.
    pub cc: CcAlgo,
    /// Receiver delivery mode (paper §4.2).
    pub receiver_mode: ReceiverMode,
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Receive buffer capacity in bytes (bounds the advertised window).
    pub recv_buf: u64,
    /// Per-execution scheduler step budget. Leaving the default
    /// ([`progmp_core::DEFAULT_STEP_BUDGET`]) means "use the admission
    /// verifier's certified per-program bound" for DSL schedulers; any
    /// other value is honoured verbatim.
    pub step_budget: u64,
    /// Maximum scheduler re-executions per trigger (compressed-execution
    /// rounds).
    pub max_sched_rounds: u32,
    /// Whether to record per-packet timelines (costs memory).
    pub record_timelines: bool,
    /// Replaces the compiled program's property certificate with this
    /// one. Testing hook for the containment tier: pairing a scheduler
    /// with a *stronger* certificate than it earns fakes a verifier
    /// soundness gap, driving the oracle's `property-*` checks — and the
    /// supervisor's quarantine path — on demand.
    pub cert_override: Option<progmp_core::PropertyCertificate>,
}

impl ConnectionConfig {
    /// A connection with the given subflows and scheduler, with defaults:
    /// Reno congestion control, improved receiver, 1400-byte MSS, 4 MiB
    /// receive buffer.
    pub fn new(subflows: Vec<SubflowConfig>, scheduler: SchedulerSpec) -> Self {
        ConnectionConfig {
            subflows,
            scheduler,
            cc: CcAlgo::Reno,
            receiver_mode: ReceiverMode::Improved,
            mss: 1400,
            recv_buf: 4 << 20,
            step_budget: progmp_core::DEFAULT_STEP_BUDGET,
            max_sched_rounds: 256,
            record_timelines: false,
            cert_override: None,
        }
    }

    /// Selects the congestion-control algorithm.
    pub fn with_cc(mut self, cc: CcAlgo) -> Self {
        self.cc = cc;
        self
    }

    /// Selects the receiver mode.
    pub fn with_receiver_mode(mut self, mode: ReceiverMode) -> Self {
        self.receiver_mode = mode;
        self
    }

    /// Sets the MSS.
    pub fn with_mss(mut self, mss: u32) -> Self {
        self.mss = mss.max(1);
        self
    }

    /// Sets the receive buffer capacity.
    pub fn with_recv_buf(mut self, bytes: u64) -> Self {
        self.recv_buf = bytes;
        self
    }

    /// Enables timeline recording.
    pub fn with_timelines(mut self) -> Self {
        self.record_timelines = true;
        self
    }

    /// Overrides the property certificate (containment-tier testing
    /// hook; see [`ConnectionConfig::cert_override`]).
    pub fn with_cert_override(mut self, cert: progmp_core::PropertyCertificate) -> Self {
        self.cert_override = Some(cert);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::from_millis;

    #[test]
    fn builders_apply() {
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_000_000))
                    .backup()
                    .with_cost(5)
                    .starting_at(from_millis(100)),
            ],
            SchedulerSpec::dsl("RETURN;"),
        )
        .with_cc(CcAlgo::Lia)
        .with_mss(1000)
        .with_recv_buf(1 << 16)
        .with_timelines();
        assert_eq!(cfg.cc, CcAlgo::Lia);
        assert_eq!(cfg.mss, 1000);
        assert!(cfg.subflows[0].backup);
        assert_eq!(cfg.subflows[0].cost, 5);
        assert_eq!(cfg.subflows[0].start_at, from_millis(100));
        assert!(cfg.record_timelines);
    }
}
