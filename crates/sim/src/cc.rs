//! Congestion control: per-subflow NewReno-style loss-based control and
//! the coupled MPTCP *Linked Increases Algorithm* (LIA, RFC 6356).
//!
//! The scheduler programming model reads `CWND`/`SSTHRESH` from this
//! block; as the paper notes (§2.1), for throughput-saturated connections
//! the congestion control effectively *schedules* the traffic because the
//! scheduler is blocked by exhausted windows.

/// Which congestion-control algorithm a connection uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcAlgo {
    /// Independent NewReno per subflow.
    #[default]
    Reno,
    /// Coupled LIA (RFC 6356): the increase term is coupled across
    /// subflows for bottleneck fairness; decrease is per-subflow.
    Lia,
}

/// Congestion-control phase of one subflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CcPhase {
    /// Exponential growth until `ssthresh`.
    #[default]
    SlowStart,
    /// Additive increase.
    CongestionAvoidance,
    /// Fast-recovery after triple-dupack; window halved.
    Recovery,
    /// After an RTO; window collapsed to 1.
    Loss,
}

/// Per-subflow congestion-control state (window units are packets).
#[derive(Debug, Clone)]
pub struct CcState {
    /// Current congestion window in packets.
    pub cwnd: u64,
    /// Slow-start threshold in packets.
    pub ssthresh: u64,
    /// Current phase.
    pub phase: CcPhase,
    /// Fractional-increase accumulator for congestion avoidance.
    acked_accum: u64,
    /// Subflow-level sequence number that ends the current recovery.
    pub recovery_point: u64,
}

/// Initial congestion window (IW10, RFC 6928).
pub const INITIAL_CWND: u64 = 10;

impl Default for CcState {
    fn default() -> Self {
        CcState {
            cwnd: INITIAL_CWND,
            ssthresh: u64::MAX / 2,
            phase: CcPhase::SlowStart,
            acked_accum: 0,
            recovery_point: 0,
        }
    }
}

impl CcState {
    /// Processes `acked` newly acknowledged packets.
    ///
    /// `lia_factor_x1024` is the coupled-increase numerator described in
    /// [`lia_alpha_x1024`]; pass `1024` for uncoupled Reno behaviour.
    pub fn on_ack(&mut self, acked: u64, lia_factor_x1024: u64) {
        match self.phase {
            CcPhase::SlowStart => {
                self.cwnd += acked;
                if self.cwnd >= self.ssthresh {
                    self.cwnd = self.cwnd.min(self.ssthresh.max(INITIAL_CWND));
                    self.phase = CcPhase::CongestionAvoidance;
                }
            }
            CcPhase::CongestionAvoidance | CcPhase::Recovery | CcPhase::Loss => {
                // Additive increase: cwnd += acked/cwnd (scaled by LIA factor).
                self.acked_accum += acked * lia_factor_x1024;
                let need = self.cwnd.max(1) * 1024;
                while self.acked_accum >= need {
                    self.acked_accum -= need;
                    self.cwnd += 1;
                }
            }
        }
    }

    /// Enters fast recovery after a triple duplicate acknowledgement.
    /// `highest_sent` is the subflow-level sequence that must be acked to
    /// leave recovery. Returns false if already recovering this window.
    pub fn on_fast_retransmit(&mut self, acked_seq: u64, highest_sent: u64) -> bool {
        if matches!(self.phase, CcPhase::Recovery | CcPhase::Loss)
            && acked_seq < self.recovery_point
        {
            return false;
        }
        self.ssthresh = (self.cwnd / 2).max(2);
        self.cwnd = self.ssthresh;
        self.phase = CcPhase::Recovery;
        self.recovery_point = highest_sent;
        true
    }

    /// Collapses the window after a retransmission timeout.
    pub fn on_timeout(&mut self, highest_sent: u64) {
        self.ssthresh = (self.cwnd / 2).max(2);
        self.cwnd = 1;
        self.phase = CcPhase::Loss;
        self.recovery_point = highest_sent;
        self.acked_accum = 0;
    }

    /// Called when the cumulative subflow ack passes the recovery point.
    pub fn maybe_exit_recovery(&mut self, acked_seq: u64) {
        if matches!(self.phase, CcPhase::Recovery | CcPhase::Loss)
            && acked_seq >= self.recovery_point
        {
            self.phase = if self.cwnd >= self.ssthresh {
                CcPhase::CongestionAvoidance
            } else {
                CcPhase::SlowStart
            };
        }
    }

    /// Whether the subflow is in a loss state (the `LOSSY` property).
    pub fn lossy(&self) -> bool {
        matches!(self.phase, CcPhase::Recovery | CcPhase::Loss)
    }
}

/// Computes the LIA coupling factor for one subflow, scaled by 1024.
///
/// RFC 6356: each subflow increases by `min(alpha/cwnd_total, 1/cwnd_i)`
/// per ack, where `alpha = cwnd_total * max_i(cwnd_i/rtt_i^2) /
/// (sum_i(cwnd_i/rtt_i))^2`. We return the resulting per-subflow
/// multiplier relative to the uncoupled `1/cwnd_i` increase, scaled by
/// 1024: `factor = min(alpha * cwnd_i / cwnd_total, 1)`.
///
/// `flows` is `(cwnd, srtt_ns)` for every subflow; `idx` selects the
/// subflow being updated.
pub fn lia_alpha_x1024(flows: &[(u64, u64)], idx: usize) -> u64 {
    if flows.len() <= 1 {
        return 1024;
    }
    let cwnd_total: f64 = flows.iter().map(|(c, _)| *c as f64).sum();
    if cwnd_total <= 0.0 {
        return 1024;
    }
    let max_term = flows
        .iter()
        .map(|&(c, r)| {
            let r = (r.max(1)) as f64 / 1e9;
            c as f64 / (r * r)
        })
        .fold(0.0f64, f64::max);
    let sum_term: f64 = flows
        .iter()
        .map(|&(c, r)| {
            let r = (r.max(1)) as f64 / 1e9;
            c as f64 / r
        })
        .sum();
    if sum_term <= 0.0 {
        return 1024;
    }
    let alpha = cwnd_total * max_term / (sum_term * sum_term);
    let cwnd_i = flows[idx].0 as f64;
    let factor = (alpha * cwnd_i / cwnd_total).clamp(0.0, 1.0);
    (factor * 1024.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = CcState::default();
        assert_eq!(cc.cwnd, 10);
        cc.on_ack(10, 1024);
        assert_eq!(cc.cwnd, 20, "one packet of growth per acked packet");
        assert_eq!(cc.phase, CcPhase::SlowStart);
    }

    #[test]
    fn congestion_avoidance_grows_one_per_window() {
        let mut cc = CcState {
            cwnd: 10,
            ssthresh: 10,
            phase: CcPhase::CongestionAvoidance,
            ..Default::default()
        };
        cc.on_ack(10, 1024);
        assert_eq!(cc.cwnd, 11, "one extra packet per full window acked");
    }

    #[test]
    fn fast_retransmit_halves_window() {
        let mut cc = CcState {
            cwnd: 20,
            ..Default::default()
        };
        assert!(cc.on_fast_retransmit(5, 30));
        assert_eq!(cc.cwnd, 10);
        assert_eq!(cc.phase, CcPhase::Recovery);
        assert!(cc.lossy());
        // A second trigger inside the same recovery window is ignored.
        assert!(!cc.on_fast_retransmit(6, 35));
        assert_eq!(cc.cwnd, 10);
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut cc = CcState {
            cwnd: 32,
            ..Default::default()
        };
        cc.on_timeout(40);
        assert_eq!(cc.cwnd, 1);
        assert_eq!(cc.ssthresh, 16);
        assert!(cc.lossy());
    }

    #[test]
    fn recovery_exits_at_recovery_point() {
        let mut cc = CcState {
            cwnd: 20,
            ..Default::default()
        };
        cc.on_fast_retransmit(5, 30);
        cc.maybe_exit_recovery(29);
        assert!(cc.lossy(), "not yet past recovery point");
        cc.maybe_exit_recovery(30);
        assert!(!cc.lossy());
    }

    #[test]
    fn lia_factor_single_flow_is_uncoupled() {
        assert_eq!(lia_alpha_x1024(&[(10, 10_000_000)], 0), 1024);
    }

    #[test]
    fn lia_factor_is_capped_at_uncoupled() {
        let flows = [(10, 10_000_000), (10, 10_000_000)];
        for i in 0..2 {
            assert!(lia_alpha_x1024(&flows, i) <= 1024);
        }
    }

    #[test]
    fn lia_slows_symmetric_flows() {
        // Two identical subflows: alpha = 2c * (c/r^2) / (2c/r)^2 = 1/2,
        // factor = alpha * c / 2c = 1/4 of uncoupled.
        let flows = [(16, 20_000_000), (16, 20_000_000)];
        let f = lia_alpha_x1024(&flows, 0);
        assert!((200..=312).contains(&f), "factor={f} expected ~256");
    }
}
