//! RFC 6298 round-trip-time estimation (SRTT, RTTVAR, RTO).

use crate::time::{SimTime, MILLIS};

/// Smoothed RTT estimator with retransmission-timeout computation,
/// following RFC 6298 (the estimator the Linux TCP stack uses, which the
/// `RTT`/`RTT_VAR` scheduler properties expose).
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<SimTime>,
    rttvar: SimTime,
    min_rto: SimTime,
    max_rto: SimTime,
}

impl RttEstimator {
    /// Creates an estimator with the given RTO clamp.
    pub fn new(min_rto: SimTime, max_rto: SimTime) -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0,
            min_rto,
            max_rto,
        }
    }

    /// Whether any sample has been observed.
    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }

    /// Records an RTT sample (nanoseconds). Samples from retransmitted
    /// packets must not be fed here (Karn's algorithm).
    pub fn sample(&mut self, rtt: SimTime) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2;
            }
            Some(srtt) => {
                let delta = srtt.abs_diff(rtt);
                self.rttvar = (3 * self.rttvar + delta) / 4;
                self.srtt = Some((7 * srtt + rtt) / 8);
            }
        }
    }

    /// Smoothed RTT (ns); 0 before the first sample.
    pub fn srtt(&self) -> SimTime {
        self.srtt.unwrap_or(0)
    }

    /// RTT mean deviation (ns).
    pub fn rttvar(&self) -> SimTime {
        self.rttvar
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimTime {
        let raw = match self.srtt {
            None => 1000 * MILLIS, // RFC 6298 initial RTO: 1 s
            Some(srtt) => srtt + (4 * self.rttvar).max(MILLIS),
        };
        raw.clamp(self.min_rto, self.max_rto)
    }

    /// Doubles the RTO state after a timeout (exponential backoff) by
    /// inflating the variance term.
    pub fn backoff(&mut self) {
        self.rttvar = (self.rttvar * 2).min(self.max_rto);
        if let Some(srtt) = self.srtt {
            // Keep srtt; backoff is expressed through rttvar inflation.
            let _ = srtt;
        }
    }
}

impl Default for RttEstimator {
    fn default() -> Self {
        RttEstimator::new(200 * MILLIS, 60_000 * MILLIS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::from_millis;

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::default();
        assert!(!e.has_sample());
        e.sample(from_millis(10));
        assert_eq!(e.srtt(), from_millis(10));
        assert_eq!(e.rttvar(), from_millis(5));
    }

    #[test]
    fn converges_to_stable_rtt() {
        let mut e = RttEstimator::default();
        for _ in 0..100 {
            e.sample(from_millis(40));
        }
        let srtt_ms = e.srtt() / MILLIS;
        assert!((39..=41).contains(&srtt_ms), "srtt={srtt_ms}ms");
        assert!(e.rttvar() < from_millis(1));
    }

    #[test]
    fn variance_tracks_jitter() {
        let mut stable = RttEstimator::default();
        let mut jittery = RttEstimator::default();
        for i in 0..100 {
            stable.sample(from_millis(30));
            jittery.sample(from_millis(if i % 2 == 0 { 10 } else { 50 }));
        }
        assert!(jittery.rttvar() > stable.rttvar() * 4);
    }

    #[test]
    fn rto_respects_min_clamp() {
        let mut e = RttEstimator::new(from_millis(200), from_millis(60_000));
        for _ in 0..50 {
            e.sample(from_millis(1));
        }
        assert_eq!(e.rto(), from_millis(200));
    }

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::default();
        assert_eq!(e.rto(), from_millis(1000));
    }

    #[test]
    fn backoff_inflates_rto() {
        let mut e = RttEstimator::default();
        for _ in 0..10 {
            e.sample(from_millis(300));
        }
        let before = e.rto();
        e.backoff();
        assert!(e.rto() >= before);
    }

    #[test]
    fn repeated_backoff_grows_exponentially_and_clamps_at_max() {
        let mut e = RttEstimator::new(from_millis(200), from_millis(60_000));
        for _ in 0..10 {
            e.sample(from_millis(100));
        }
        let mut prev = e.rto();
        let mut doublings = 0;
        for _ in 0..24 {
            e.backoff();
            let rto = e.rto();
            assert!(rto >= prev, "backoff never shrinks the RTO");
            if rto >= prev * 3 / 2 {
                doublings += 1;
            }
            prev = rto;
        }
        assert_eq!(prev, from_millis(60_000), "eventually clamped at max");
        assert!(
            doublings >= 5,
            "several near-doublings before the clamp: {doublings}"
        );
    }

    #[test]
    fn fresh_samples_after_backoff_deflate_rto_again() {
        // A spurious RTO inflates the variance term; once genuine
        // (non-retransmitted, Karn-valid) samples resume, the estimator
        // must converge back instead of staying stuck at the inflated RTO.
        let mut e = RttEstimator::default();
        for _ in 0..10 {
            e.sample(from_millis(300));
        }
        let baseline = e.rto();
        for _ in 0..4 {
            e.backoff();
        }
        let inflated = e.rto();
        assert!(inflated > baseline, "{inflated} vs {baseline}");
        for _ in 0..30 {
            e.sample(from_millis(300));
        }
        assert!(
            e.rto() <= baseline,
            "post-recovery rto {} must return to the stable value {baseline}",
            e.rto()
        );
    }
}
