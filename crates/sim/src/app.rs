//! Application traffic sources.
//!
//! The evaluation scenarios of the paper use: backlogged bulk transfers
//! (iPerf), constant-bitrate interactive streams with bitrate switches
//! (Fig. 1/13), short request/response flows (Fig. 10b/12), and bursty
//! sources (Fig. 10c). CBR and one-shot flows are precomputed event
//! schedules on [`crate::Sim`]; the backlogged bulk source needs feedback
//! (refill when the sending queue drains) and keeps its state here.

use crate::time::{SimTime, MILLIS};

/// State of a backlogged bulk sender (iPerf-style): keeps the sending
/// queue topped up to a low watermark until `remaining` is exhausted.
#[derive(Debug, Clone)]
pub struct BulkState {
    /// Target connection.
    pub conn: usize,
    /// Bytes not yet handed to the transport.
    pub remaining: u64,
    /// Packet property for enqueued data.
    pub prop: u32,
    /// Refill threshold in bytes: refill when `Q` holds less.
    pub low_watermark: u64,
    /// Poll interval.
    pub interval: SimTime,
}

impl BulkState {
    /// A bulk source with a 64 KiB watermark polled every millisecond.
    pub fn new(conn: usize, total_bytes: u64, prop: u32) -> Self {
        BulkState {
            conn,
            remaining: total_bytes,
            prop,
            low_watermark: 64 * 1024,
            interval: MILLIS,
        }
    }
}

/// Builds an on/off bursty schedule: bursts of `burst_bytes` every
/// `period`, for `count` bursts starting at `start`. Returns
/// `(time, bytes)` pairs to feed [`crate::Sim::app_send_at`].
pub fn bursty_schedule(
    start: SimTime,
    period: SimTime,
    burst_bytes: u64,
    count: usize,
) -> Vec<(SimTime, u64)> {
    (0..count)
        .map(|i| (start + period * i as u64, burst_bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_schedule_spacing() {
        let s = bursty_schedule(100, 50, 2000, 3);
        assert_eq!(s, vec![(100, 2000), (150, 2000), (200, 2000)]);
    }

    #[test]
    fn bulk_defaults() {
        let b = BulkState::new(0, 1 << 20, 7);
        assert_eq!(b.low_watermark, 64 * 1024);
        assert_eq!(b.prop, 7);
    }
}
