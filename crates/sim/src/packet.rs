//! Meta-level data segments (the simulator's `sk_buff`s) and the
//! per-connection segment arena they live in.

use crate::time::SimTime;
use progmp_core::env::{PacketRef, SubflowId};

/// One MSS-sized data segment of a connection, identified by a stable
/// [`PacketRef`] handle that the scheduler programming model operates on.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Stable handle.
    pub id: PacketRef,
    /// Data-level (meta) sequence number: offset of the first byte.
    pub seq: u64,
    /// Payload size in bytes.
    pub size: u32,
    /// Application-assigned property (paper §3.2 "Packet Properties").
    pub prop: u32,
    /// When the segment entered the sending queue.
    pub enqueued_at: SimTime,
    /// Number of transmissions (any subflow), the `SENT_COUNT` property.
    pub sent_count: u32,
    /// Subflows 0..63 this segment was transmitted on, as a bitmask —
    /// the common case of the `SENT_ON` predicate without a per-packet
    /// heap allocation.
    sent_mask: u64,
    /// Subflows ≥ 64 this segment was transmitted on. Allocated only
    /// for connections wide enough to need it (essentially never).
    sent_high: Vec<SubflowId>,
}

impl Segment {
    /// A fresh, never-transmitted segment.
    pub fn new(id: PacketRef, seq: u64, size: u32, prop: u32, enqueued_at: SimTime) -> Self {
        Segment {
            id,
            seq,
            size,
            prop,
            enqueued_at,
            sent_count: 0,
            sent_mask: 0,
            sent_high: Vec::new(),
        }
    }

    /// Whether the segment was ever sent on `sbf`.
    pub fn sent_on(&self, sbf: SubflowId) -> bool {
        if sbf.0 < 64 {
            self.sent_mask & (1 << sbf.0) != 0
        } else {
            self.sent_high.contains(&sbf)
        }
    }

    /// Records a transmission on `sbf`.
    pub fn record_tx(&mut self, sbf: SubflowId) {
        self.sent_count += 1;
        if sbf.0 < 64 {
            self.sent_mask |= 1 << sbf.0;
        } else if !self.sent_high.contains(&sbf) {
            self.sent_high.push(sbf);
        }
    }

    /// Number of distinct subflows the segment was sent on.
    pub fn sent_on_count(&self) -> u32 {
        self.sent_mask.count_ones() + self.sent_high.len() as u32
    }

    /// Exclusive end of the segment's byte range.
    pub fn end_seq(&self) -> u64 {
        self.seq + u64::from(self.size)
    }
}

/// Arena of every segment a connection ever created, indexed directly
/// by the [`PacketRef`] handle.
///
/// The connection hands out dense handles (`PacketRef(1)`,
/// `PacketRef(2)`, …), so the arena is a plain `Vec` and a lookup is
/// one bounds check — no hashing on the per-packet hot path, and all
/// segment state sits contiguously in memory. Slots are never reused:
/// a stale handle (e.g. held by a scheduler after the data was acked)
/// keeps resolving to its original, fully-acked segment, exactly as it
/// did under the old `HashMap` — which is what keeps retransmission
/// no-ops and the queue invariants semantics-identical.
#[derive(Debug, Default, Clone)]
pub struct SegmentSlab {
    segs: Vec<Segment>,
}

impl SegmentSlab {
    /// An empty arena.
    pub fn new() -> Self {
        SegmentSlab::default()
    }

    /// Allocates the next handle and stores `seg` built from it.
    /// Returns the handle.
    pub fn alloc(&mut self, seq: u64, size: u32, prop: u32, enqueued_at: SimTime) -> PacketRef {
        let id = PacketRef(self.segs.len() as u64 + 1);
        self.segs
            .push(Segment::new(id, seq, size, prop, enqueued_at));
        id
    }

    /// Segment lookup.
    pub fn get(&self, pkt: PacketRef) -> Option<&Segment> {
        self.segs.get((pkt.0 as usize).checked_sub(1)?)
    }

    /// Mutable segment lookup.
    pub fn get_mut(&mut self, pkt: PacketRef) -> Option<&mut Segment> {
        self.segs.get_mut((pkt.0 as usize).checked_sub(1)?)
    }

    /// Whether `pkt` resolves to a segment.
    pub fn contains(&self, pkt: PacketRef) -> bool {
        pkt.0 >= 1 && (pkt.0 as usize) <= self.segs.len()
    }

    /// Number of segments ever created.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// Whether no segment was ever created.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tx_tracks_subflows_and_count() {
        let mut s = Segment::new(PacketRef(1), 0, 1400, 0, 0);
        s.record_tx(SubflowId(0));
        s.record_tx(SubflowId(0));
        s.record_tx(SubflowId(1));
        assert_eq!(s.sent_count, 3);
        assert!(s.sent_on(SubflowId(0)));
        assert!(s.sent_on(SubflowId(1)));
        assert!(!s.sent_on(SubflowId(2)));
        assert_eq!(s.sent_on_count(), 2, "subflow set is deduplicated");
        assert_eq!(s.end_seq(), 1400);
    }

    #[test]
    fn wide_connections_track_high_subflows() {
        let mut s = Segment::new(PacketRef(1), 0, 1400, 0, 0);
        s.record_tx(SubflowId(63));
        s.record_tx(SubflowId(64));
        s.record_tx(SubflowId(200));
        s.record_tx(SubflowId(200));
        assert!(s.sent_on(SubflowId(63)));
        assert!(s.sent_on(SubflowId(64)));
        assert!(s.sent_on(SubflowId(200)));
        assert!(!s.sent_on(SubflowId(65)));
        assert_eq!(s.sent_on_count(), 3);
    }

    #[test]
    fn slab_hands_out_dense_handles() {
        let mut slab = SegmentSlab::new();
        let a = slab.alloc(0, 1400, 0, 0);
        let b = slab.alloc(1400, 200, 7, 5);
        assert_eq!(a, PacketRef(1));
        assert_eq!(b, PacketRef(2));
        assert_eq!(slab.len(), 2);
        assert!(slab.contains(a) && slab.contains(b));
        assert!(!slab.contains(PacketRef(0)));
        assert!(!slab.contains(PacketRef(3)));
        assert_eq!(slab.get(b).unwrap().prop, 7);
        assert_eq!(slab.get(b).unwrap().seq, 1400);
        slab.get_mut(a).unwrap().record_tx(SubflowId(1));
        assert!(slab.get(a).unwrap().sent_on(SubflowId(1)));
        assert!(slab.get(PacketRef(99)).is_none());
    }
}
