//! Meta-level data segments (the simulator's `sk_buff`s).

use crate::time::SimTime;
use progmp_core::env::{PacketRef, SubflowId};

/// One MSS-sized data segment of a connection, identified by a stable
/// [`PacketRef`] handle that the scheduler programming model operates on.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Stable handle.
    pub id: PacketRef,
    /// Data-level (meta) sequence number: offset of the first byte.
    pub seq: u64,
    /// Payload size in bytes.
    pub size: u32,
    /// Application-assigned property (paper §3.2 "Packet Properties").
    pub prop: u32,
    /// When the segment entered the sending queue.
    pub enqueued_at: SimTime,
    /// Number of transmissions (any subflow), the `SENT_COUNT` property.
    pub sent_count: u32,
    /// Subflows this segment was transmitted on, the `SENT_ON` predicate.
    pub sent_on: Vec<SubflowId>,
}

impl Segment {
    /// Whether the segment was ever sent on `sbf`.
    pub fn sent_on(&self, sbf: SubflowId) -> bool {
        self.sent_on.contains(&sbf)
    }

    /// Records a transmission on `sbf`.
    pub fn record_tx(&mut self, sbf: SubflowId) {
        self.sent_count += 1;
        if !self.sent_on.contains(&sbf) {
            self.sent_on.push(sbf);
        }
    }

    /// Exclusive end of the segment's byte range.
    pub fn end_seq(&self) -> u64 {
        self.seq + u64::from(self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tx_tracks_subflows_and_count() {
        let mut s = Segment {
            id: PacketRef(1),
            seq: 0,
            size: 1400,
            prop: 0,
            enqueued_at: 0,
            sent_count: 0,
            sent_on: Vec::new(),
        };
        s.record_tx(SubflowId(0));
        s.record_tx(SubflowId(0));
        s.record_tx(SubflowId(1));
        assert_eq!(s.sent_count, 3);
        assert!(s.sent_on(SubflowId(0)));
        assert!(s.sent_on(SubflowId(1)));
        assert!(!s.sent_on(SubflowId(2)));
        assert_eq!(s.sent_on.len(), 2, "subflow set is deduplicated");
        assert_eq!(s.end_seq(), 1400);
    }
}
