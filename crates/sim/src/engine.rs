//! The discrete-event simulation engine.
//!
//! Owns the virtual clock, the event queue, and the connections. All
//! randomness lives in per-path xorshift64* streams derived from the
//! simulation seed and the `(connection, subflow)` pair (see
//! [`crate::faults`]), so every simulation is deterministic and
//! reproducible per seed — the simulator's substitute for the paper's
//! repeated real-world measurement runs — and one path's loss/jitter
//! trace never depends on how other paths' events interleave.

use crate::app::BulkState;
use crate::calendar::CalendarQueue;
use crate::config::{ConnectionConfig, SchedulerSpec};
use crate::connection::{Connection, SchedulerHandle};
use crate::faults::{ChaosRng, FaultClause, FaultPlan, LossModel};
use crate::oracle::{InvariantOracle, OracleViolation};
use crate::path::{Path, PathProfileEntry};
use crate::pathman::{PathManager, PmAction};
use crate::receiver::Receiver;
use crate::subflow::Subflow;
use crate::supervisor::{
    classify_exec_error, fallback_program, ContainState, ContainmentConfig, FaultAction,
    FaultClass, IncidentReport, ParkedScheduler, Supervisor,
};
use crate::time::SimTime;
use progmp_core::env::{PacketRef, RegId, SchedulerEnv, SubflowId, Trigger};
use progmp_core::exec::ExecCtx;
use progmp_core::{compile, CompileError, SchedulerProgram};
use std::time::Instant;

/// Identifier of a connection within a [`Sim`].
pub type ConnId = usize;

#[derive(Debug, Clone)]
enum EventKind {
    AppData {
        conn: ConnId,
        bytes: u64,
        prop: u32,
    },
    SetRegister {
        conn: ConnId,
        reg: RegId,
        value: i64,
    },
    Arrival {
        conn: ConnId,
        sbf: u32,
        sbf_seq: u64,
        data_seq: u64,
        pkt: PacketRef,
        size: u32,
    },
    Ack {
        conn: ConnId,
        sbf: u32,
        sbf_ack: u64,
        data_ack: u64,
        rwnd: u64,
    },
    Rto {
        conn: ConnId,
        sbf: u32,
        token: u64,
    },
    Tlp {
        conn: ConnId,
        sbf: u32,
        token: u64,
    },
    SubflowUp {
        conn: ConnId,
        sbf: u32,
    },
    SubflowDown {
        conn: ConnId,
        sbf: u32,
    },
    PathChange {
        conn: ConnId,
        sbf: u32,
        entry: PathProfileEntry,
    },
    Refill {
        source: usize,
    },
    PmTick {
        conn: ConnId,
        manager: usize,
    },
    Trigger {
        conn: ConnId,
        trigger: Trigger,
    },
    FaultLoss {
        conn: ConnId,
        sbf: u32,
        model: Option<LossModel>,
    },
    FaultJitter {
        conn: ConnId,
        sbf: u32,
        amplitude: Option<SimTime>,
    },
    RwndStall {
        conn: ConnId,
        stalled: bool,
    },
    /// Probationary re-admission of a quarantined scheduler (containment
    /// supervisor backoff timer).
    Readmit {
        conn: ConnId,
    },
    /// Periodic per-connection stall watchdog tick (containment
    /// supervisor eventual-progress boundary).
    StallCheck {
        conn: ConnId,
    },
}

/// The discrete-event MPTCP simulator.
pub struct Sim {
    /// Current simulation time (ns).
    pub now: SimTime,
    queue: CalendarQueue<EventKind>,
    seed: u64,
    /// All connections, indexed by [`ConnId`].
    pub connections: Vec<Connection>,
    bulk_sources: Vec<BulkState>,
    path_managers: Vec<(ConnId, PathManager)>,
    /// Total events processed (engine health metric).
    pub events_processed: u64,
    oracle: Option<InvariantOracle>,
    supervisor: Option<Supervisor>,
}

impl Sim {
    /// Creates a simulator with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now: 0,
            queue: CalendarQueue::new(),
            seed,
            connections: Vec::new(),
            bulk_sources: Vec::new(),
            path_managers: Vec::new(),
            events_processed: 0,
            oracle: None,
            supervisor: None,
        }
    }

    /// Attaches the runtime invariant oracle (see [`crate::oracle`]).
    /// With `panic_on_violation` the first violation aborts with `label`
    /// (the replay seed) and the trailing event log; otherwise violations
    /// collect and are readable via [`Sim::oracle_violations`].
    pub fn enable_oracle(&mut self, label: impl Into<String>, panic_on_violation: bool) {
        let mut oracle = InvariantOracle::new(label, panic_on_violation);
        oracle.contain_scheduler_faults = self.supervisor.is_some();
        self.oracle = Some(oracle);
    }

    /// Attaches the containment supervisor (see [`crate::supervisor`]):
    /// scheduler faults — backend errors, oracle-detected property
    /// violations, progress stalls — quarantine the offending program
    /// behind the built-in fallback instead of failing the run. Call
    /// before the simulation starts; an attached oracle switches its
    /// scheduler-fault invariants to containment routing.
    pub fn enable_containment(&mut self, cfg: ContainmentConfig) {
        let mut sup = Supervisor::new(self.seed, cfg);
        for (i, c) in self.connections.iter().enumerate() {
            sup.register(i, c.identity);
        }
        self.supervisor = Some(sup);
        if let Some(o) = self.oracle.as_mut() {
            o.contain_scheduler_faults = true;
        }
    }

    /// The containment supervisor, when attached.
    pub fn supervisor(&self) -> Option<&Supervisor> {
        self.supervisor.as_ref()
    }

    /// Containment incidents recorded so far (empty without containment).
    pub fn incidents(&self) -> &[IncidentReport] {
        self.supervisor
            .as_ref()
            .map(|s| s.incidents.as_slice())
            .unwrap_or(&[])
    }

    /// Violations collected so far (empty when the oracle is off or
    /// everything held).
    pub fn oracle_violations(&self) -> &[OracleViolation] {
        self.oracle
            .as_ref()
            .map(|o| o.violations.as_slice())
            .unwrap_or(&[])
    }

    /// Mutable access to the attached oracle (e.g. to disable the
    /// per-event replay log on throughput-critical fleet runs).
    pub fn oracle_mut(&mut self) -> Option<&mut InvariantOracle> {
        self.oracle.as_mut()
    }

    fn schedule(&mut self, time: SimTime, kind: EventKind) {
        self.queue.push(time, kind);
    }

    /// Creates a connection from `cfg`. Fails if a DSL scheduler does not
    /// compile.
    ///
    /// The connection's per-path chaos streams are keyed by its local
    /// [`ConnId`]; use [`Sim::add_connection_with_identity`] when the
    /// connection is one shard's slice of a larger fleet and its random
    /// streams must not depend on how the fleet was partitioned.
    pub fn add_connection(&mut self, cfg: ConnectionConfig) -> Result<ConnId, CompileError> {
        let identity = self.connections.len() as u64;
        self.add_connection_with_identity(cfg, identity)
    }

    /// Creates a connection whose per-path random streams are keyed by
    /// `identity` instead of the local connection index. A fleet shard
    /// passes the *global* connection index here, which makes every
    /// loss/jitter draw a pure function of `(sim seed, identity,
    /// subflow)` — bit-identical no matter how many shards the fleet is
    /// split into.
    pub fn add_connection_with_identity(
        &mut self,
        cfg: ConnectionConfig,
        identity: u64,
    ) -> Result<ConnId, CompileError> {
        let id = self.connections.len();
        let mut step_budget = cfg.step_budget;
        // Native schedulers are opaque, so assume full capability (the
        // strict liveness standard); DSL programs are analyzed below.
        let mut pops_rq = true;
        let mut prop_cert = None;
        let scheduler = match cfg.scheduler {
            SchedulerSpec::Dsl { source, backend } => {
                let program: SchedulerProgram = compile(&source)?;
                pops_rq = program.analyze().queues_popped.contains("RQ");
                prop_cert = Some(program.property_certificate().clone());
                // The config default is a sentinel meaning "let the
                // admission verifier pick": admitted programs carry a
                // per-program certified worst-case bound, which is much
                // tighter than the blanket fallback.
                if step_budget == progmp_core::DEFAULT_STEP_BUDGET {
                    step_budget = program.certified_step_bound();
                }
                SchedulerHandle::Dsl(program.instantiate(backend))
            }
            SchedulerSpec::Native(n) => SchedulerHandle::Native(n),
        };
        let mut subflows = Vec::new();
        for (i, sc) in cfg.subflows.iter().enumerate() {
            let mut sbf = Subflow::new(SubflowId(i as u32), Path::new(&sc.path), cfg.mss);
            // Every path gets its own random stream, derived from the
            // simulation seed and its identity — loss/jitter draws never
            // cross paths (chaos-trace reproducibility).
            sbf.path
                .reseed(ChaosRng::for_path(self.seed, identity, i as u64));
            sbf.is_backup = sc.backup;
            sbf.cost = sc.cost;
            sbf.established = sc.start_at == 0;
            // Seed the RTT estimator with the handshake round-trip, as a
            // real stack would from SYN/SYN-ACK timing. Without this,
            // RTT-based scheduling decisions at cold start read 0.
            sbf.rtt.sample(sc.path.fwd_delay + sc.path.rev_delay);
            subflows.push(sbf);
            if sc.start_at > 0 {
                self.schedule(
                    sc.start_at,
                    EventKind::SubflowUp {
                        conn: id,
                        sbf: i as u32,
                    },
                );
            }
            for entry in &sc.path.profile {
                self.schedule(
                    entry.at,
                    EventKind::PathChange {
                        conn: id,
                        sbf: i as u32,
                        entry: *entry,
                    },
                );
            }
        }
        let receiver = Receiver::new(cfg.receiver_mode, subflows.len(), cfg.recv_buf);
        let mut conn = Connection::new(
            id,
            subflows,
            receiver,
            scheduler,
            cfg.cc,
            cfg.mss,
            cfg.recv_buf,
        );
        conn.identity = identity;
        conn.step_budget = step_budget;
        conn.max_sched_rounds = cfg.max_sched_rounds;
        conn.record_timelines = cfg.record_timelines;
        conn.pops_rq = pops_rq;
        conn.prop_cert = match cfg.cert_override {
            Some(cert) => Some(cert),
            None => prop_cert,
        };
        self.connections.push(conn);
        if let Some(sup) = self.supervisor.as_mut() {
            sup.register(id, identity);
        }
        Ok(id)
    }

    /// Schedules `bytes` of application data with property `prop` at `at`.
    pub fn app_send_at(&mut self, conn: ConnId, at: SimTime, bytes: u64, prop: u32) {
        self.schedule(at, EventKind::AppData { conn, bytes, prop });
    }

    /// Schedules a register write (the extended API's `setRegister`) at `at`.
    pub fn set_register_at(&mut self, conn: ConnId, at: SimTime, reg: RegId, value: i64) {
        self.schedule(at, EventKind::SetRegister { conn, reg, value });
    }

    /// Schedules a scheduler trigger (e.g. a timer-driven probe) at `at`.
    pub fn trigger_at(&mut self, conn: ConnId, at: SimTime, trigger: Trigger) {
        self.schedule(at, EventKind::Trigger { conn, trigger });
    }

    /// Tears a subflow down at `at` (connection break / handover).
    pub fn subflow_down_at(&mut self, conn: ConnId, sbf: u32, at: SimTime) {
        self.schedule(at, EventKind::SubflowDown { conn, sbf });
    }

    /// (Re-)establishes a subflow at `at`.
    pub fn subflow_up_at(&mut self, conn: ConnId, sbf: u32, at: SimTime) {
        self.schedule(at, EventKind::SubflowUp { conn, sbf });
    }

    /// Expands a [`FaultPlan`] into scheduled events against `conn`:
    /// each clause installs its fault at the window start and restores
    /// the path's baseline behaviour at the window end. Composable —
    /// plans and manual event scheduling mix freely.
    pub fn apply_fault_plan(&mut self, conn: ConnId, plan: &FaultPlan) {
        for clause in &plan.clauses {
            match *clause {
                FaultClause::Blackout { sbf, from, until } => {
                    self.schedule(
                        from,
                        EventKind::FaultLoss {
                            conn,
                            sbf,
                            model: Some(LossModel::blackout()),
                        },
                    );
                    self.schedule(
                        until,
                        EventKind::FaultLoss {
                            conn,
                            sbf,
                            model: None,
                        },
                    );
                }
                FaultClause::BurstLoss {
                    sbf,
                    from,
                    until,
                    p_enter_bad,
                    p_exit_bad,
                    loss_bad,
                } => {
                    self.schedule(
                        from,
                        EventKind::FaultLoss {
                            conn,
                            sbf,
                            model: Some(LossModel::GilbertElliott {
                                p_enter_bad,
                                p_exit_bad,
                                loss_good: 0,
                                loss_bad,
                                bad: false,
                            }),
                        },
                    );
                    self.schedule(
                        until,
                        EventKind::FaultLoss {
                            conn,
                            sbf,
                            model: None,
                        },
                    );
                }
                FaultClause::DelayJitter {
                    sbf,
                    from,
                    until,
                    amplitude,
                } => {
                    self.schedule(
                        from,
                        EventKind::FaultJitter {
                            conn,
                            sbf,
                            amplitude: Some(amplitude),
                        },
                    );
                    self.schedule(
                        until,
                        EventKind::FaultJitter {
                            conn,
                            sbf,
                            amplitude: None,
                        },
                    );
                }
                FaultClause::RwndStall { from, until } => {
                    self.schedule(
                        from,
                        EventKind::RwndStall {
                            conn,
                            stalled: true,
                        },
                    );
                    self.schedule(
                        until,
                        EventKind::RwndStall {
                            conn,
                            stalled: false,
                        },
                    );
                }
                FaultClause::Churn {
                    sbf,
                    down_at,
                    up_at,
                } => {
                    self.subflow_down_at(conn, sbf, down_at);
                    self.subflow_up_at(conn, sbf, up_at);
                }
            }
        }
    }

    /// Attaches a path manager to `conn`; its policy is evaluated every
    /// `manager.interval` starting now. Returns the manager index.
    pub fn attach_path_manager(&mut self, conn: ConnId, manager: PathManager) -> usize {
        let idx = self.path_managers.len();
        let first = self.now + manager.interval;
        self.path_managers.push((conn, manager));
        self.schedule(first, EventKind::PmTick { conn, manager: idx });
        idx
    }

    /// Adds a backlogged bulk sender that keeps `Q` topped up (an
    /// iPerf-style source). Returns the source index.
    pub fn add_bulk_source(&mut self, conn: ConnId, total_bytes: u64, prop: u32) -> usize {
        let idx = self.bulk_sources.len();
        self.bulk_sources
            .push(BulkState::new(conn, total_bytes, prop));
        self.schedule(0, EventKind::Refill { source: idx });
        idx
    }

    /// Adds a constant-bitrate source: every `chunk_interval`, enqueues
    /// `rate * chunk_interval` bytes, from `start` until `end`.
    pub fn add_cbr_source(
        &mut self,
        conn: ConnId,
        start: SimTime,
        end: SimTime,
        rate_bytes_per_sec: u64,
        chunk_interval: SimTime,
        prop: u32,
    ) {
        let mut t = start;
        while t < end {
            let bytes = rate_bytes_per_sec.saturating_mul(chunk_interval) / crate::time::SECONDS;
            if bytes > 0 {
                self.app_send_at(conn, t, bytes, prop);
            }
            t += chunk_interval;
        }
    }

    /// Runs all events up to and including `until`, then sets the clock
    /// to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(t) = self.queue.next_time() {
            if t > until {
                break;
            }
            let (time, kind) = self.queue.pop().expect("peeked");
            self.now = time;
            self.events_processed += 1;
            if let Some(o) = &mut self.oracle {
                if o.log_events {
                    o.log_event(format!("t={time} {kind:?}"));
                }
            }
            self.dispatch(kind);
            self.oracle_check();
        }
        self.now = until;
    }

    /// Runs until the event queue drains or `max_time` is reached. When
    /// the queue fully drains with the oracle attached, the quiescent
    /// eventual-progress invariant is checked as well.
    pub fn run_to_completion(&mut self, max_time: SimTime) {
        loop {
            while let Some(t) = self.queue.next_time() {
                if t > max_time {
                    break;
                }
                let (time, kind) = self.queue.pop().expect("peeked");
                self.now = time;
                self.events_processed += 1;
                if let Some(o) = &mut self.oracle {
                    if o.log_events {
                        o.log_event(format!("t={time} {kind:?}"));
                    }
                }
                self.dispatch(kind);
                self.oracle_check();
            }
            if !self.queue.is_empty() {
                // Horizon reached with events still pending: quiescent
                // checks do not apply.
                return;
            }
            if let Some(oracle) = self.oracle.as_mut() {
                for conn in &self.connections {
                    oracle.check_quiescent(self.now, conn);
                }
            }
            // Under containment the quiescent check queued any
            // eventual-progress violation instead of reporting it; the
            // supervisor quarantines the offender and the fallback gets
            // a chance to drain the stranded data.
            let mut swapped = false;
            if self.supervisor.is_some() {
                let pending = self
                    .oracle
                    .as_mut()
                    .map(|o| o.take_pending_faults())
                    .unwrap_or_default();
                for (conn, invariant) in pending {
                    if self.contain_fault(conn, FaultClass::OracleViolation { invariant }, None) {
                        self.run_scheduler(conn, Trigger::Timer);
                        swapped = true;
                    }
                }
            }
            if !swapped || self.queue.is_empty() {
                return;
            }
        }
    }

    /// Runs the per-event oracle checks over every connection.
    fn oracle_check(&mut self) {
        let Some(oracle) = self.oracle.as_mut() else {
            return;
        };
        for conn in &self.connections {
            oracle.check(self.now, conn);
        }
    }

    fn dispatch(&mut self, kind: EventKind) {
        match kind {
            EventKind::AppData { conn, bytes, prop } => {
                let now = self.now;
                self.connections[conn].now = now;
                self.connections[conn].enqueue_data(bytes, prop, now);
                self.arm_stall_watchdog(conn);
                self.run_scheduler(conn, Trigger::NewData);
            }
            EventKind::SetRegister { conn, reg, value } => {
                self.connections[conn].set_register_direct(reg, value);
                self.run_scheduler(conn, Trigger::RegisterChanged);
            }
            EventKind::Arrival {
                conn,
                sbf,
                sbf_seq,
                data_seq,
                pkt,
                size,
            } => {
                let now = self.now;
                let c = &mut self.connections[conn];
                let res = c
                    .receiver
                    .on_arrival(sbf as usize, sbf_seq, data_seq, pkt, size);
                if res.delivered_bytes > 0 {
                    c.stats.delivered_bytes += res.delivered_bytes;
                    if c.record_timelines {
                        c.stats
                            .delivery_timeline
                            .push((now, c.receiver.delivered_total));
                    }
                }
                let rwnd = c.receiver.rwnd();
                let rev_delay = c.subflows[sbf as usize].path.rev_delay;
                self.schedule(
                    now + rev_delay,
                    EventKind::Ack {
                        conn,
                        sbf,
                        sbf_ack: res.sbf_ack,
                        data_ack: res.data_ack,
                        rwnd,
                    },
                );
            }
            EventKind::Ack {
                conn,
                sbf,
                sbf_ack,
                data_ack,
                rwnd,
            } => {
                let now = self.now;
                self.connections[conn].now = now;
                let out =
                    self.connections[conn].handle_ack(sbf as usize, sbf_ack, data_ack, rwnd, now);
                for (pkt, seq) in &out.auto_retransmit {
                    self.transmit(conn, sbf as usize, *pkt, Some(*seq));
                }
                if let Some(at) = out.rearm_rto_at {
                    let token = self.connections[conn].subflows[sbf as usize].rto_token;
                    self.schedule(at, EventKind::Rto { conn, sbf, token });
                }
                // (Re-)arm the tail-loss probe: each ack pushes the probe
                // deadline out; it only fires after a quiet period with
                // data still in flight.
                {
                    let s = &mut self.connections[conn].subflows[sbf as usize];
                    s.tlp_token += 1;
                    if s.in_flight() > 0 {
                        s.tlp_armed = true;
                        let at = now + s.pto();
                        let token = s.tlp_token;
                        self.schedule(at, EventKind::Tlp { conn, sbf, token });
                    } else {
                        s.tlp_armed = false;
                    }
                }
                let trigger = if out.loss_suspected {
                    Trigger::LossSuspected
                } else {
                    Trigger::AckReceived
                };
                self.run_scheduler(conn, trigger);
            }
            EventKind::Rto { conn, sbf, token } => {
                let now = self.now;
                {
                    let s = &mut self.connections[conn].subflows[sbf as usize];
                    if !s.rto_armed || s.rto_token != token {
                        return;
                    }
                }
                self.connections[conn].now = now;
                let out = self.connections[conn].handle_rto(sbf as usize, now);
                if out.disarm_rto {
                    return;
                }
                for (pkt, seq) in &out.auto_retransmit {
                    self.transmit(conn, sbf as usize, *pkt, Some(*seq));
                }
                // Re-arm with backed-off RTO.
                {
                    let s = &mut self.connections[conn].subflows[sbf as usize];
                    s.rto_token += 1;
                    let token = s.rto_token;
                    let at = now + s.rtt.rto();
                    s.rto_armed = true;
                    self.schedule(at, EventKind::Rto { conn, sbf, token });
                }
                self.run_scheduler(conn, Trigger::LossSuspected);
            }
            EventKind::Tlp { conn, sbf, token } => {
                let now = self.now;
                let (probe, rearm) = {
                    let s = &mut self.connections[conn].subflows[sbf as usize];
                    if !s.tlp_armed || s.tlp_token != token || s.in_flight() == 0 {
                        if s.in_flight() == 0 {
                            s.tlp_armed = false;
                        }
                        return;
                    }
                    // Probe: retransmit the oldest unacked segment on this
                    // subflow and flag it loss-suspected at the meta level.
                    let front = s.sent.front().map(|r| (r.pkt, r.sbf_seq));
                    s.tlp_token += 1;
                    let token = s.tlp_token;
                    // Back off further probes to the full RTO pace.
                    let at = now + s.rtt.rto();
                    (front, (at, token))
                };
                if let Some((pkt, seq)) = probe {
                    self.connections[conn].now = now;
                    let reinjected = self.connections[conn].reinject(pkt);
                    self.transmit(conn, sbf as usize, pkt, Some(seq));
                    self.schedule(
                        rearm.0,
                        EventKind::Tlp {
                            conn,
                            sbf,
                            token: rearm.1,
                        },
                    );
                    if reinjected {
                        self.run_scheduler(conn, Trigger::LossSuspected);
                    }
                }
            }
            EventKind::SubflowUp { conn, sbf } => {
                self.connections[conn].set_subflow_established(sbf as usize, true);
                self.run_scheduler(conn, Trigger::SubflowChange);
            }
            EventKind::SubflowDown { conn, sbf } => {
                self.connections[conn].set_subflow_established(sbf as usize, false);
                self.run_scheduler(conn, Trigger::SubflowChange);
            }
            EventKind::PathChange { conn, sbf, entry } => {
                self.connections[conn].subflows[sbf as usize]
                    .path
                    .apply_profile(&entry);
            }
            EventKind::Refill { source } => {
                self.handle_refill(source);
            }
            EventKind::PmTick { conn, manager } => {
                let actions = {
                    let c = &self.connections[conn];
                    self.path_managers[manager].1.tick(c)
                };
                let mut register_changed = false;
                for action in actions {
                    match action {
                        PmAction::SubflowUp(i) => {
                            self.connections[conn].set_subflow_established(i as usize, true);
                            self.run_scheduler(conn, Trigger::SubflowChange);
                        }
                        PmAction::SubflowDown(i) => {
                            self.connections[conn].set_subflow_established(i as usize, false);
                            self.run_scheduler(conn, Trigger::SubflowChange);
                        }
                        PmAction::SetRegister(reg, value) => {
                            self.connections[conn].set_register_direct(reg, value);
                            register_changed = true;
                        }
                    }
                }
                if register_changed {
                    self.run_scheduler(conn, Trigger::RegisterChanged);
                }
                let interval = self.path_managers[manager].1.interval;
                let at = self.now + interval;
                self.schedule(at, EventKind::PmTick { conn, manager });
            }
            EventKind::Trigger { conn, trigger } => {
                self.run_scheduler(conn, trigger);
            }
            EventKind::FaultLoss { conn, sbf, model } => {
                if let Some(s) = self.connections[conn].subflows.get_mut(sbf as usize) {
                    s.path.set_fault_loss(model);
                }
            }
            EventKind::FaultJitter {
                conn,
                sbf,
                amplitude,
            } => {
                if let Some(s) = self.connections[conn].subflows.get_mut(sbf as usize) {
                    s.path.set_jitter(amplitude);
                }
            }
            EventKind::RwndStall { conn, stalled } => {
                // The stall models the receiving application pausing its
                // reads only as far as the *sender* sees it: the
                // advertised window collapses to zero immediately (the
                // zero-window advertisement) and reopens with a window
                // update when the stall clears, at which point the
                // scheduler gets a chance to resume.
                let c = &mut self.connections[conn];
                c.receiver.set_stalled(stalled);
                c.adv_rwnd = c.receiver.rwnd();
                if !stalled {
                    self.run_scheduler(conn, Trigger::Timer);
                }
            }
            EventKind::Readmit { conn } => {
                self.handle_readmit(conn);
            }
            EventKind::StallCheck { conn } => {
                self.handle_stall_check(conn);
            }
        }
    }

    fn handle_refill(&mut self, source: usize) {
        let now = self.now;
        let (conn, add, reschedule) = {
            let s = &self.bulk_sources[source];
            if s.remaining == 0 {
                return;
            }
            let c = &self.connections[s.conn];
            let q_bytes = c.q_bytes();
            let add = if q_bytes < s.low_watermark {
                (s.low_watermark * 2 - q_bytes).min(s.remaining)
            } else {
                0
            };
            (s.conn, add, true)
        };
        if add > 0 {
            self.bulk_sources[source].remaining -= add;
            let prop = self.bulk_sources[source].prop;
            self.connections[conn].now = now;
            self.connections[conn].enqueue_data(add, prop, now);
            self.arm_stall_watchdog(conn);
            self.run_scheduler(conn, Trigger::NewData);
        }
        if reschedule && self.bulk_sources[source].remaining > 0 {
            let interval = self.bulk_sources[source].interval;
            self.schedule(now + interval, EventKind::Refill { source });
        }
    }

    /// Executes the scheduler of `conn` to quiescence (the paper's
    /// compressed-execution driver), flushing requested transmissions
    /// after every round so each round observes fresh state.
    ///
    /// Every round runs under the containment fault boundary: a backend
    /// error or an oracle-detected property violation is converted into
    /// a structured [`FaultClass`] and — when the supervisor is attached
    /// — handled by quarantining the program behind the fallback, which
    /// then gets an immediate execution on the same trigger.
    pub fn run_scheduler(&mut self, conn: ConnId, trigger: Trigger) {
        let _ = trigger;
        let Some(mut handle) = self.connections[conn].scheduler.take() else {
            return;
        };
        let max_rounds = self.connections[conn].max_sched_rounds;
        let mut fault: Option<(FaultClass, Option<String>)> = None;
        for _ in 0..max_rounds {
            let pushes;
            let mut prop_obs: Option<crate::oracle::PropObservation> = None;
            {
                let c = &mut self.connections[conn];
                c.now = self.now;
                let budget = c.step_budget;
                // Pre-state for the property certificate's dynamic checks
                // must be sampled before the execution mutates the views.
                let watch_props = self.oracle.is_some() && c.prop_cert.is_some();
                let (pre_q_nonempty, pre_subflows_nonempty, pre_avail_subflow, n_subflows) =
                    if watch_props {
                        let env: &dyn SchedulerEnv = &*c;
                        // Availability mirrors the DSL predicate the
                        // work-conservation analysis assumes (wrapping
                        // arithmetic matches the interpreter's ADD).
                        let avail = env.subflows().iter().any(|&s| {
                            use progmp_core::env::SubflowProp as P;
                            let prop = |p| env.subflow_prop(s, p);
                            prop(P::TsqThrottled) == 0
                                && prop(P::Lossy) == 0
                                && prop(P::Cwnd)
                                    > prop(P::SkbsInFlight).wrapping_add(prop(P::Queued))
                        });
                        (
                            !env.queue(progmp_core::env::QueueKind::SendQueue).is_empty(),
                            !env.subflows().is_empty(),
                            avail,
                            env.subflows().len() as u64,
                        )
                    } else {
                        (false, false, false, 0)
                    };
                let t0 = Instant::now();
                let mut ctx = ExecCtx::new(&*c, budget);
                let result = handle.execute_once(&mut ctx);
                let host_ns = t0.elapsed().as_nanos() as u64;
                if let Err(err) = &result {
                    c.stats.scheduler_errors += 1;
                    fault = Some((classify_exec_error(err), fault_location(&handle, err)));
                    break;
                }
                let (regs, actions, stats) = ctx.finish();
                if watch_props {
                    let push_targets = actions
                        .iter()
                        .filter_map(|a| match a {
                            progmp_core::env::Action::Push { subflow, packet } => {
                                Some((subflow.0, *packet))
                            }
                            _ => None,
                        })
                        .collect();
                    prop_obs = Some(crate::oracle::PropObservation {
                        pre_q_nonempty,
                        pre_subflows_nonempty,
                        pre_avail_subflow,
                        pushes: u64::from(stats.pushes),
                        null_pops: u64::from(stats.null_pops),
                        push_targets,
                        n_subflows,
                    });
                }
                c.apply(&regs, &actions);
                c.stats.scheduler_executions += 1;
                c.stats.scheduler_steps += stats.steps;
                c.stats.scheduler_host_ns += host_ns;
                pushes = stats.pushes;
            }
            if let Some(obs) = prop_obs {
                let oracle = self.oracle.as_mut().expect("checked above");
                if let Some(cert) = self.connections[conn].prop_cert.as_ref() {
                    oracle.check_properties(self.now, conn, cert, &obs);
                }
                // Under containment routing the oracle queued any
                // property violation instead of reporting it; the
                // supervisor treats it like a backend fault.
                if self.supervisor.is_some() {
                    for (fc, invariant) in self
                        .oracle
                        .as_mut()
                        .expect("checked above")
                        .take_pending_faults()
                    {
                        debug_assert_eq!(fc, conn, "property faults arise on the executing conn");
                        fault = Some((FaultClass::OracleViolation { invariant }, None));
                    }
                }
            }
            let pending = self.connections[conn].take_pending_tx();
            for (sbf, pkt) in pending {
                self.transmit(conn, sbf.0 as usize, pkt, None);
            }
            if fault.is_some() || pushes == 0 {
                break;
            }
        }
        self.connections[conn].scheduler = Some(handle);
        if let Some((class, location)) = fault {
            if self.contain_fault(conn, class, location) {
                // The fallback just took over; run it on the same
                // trigger so the event that found the fault still gets
                // scheduled. Recursion is bounded: a fault while
                // quarantined is recorded, never re-swapped.
                self.run_scheduler(conn, Trigger::Timer);
            }
        }
    }

    /// Routes a classified scheduler fault through the supervisor.
    /// Returns `true` when the fallback was installed (the caller should
    /// give it an immediate execution).
    fn contain_fault(&mut self, conn: ConnId, class: FaultClass, location: Option<String>) -> bool {
        let now = self.now;
        let Some(sup) = self.supervisor.as_mut() else {
            return false;
        };
        let action = sup.on_fault(now, conn, class, location);
        if sup.take_breaker_trip() {
            // Fleet-level breaker: from here on the oracle collects
            // instead of aborting, so one bad cohort cannot take down
            // the connections that are still healthy.
            if let Some(o) = self.oracle.as_mut() {
                o.set_panic_on_violation(false);
            }
        }
        match action {
            FaultAction::Recorded => false,
            FaultAction::Quarantine { until } => {
                self.install_fallback(conn);
                self.schedule(until, EventKind::Readmit { conn });
                true
            }
            FaultAction::Pin => {
                self.install_fallback(conn);
                true
            }
        }
    }

    /// Parks the connection's scheduler (with its certificate, `RQ`
    /// capability, and step budget) and installs the shared fallback.
    fn install_fallback(&mut self, conn: ConnId) {
        let c = &mut self.connections[conn];
        let parked = ParkedScheduler {
            handle: c
                .scheduler
                .take()
                .expect("scheduler is restored before fault handling"),
            prop_cert: c.prop_cert.take(),
            pops_rq: c.pops_rq,
            step_budget: c.step_budget,
        };
        let program = fallback_program();
        c.scheduler = Some(SchedulerHandle::Dsl(SchedulerProgram::instantiate_shared(
            program.clone(),
            progmp_core::Backend::Vm,
        )));
        c.prop_cert = Some(program.property_certificate().clone());
        c.pops_rq = true;
        c.step_budget = program.certified_step_bound();
        self.supervisor
            .as_mut()
            .expect("containment active")
            .park(conn, parked);
    }

    /// Arms the per-connection stall watchdog when containment is on and
    /// new data just arrived (idempotent while armed).
    fn arm_stall_watchdog(&mut self, conn: ConnId) {
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        let data_acked = self.connections[conn].data_acked;
        if sup.arm_watchdog(conn, data_acked) {
            let at = self.now + sup.stall_check_interval();
            self.schedule(at, EventKind::StallCheck { conn });
        }
    }

    /// One stall-watchdog tick: faults the scheduler with
    /// [`FaultClass::ProgressStall`] when a full period passed with
    /// schedulable work, an available subflow, an open receive window,
    /// and zero forward progress. All inputs are per-connection state and
    /// the tick times are multiples of the period from the connection's
    /// own first-data event, so the decision is identical no matter how a
    /// fleet is sharded.
    fn handle_stall_check(&mut self, conn: ConnId) {
        use progmp_core::env::{QueueKind, SchedulerEnv, SubflowProp};
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        let c = &self.connections[conn];
        if c.all_acked() {
            sup.disarm_watchdog(conn);
            return;
        }
        let progressed = sup.watchdog_progressed(conn, c.data_acked);
        let interval = sup.stall_check_interval();
        let state = sup.state(conn);
        let live = c.subflows.iter().any(|s| s.established);
        // Schedulable work: data reachable through Q or RQ (the fallback
        // pops RQ even when the original program does not).
        let env: &dyn SchedulerEnv = c;
        let work = !env.queue(QueueKind::SendQueue).is_empty()
            || !env.queue(QueueKind::Reinject).is_empty();
        // An execution right now could actually push: mirrors the
        // work-conservation availability precondition. Without this, a
        // path blackout or an exhausted congestion window would be blamed
        // on the scheduler.
        let avail = env.subflows().iter().any(|&s| {
            let prop = |p| env.subflow_prop(s, p);
            prop(SubflowProp::TsqThrottled) == 0
                && prop(SubflowProp::Lossy) == 0
                && prop(SubflowProp::Cwnd)
                    > prop(SubflowProp::SkbsInFlight).wrapping_add(prop(SubflowProp::Queued))
        });
        let stalled = !progressed
            && live
            && work
            && avail
            && c.adv_rwnd > 0
            && c.stats.scheduler_drops == 0
            && matches!(state, ContainState::Healthy | ContainState::Probation);
        if stalled && self.contain_fault(conn, FaultClass::ProgressStall, None) {
            self.run_scheduler(conn, Trigger::Timer);
        }
        self.schedule(self.now + interval, EventKind::StallCheck { conn });
    }

    /// Handles the supervisor's re-admission timer: restores the parked
    /// scheduler on probation and gives it an immediate execution.
    fn handle_readmit(&mut self, conn: ConnId) {
        let now = self.now;
        let Some(sup) = self.supervisor.as_mut() else {
            return;
        };
        if let Some(parked) = sup.unpark(now, conn) {
            let c = &mut self.connections[conn];
            c.scheduler = Some(parked.handle);
            c.prop_cert = parked.prop_cert;
            c.pops_rq = parked.pops_rq;
            c.step_budget = parked.step_budget;
            self.run_scheduler(conn, Trigger::Timer);
        }
    }

    /// Transmits `pkt` on subflow `sbf_idx` of `conn`. `reuse_seq` marks a
    /// TCP-level retransmission of an existing subflow sequence number.
    fn transmit(&mut self, conn: ConnId, sbf_idx: usize, pkt: PacketRef, reuse_seq: Option<u64>) {
        let now = self.now;
        let mut arrival = None;
        let mut arm_rto = None;
        let mut arm_tlp = None;
        let mut departure = None;
        {
            let c = &mut self.connections[conn];
            let Some(seg) = c.segments.get(pkt) else {
                return;
            };
            let (size, data_seq) = (seg.size, seg.seq);
            if !c.subflows[sbf_idx].established {
                return;
            }
            let is_rtx = reuse_seq.is_some();
            // Loss and jitter draws happen inside the path, from its own
            // per-path stream.
            let outcome = c.subflows[sbf_idx].path.transmit(now, size);
            let sbf_seq = c.record_tx(sbf_idx, pkt, size, now, reuse_seq);
            c.subflows[sbf_idx].last_activity = now;
            // Statistics.
            c.stats.tx_packets += 1;
            c.stats.tx_bytes += u64::from(size);
            let ss = &mut c.stats.subflows[sbf_idx];
            ss.tx_packets += 1;
            ss.tx_bytes += u64::from(size);
            if is_rtx {
                ss.retransmissions += 1;
            }
            match outcome {
                crate::path::TxOutcome::Arrives { at, departs } => {
                    arrival = Some((at, sbf_seq, data_seq, size));
                    departure = Some(departs);
                }
                crate::path::TxOutcome::LostOnWire { departs } => {
                    ss.wire_losses += 1;
                    departure = Some(departs);
                }
                crate::path::TxOutcome::QueueDrop => {
                    ss.queue_drops += 1;
                }
            }
            if c.record_timelines {
                c.stats.tx_timeline.push((now, sbf_idx as u32, size));
            }
            let s = &mut c.subflows[sbf_idx];
            if !s.rto_armed {
                s.rto_armed = true;
                s.rto_token += 1;
                arm_rto = Some((now + s.rtt.rto(), s.rto_token));
            }
            if !s.tlp_armed {
                s.tlp_armed = true;
                s.tlp_token += 1;
                arm_tlp = Some((now + s.pto(), s.tlp_token));
            }
        }
        if let Some((at, sbf_seq, data_seq, size)) = arrival {
            self.schedule(
                at,
                EventKind::Arrival {
                    conn,
                    sbf: sbf_idx as u32,
                    sbf_seq,
                    data_seq,
                    pkt,
                    size,
                },
            );
        }
        if let Some((at, token)) = arm_rto {
            self.schedule(
                at,
                EventKind::Rto {
                    conn,
                    sbf: sbf_idx as u32,
                    token,
                },
            );
        }
        if let Some((at, token)) = arm_tlp {
            self.schedule(
                at,
                EventKind::Tlp {
                    conn,
                    sbf: sbf_idx as u32,
                    token,
                },
            );
        }
        // Re-invoke the scheduler when the egress queue drains (the
        // Linux TSQ tasklet's role): a TSQ-throttled subflow becomes
        // schedulable again at the packet's departure time.
        if let Some(departs) = departure {
            if departs > now {
                self.schedule(
                    departs,
                    EventKind::Trigger {
                        conn,
                        trigger: Trigger::Timer,
                    },
                );
            }
        }
    }
}

/// Source location (`line:col`) of a backend fault, when attributable:
/// a `MalformedBytecode` fault carries its program counter, which the
/// compiled program's debug table maps back to the DSL span.
fn fault_location(handle: &SchedulerHandle, err: &progmp_core::ExecError) -> Option<String> {
    let SchedulerHandle::Dsl(inst) = handle else {
        return None;
    };
    let progmp_core::ExecError::MalformedBytecode { pc, .. } = err else {
        return None;
    };
    let pos = inst.program().debug_table().pos(*pc);
    (pos.line > 0).then(|| format!("{}:{}", pos.line, pos.col))
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::config::{ConnectionConfig, SchedulerSpec, SubflowConfig};
    use crate::path::PathConfig;
    use crate::time::{from_millis, SECONDS};

    /// Default scheduler used across engine tests: reinjections first,
    /// then min-RTT with free cwnd (the paper's default scheduler).
    pub(crate) const MIN_RTT_DSL: &str = "
        VAR rqSkb = RQ.TOP;
        VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
        IF (rqSkb != NULL) {
            VAR rtxSbf = avail.FILTER(sbf => !rqSkb.SENT_ON(sbf)).MIN(sbf => sbf.RTT);
            IF (rtxSbf != NULL) {
                rtxSbf.PUSH(RQ.POP());
                RETURN;
            }
        }
        IF (!Q.EMPTY) {
            avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
        }";

    fn two_path_config(scheduler: SchedulerSpec) -> ConnectionConfig {
        ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
                SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
            ],
            scheduler,
        )
        .with_timelines()
    }

    #[test]
    fn bulk_transfer_completes_over_two_subflows() {
        let mut sim = Sim::new(7);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(MIN_RTT_DSL)))
            .unwrap();
        sim.app_send_at(conn, 0, 200_000, 0);
        sim.run_to_completion(20 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked(), "all data acknowledged");
        assert_eq!(c.stats.delivered_bytes, 200_000);
        assert_eq!(c.receiver.delivered_total, 200_000);
    }

    #[test]
    fn min_rtt_prefers_fast_path_for_thin_flow() {
        let mut sim = Sim::new(7);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(MIN_RTT_DSL)))
            .unwrap();
        // A thin flow: one packet at a time, fits the fast subflow.
        for i in 0..10 {
            sim.app_send_at(conn, i * from_millis(100), 1400, 0);
        }
        sim.run_to_completion(5 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked());
        assert!(
            c.stats.subflows[0].tx_packets >= 9,
            "fast subflow carries (nearly) everything: {:?}",
            c.stats
                .subflows
                .iter()
                .map(|s| s.tx_packets)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn lossy_path_recovers_via_retransmission() {
        let mut sim = Sim::new(42);
        let cfg = ConnectionConfig::new(
            vec![SubflowConfig::new(
                PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(0.05),
            )],
            SchedulerSpec::dsl(MIN_RTT_DSL),
        );
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, 500_000, 0);
        sim.run_to_completion(60 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked(), "lossy transfer still completes");
        assert!(
            c.stats.subflows[0].wire_losses > 0,
            "losses actually happened"
        );
        assert!(
            c.stats.subflows[0].retransmissions > 0 || c.stats.tx_packets > 358,
            "recovery transmitted extra packets"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed: u64| {
            let mut sim = Sim::new(seed);
            let cfg = ConnectionConfig::new(
                vec![SubflowConfig::new(
                    PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(0.02),
                )],
                SchedulerSpec::dsl(MIN_RTT_DSL),
            );
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 100_000, 0);
            sim.run_to_completion(30 * SECONDS);
            let c = &sim.connections[conn];
            (c.stats.tx_packets, c.stats.subflows[0].wire_losses, sim.now)
        };
        assert_eq!(run(5), run(5), "same seed, same outcome");
        assert_ne!(run(5), run(6), "different seeds diverge");
    }

    #[test]
    fn redundant_scheduler_duplicates_traffic() {
        const REDUNDANT: &str = "
            IF (!Q.EMPTY) {
                VAR skb = Q.POP();
                FOREACH(VAR sbf IN SUBFLOWS) { sbf.PUSH(skb); }
            }";
        let mut sim = Sim::new(7);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(REDUNDANT)))
            .unwrap();
        sim.app_send_at(conn, 0, 14_000, 0);
        sim.run_to_completion(10 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked());
        assert!(
            (c.stats.overhead_ratio() - 2.0).abs() < 0.05,
            "full redundancy doubles transmitted bytes: ratio={}",
            c.stats.overhead_ratio()
        );
    }

    #[test]
    fn bulk_source_keeps_queue_fed() {
        let mut sim = Sim::new(9);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(MIN_RTT_DSL)))
            .unwrap();
        sim.add_bulk_source(conn, 2_000_000, 0);
        sim.run_to_completion(30 * SECONDS);
        let c = &sim.connections[conn];
        assert_eq!(c.stats.delivered_bytes, 2_000_000);
        assert!(c.all_acked());
    }

    #[test]
    fn subflow_down_reinjects_and_recovery_uses_other_path() {
        let mut sim = Sim::new(11);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(MIN_RTT_DSL)))
            .unwrap();
        sim.app_send_at(conn, 0, 100_000, 0);
        sim.subflow_down_at(conn, 0, from_millis(30));
        sim.run_to_completion(30 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked(), "transfer completes over surviving subflow");
        assert!(c.stats.subflows[1].tx_packets > 0);
    }

    #[test]
    fn cbr_source_paces_data() {
        let mut sim = Sim::new(3);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(MIN_RTT_DSL)))
            .unwrap();
        // 1 MB/s for 2 seconds in 10 ms chunks.
        sim.add_cbr_source(conn, 0, 2 * SECONDS, 1_000_000, from_millis(10), 0);
        sim.run_to_completion(5 * SECONDS);
        let c = &sim.connections[conn];
        assert_eq!(c.enqueued_bytes(), 2_000_000);
        assert!(c.all_acked());
    }

    #[test]
    fn scheduler_registers_persist_across_events() {
        const COUNTER: &str =
            "SET(R1, R1 + 1); IF (!Q.EMPTY) { SUBFLOWS.MIN(s => s.RTT).PUSH(Q.POP()); }";
        let mut sim = Sim::new(7);
        let conn = sim
            .add_connection(two_path_config(SchedulerSpec::dsl(COUNTER)))
            .unwrap();
        sim.app_send_at(conn, 0, 1400, 0);
        sim.run_to_completion(SECONDS);
        let c = &sim.connections[conn];
        assert!(c.register_direct(RegId::R1) >= 2, "executions accumulated");
        assert!(c.all_acked());
    }
}
