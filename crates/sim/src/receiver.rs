//! Receiver-side packet handling: per-subflow in-order tracking, the meta
//! reorder queue, and in-order delivery to the application.
//!
//! Implements both receiver behaviours discussed in paper §4.2:
//!
//! * [`ReceiverMode::Improved`] — the paper's fix: any packet that fits
//!   in-order at the *meta* level is delivered immediately, regardless of
//!   subflow-level ordering.
//! * [`ReceiverMode::Legacy`] — the stock Linux behaviour the paper
//!   criticizes: a packet is held in its subflow's out-of-order queue
//!   until it is in-subflow-order, even when it would already fit
//!   in-order at the meta level.
//!
//! Subflow-level cumulative acknowledgements advance identically in both
//! modes (that part is plain TCP); only meta delivery differs.

use progmp_core::env::PacketRef;
use std::collections::BTreeMap;

/// Receiver delivery strategy (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReceiverMode {
    /// Deliver meta-in-order data as soon as possible (the paper's
    /// improved receiver).
    #[default]
    Improved,
    /// Hold packets until subflow-in-order before meta processing
    /// (stock Linux multi-layer queue behaviour).
    Legacy,
}

/// What one packet arrival produced at the receiver.
#[derive(Debug, Clone, Default)]
pub struct ArrivalResult {
    /// Bytes newly delivered in-order to the application.
    pub delivered_bytes: u64,
    /// The new meta-level cumulative ack (next expected data byte).
    pub data_ack: u64,
    /// The new subflow-level cumulative ack (packets received in order).
    pub sbf_ack: u64,
    /// True if this data range was already received (redundant copy).
    pub duplicate: bool,
}

/// Per-connection receiver state.
#[derive(Debug)]
pub struct Receiver {
    mode: ReceiverMode,
    /// Next expected data-level byte.
    expected: u64,
    /// Meta out-of-order buffer: data seq -> (packet, size).
    meta_ooo: BTreeMap<u64, (PacketRef, u32)>,
    /// Per-subflow next expected subflow sequence number.
    sbf_expected: Vec<u64>,
    /// Per-subflow out-of-order queue (legacy mode): sbf seq -> payload.
    sbf_ooo: Vec<BTreeMap<u64, (u64, PacketRef, u32)>>,
    /// Receive buffer capacity in bytes (bounds the OOO buffer and
    /// therefore the advertised window).
    buf_cap: u64,
    ooo_bytes: u64,
    /// Total bytes delivered to the application.
    pub delivered_total: u64,
    /// Receive-window stall (fault injection): while set, the advertised
    /// window is zero — the receiving application has stopped reading.
    stalled: bool,
    /// Deliberate conservation bug for oracle validation (chaos mutation
    /// check): deliver already-delivered duplicate ranges a second time.
    double_delivery_bug: bool,
}

impl Receiver {
    /// Creates a receiver for `n_subflows` with the given mode and buffer.
    pub fn new(mode: ReceiverMode, n_subflows: usize, buf_cap: u64) -> Self {
        Receiver {
            mode,
            expected: 0,
            meta_ooo: BTreeMap::new(),
            sbf_expected: vec![0; n_subflows],
            sbf_ooo: vec![BTreeMap::new(); n_subflows],
            buf_cap,
            ooo_bytes: 0,
            delivered_total: 0,
            stalled: false,
            double_delivery_bug: false,
        }
    }

    /// Registers an additional subflow (path-manager adding one later).
    pub fn add_subflow(&mut self) {
        self.sbf_expected.push(0);
        self.sbf_ooo.push(BTreeMap::new());
    }

    /// Next expected data byte (the meta cumulative ack).
    pub fn expected(&self) -> u64 {
        self.expected
    }

    /// Free receive-buffer space (the advertised window). Zero while a
    /// fault-injected receive-window stall is active.
    pub fn rwnd(&self) -> u64 {
        if self.stalled {
            return 0;
        }
        self.buf_cap.saturating_sub(self.ooo_bytes)
    }

    /// Sets or clears a fault-injected receive-window stall.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    /// Bytes currently held in out-of-order buffers (invariant oracle).
    pub fn ooo_bytes(&self) -> u64 {
        self.ooo_bytes
    }

    /// Receive buffer capacity (invariant oracle).
    pub fn buf_cap(&self) -> u64 {
        self.buf_cap
    }

    /// Recomputes the out-of-order byte count from the queues themselves,
    /// independent of the incremental [`Receiver::ooo_bytes`] accounting.
    /// The invariant oracle cross-checks the two.
    pub fn ooo_recount(&self) -> u64 {
        let meta: u64 = self.meta_ooo.values().map(|&(_, sz)| u64::from(sz)).sum();
        let sbf: u64 = self
            .sbf_ooo
            .iter()
            .flat_map(|m| m.values())
            .map(|&(_, _, sz)| u64::from(sz))
            .sum();
        meta + sbf
    }

    /// Enables the deliberate double-delivery conservation bug. Exists
    /// only so the chaos harness can prove the invariant oracle catches a
    /// real conservation violation (TESTING.md "chaos tier"); never set
    /// outside that mutation check.
    #[doc(hidden)]
    pub fn inject_double_delivery_bug(&mut self) {
        self.double_delivery_bug = true;
    }

    /// Subflow-level cumulative ack for `sbf`.
    pub fn sbf_ack(&self, sbf: usize) -> u64 {
        self.sbf_expected[sbf]
    }

    /// Processes the arrival of one packet on subflow `sbf`.
    pub fn on_arrival(
        &mut self,
        sbf: usize,
        sbf_seq: u64,
        data_seq: u64,
        pkt: PacketRef,
        size: u32,
    ) -> ArrivalResult {
        let mut res = ArrivalResult {
            duplicate: false,
            ..Default::default()
        };
        let before = self.delivered_total;

        match self.mode {
            ReceiverMode::Improved => {
                self.advance_sbf(sbf, sbf_seq, None);
                res.duplicate = !self.meta_insert(data_seq, pkt, size);
            }
            ReceiverMode::Legacy => {
                if sbf_seq == self.sbf_expected[sbf] {
                    self.sbf_expected[sbf] += 1;
                    res.duplicate = !self.meta_insert(data_seq, pkt, size);
                    // Drain now-contiguous subflow OOO entries.
                    while let Some((&next, _)) = self.sbf_ooo[sbf].first_key_value() {
                        if next != self.sbf_expected[sbf] {
                            break;
                        }
                        let (_, (ds, p, sz)) =
                            self.sbf_ooo[sbf].pop_first().expect("checked non-empty");
                        self.ooo_bytes = self.ooo_bytes.saturating_sub(u64::from(sz));
                        self.sbf_expected[sbf] += 1;
                        self.meta_insert(ds, p, sz);
                    }
                } else if sbf_seq > self.sbf_expected[sbf] {
                    // Held hostage in the subflow OOO queue.
                    if self.sbf_ooo[sbf]
                        .insert(sbf_seq, (data_seq, pkt, size))
                        .is_none()
                    {
                        self.ooo_bytes += u64::from(size);
                    }
                } else {
                    res.duplicate = true; // old subflow-level duplicate
                }
            }
        }

        res.delivered_bytes = self.delivered_total - before;
        res.data_ack = self.expected;
        res.sbf_ack = self.sbf_expected[sbf];
        res
    }

    /// Advances the subflow cumulative counter for improved mode
    /// (subflow OOO packets still ack cumulatively once the gap fills;
    /// we track highest-contiguous via the OOO map).
    fn advance_sbf(&mut self, sbf: usize, sbf_seq: u64, _unused: Option<()>) {
        if sbf_seq == self.sbf_expected[sbf] {
            self.sbf_expected[sbf] += 1;
            while self.sbf_ooo[sbf].remove(&self.sbf_expected[sbf]).is_some() {
                self.sbf_expected[sbf] += 1;
            }
        } else if sbf_seq > self.sbf_expected[sbf] {
            // Record the hole; payload already went to the meta queue.
            self.sbf_ooo[sbf].insert(sbf_seq, (0, PacketRef(0), 0));
        }
    }

    /// Inserts a packet into the meta queue; returns false if the data
    /// range is a duplicate (already delivered or already buffered).
    fn meta_insert(&mut self, data_seq: u64, pkt: PacketRef, size: u32) -> bool {
        if data_seq + u64::from(size) <= self.expected {
            if self.double_delivery_bug {
                // Simulated conservation bug: the duplicate range is
                // handed to the application again.
                self.delivered_total += u64::from(size);
            }
            return false;
        }
        if data_seq <= self.expected {
            // In order (possibly partially duplicate): deliver.
            let new_end = data_seq + u64::from(size);
            let fresh = new_end - self.expected;
            self.expected = new_end;
            self.delivered_total += fresh;
            // Drain contiguous buffered packets.
            while let Some((&seq, &(_, sz))) = self.meta_ooo.first_key_value() {
                if seq > self.expected {
                    break;
                }
                self.meta_ooo.pop_first();
                self.ooo_bytes = self.ooo_bytes.saturating_sub(u64::from(sz));
                let end = seq + u64::from(sz);
                if end > self.expected {
                    self.delivered_total += end - self.expected;
                    self.expected = end;
                }
            }
            true
        } else {
            // Out of order: buffer unless duplicate.
            use std::collections::btree_map::Entry;
            match self.meta_ooo.entry(data_seq) {
                Entry::Occupied(_) => false,
                Entry::Vacant(v) => {
                    v.insert((pkt, size));
                    self.ooo_bytes += u64::from(size);
                    true
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(n: u64) -> PacketRef {
        PacketRef(n)
    }

    #[test]
    fn in_order_delivery() {
        let mut r = Receiver::new(ReceiverMode::Improved, 1, 1 << 20);
        let a = r.on_arrival(0, 0, 0, pkt(1), 100);
        assert_eq!(a.delivered_bytes, 100);
        assert_eq!(a.data_ack, 100);
        assert_eq!(a.sbf_ack, 1);
        let b = r.on_arrival(0, 1, 100, pkt(2), 100);
        assert_eq!(b.delivered_bytes, 100);
        assert_eq!(r.delivered_total, 200);
    }

    #[test]
    fn meta_reordering_buffers_then_drains() {
        let mut r = Receiver::new(ReceiverMode::Improved, 2, 1 << 20);
        // Packet with data 100..200 arrives first (on subflow 1).
        let a = r.on_arrival(1, 0, 100, pkt(2), 100);
        assert_eq!(a.delivered_bytes, 0);
        assert_eq!(r.rwnd(), (1 << 20) - 100);
        // Now 0..100 arrives: both deliver.
        let b = r.on_arrival(0, 0, 0, pkt(1), 100);
        assert_eq!(b.delivered_bytes, 200);
        assert_eq!(b.data_ack, 200);
    }

    #[test]
    fn duplicate_redundant_copy_detected() {
        let mut r = Receiver::new(ReceiverMode::Improved, 2, 1 << 20);
        let a = r.on_arrival(0, 0, 0, pkt(1), 100);
        assert!(!a.duplicate);
        // Redundant copy of the same bytes on the other subflow.
        let b = r.on_arrival(1, 0, 0, pkt(1), 100);
        assert!(b.duplicate);
        assert_eq!(b.delivered_bytes, 0);
        assert_eq!(r.delivered_total, 100);
    }

    #[test]
    fn improved_mode_delivers_despite_subflow_gap() {
        // The §4.2 scenario: subflow 0 loses its first packet (sbf_seq 0)
        // carrying data 100..200; its second packet (sbf_seq 1) carries
        // data 0..100, which is meta-in-order and must be delivered
        // immediately in improved mode.
        let mut r = Receiver::new(ReceiverMode::Improved, 1, 1 << 20);
        let a = r.on_arrival(0, 1, 0, pkt(2), 100);
        assert_eq!(a.delivered_bytes, 100, "meta-in-order data delivered");
        assert_eq!(a.sbf_ack, 0, "subflow-level hole remains unacked");
    }

    #[test]
    fn legacy_mode_holds_subflow_out_of_order_data() {
        // Same scenario in legacy mode: delivery is blocked.
        let mut r = Receiver::new(ReceiverMode::Legacy, 1, 1 << 20);
        let a = r.on_arrival(0, 1, 0, pkt(2), 100);
        assert_eq!(a.delivered_bytes, 0, "legacy receiver blocks delivery");
        // The missing subflow packet arrives (retransmission) with data
        // 100..200: now both deliver.
        let b = r.on_arrival(0, 0, 100, pkt(1), 100);
        assert_eq!(b.delivered_bytes, 200);
    }

    #[test]
    fn subflow_ack_advances_over_filled_gaps() {
        let mut r = Receiver::new(ReceiverMode::Improved, 1, 1 << 20);
        r.on_arrival(0, 1, 100, pkt(2), 100);
        r.on_arrival(0, 2, 200, pkt(3), 100);
        let a = r.on_arrival(0, 0, 0, pkt(1), 100);
        assert_eq!(a.sbf_ack, 3, "cumulative ack jumps over the filled gap");
        assert_eq!(a.delivered_bytes, 300);
    }

    #[test]
    fn rwnd_shrinks_with_ooo_buffering() {
        let mut r = Receiver::new(ReceiverMode::Improved, 1, 1000);
        r.on_arrival(0, 0, 500, pkt(1), 300);
        assert_eq!(r.rwnd(), 700);
        r.on_arrival(0, 1, 0, pkt(2), 500);
        assert_eq!(r.rwnd(), 1000, "drained after in-order fill");
    }

    #[test]
    fn old_duplicate_at_subflow_level_ignored() {
        let mut r = Receiver::new(ReceiverMode::Legacy, 1, 1 << 20);
        r.on_arrival(0, 0, 0, pkt(1), 100);
        let a = r.on_arrival(0, 0, 0, pkt(1), 100);
        assert!(a.duplicate);
    }
}
