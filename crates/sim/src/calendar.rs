//! The engine's event queue: a hierarchical timing wheel (calendar
//! queue) with microsecond-native ticks.
//!
//! The discrete-event hot path is dominated by timer churn: every
//! transmission schedules an arrival, an RTO and a TLP, and most of
//! those are cancelled or superseded within an RTT. A binary heap pays
//! `O(log n)` per operation and keeps no locality; the timing wheel
//! pays amortized `O(1)` for both insert and pop by bucketing events
//! into per-microsecond slots across `LEVELS` hierarchical levels
//! (the Varghese–Lauck scheme, as in kernel timer wheels), with
//! per-level occupancy bitmaps so finding the next non-empty slot is a
//! couple of trailing-zero scans rather than a walk.
//!
//! **Ordering is bit-compatible with the binary heap it replaced**: pop
//! order is the strict total order `(time, seq)` where `seq` is the
//! insertion sequence number — ties in simulated time resolve in
//! insertion order. The conformance tier pins this with a side-by-side
//! property test against a reference `BinaryHeap`
//! (`crates/sim/tests/event_queue.rs`); golden snapshots across the
//! repo depend on it.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Nanoseconds per wheel tick (1 µs). Events within the same tick are
/// kept together and ordered by their full `(time, seq)` key.
pub const TICK_NS: u64 = 1_000;

/// Bits per wheel level: 256 slots each.
const SLOT_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Hierarchy depth. Four 256-slot levels cover 2^32 µs ≈ 71.6 simulated
/// minutes of lookahead past the current tick; anything farther goes to
/// the overflow heap (rare: multi-hour timers only).
const LEVELS: usize = 4;
/// Occupancy bitmap words per level.
const WORDS: usize = SLOTS / 64;

/// One queued event with its total-order key.
#[derive(Debug)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Overflow-heap wrapper ordering entries by `(time, seq)` only.
struct ByKey<T>(Entry<T>);

impl<T> PartialEq for ByKey<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<T> Eq for ByKey<T> {}
impl<T> PartialOrd for ByKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for ByKey<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.key().cmp(&other.0.key())
    }
}

/// A deterministic calendar queue over payloads `T`.
///
/// `push` assigns each event a monotonically increasing sequence
/// number; `pop` returns events in strict `(time, seq)` order — exactly
/// the order a `BinaryHeap<Reverse<(time, seq)>>` would produce.
pub struct CalendarQueue<T> {
    /// `levels[l][s]`: events whose tick lands in slot `s` of level `l`.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Per-level slot-occupancy bitmaps.
    occ: [[u64; WORDS]; LEVELS],
    /// Current tick (µs). Everything still queued in the wheel is
    /// strictly after this tick; everything at or before it is in `due`.
    cur: u64,
    /// Events whose tick is `<= cur`, sorted *descending* by
    /// `(time, seq)` so the global minimum pops from the back in O(1).
    due: Vec<Entry<T>>,
    /// Events beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Reverse<ByKey<T>>>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue positioned at tick 0.
    pub fn new() -> Self {
        CalendarQueue {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occ: [[0; WORDS]; LEVELS],
            cur: 0,
            due: Vec::new(),
            overflow: BinaryHeap::new(),
            next_seq: 0,
            len: 0,
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Enqueues `item` at `time`, assigning the next sequence number.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        self.insert(Entry { time, seq, item });
    }

    /// Time of the next event without removing it. Internally advances
    /// the wheel cursor up to that event (structure-only motion; the
    /// event order is unaffected).
    pub fn next_time(&mut self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        while self.due.is_empty() {
            self.advance();
        }
        self.due.last().map(|e| e.time)
    }

    /// Removes and returns the earliest event (by `(time, seq)`).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if self.len == 0 {
            return None;
        }
        while self.due.is_empty() {
            self.advance();
        }
        let e = self.due.pop().expect("due non-empty");
        self.len -= 1;
        Some((e.time, e.item))
    }

    fn insert(&mut self, e: Entry<T>) {
        let tick = e.time / TICK_NS;
        if tick <= self.cur {
            // Due now (or scheduled into the past): merge into the
            // sorted-descending due list.
            let key = e.key();
            let pos = self
                .due
                .binary_search_by(|p| key.cmp(&p.key()))
                .unwrap_or_else(|i| i);
            self.due.insert(pos, e);
            return;
        }
        let xor = tick ^ self.cur;
        for l in 0..LEVELS {
            if xor >> (SLOT_BITS * (l as u32 + 1)) == 0 {
                let slot = ((tick >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
                self.levels[l][slot].push(e);
                self.occ[l][slot / 64] |= 1 << (slot % 64);
                return;
            }
        }
        self.overflow.push(Reverse(ByKey(e)));
    }

    /// First occupied slot of `level` strictly after `from`, if any.
    fn next_slot(&self, level: usize, from: usize) -> Option<usize> {
        let start = from + 1;
        if start >= SLOTS {
            return None;
        }
        let mut word = start / 64;
        let mut bits = self.occ[level][word] & !((1u64 << (start % 64)) - 1);
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == WORDS {
                return None;
            }
            bits = self.occ[level][word];
        }
    }

    /// Moves the cursor to the next occupied tick and migrates that
    /// tick's events into `due`. Requires `due` empty and `len > 0`;
    /// each call strictly advances `cur` or fills `due`.
    fn advance(&mut self) {
        loop {
            // Innermost level first: an occupied L0 slot ahead of the
            // cursor *is* the next tick.
            let cur_slot0 = (self.cur & (SLOTS as u64 - 1)) as usize;
            if let Some(s) = self.next_slot(0, cur_slot0) {
                let tick = (self.cur & !(SLOTS as u64 - 1)) | s as u64;
                self.cur = tick;
                let mut batch = std::mem::take(&mut self.levels[0][s]);
                self.occ[0][s / 64] &= !(1 << (s % 64));
                // All entries share the tick; order the full keys.
                batch.sort_unstable_by_key(|e| Reverse(e.key()));
                self.due = batch;
                return;
            }
            // Cascade: find the next occupied slot of the shallowest
            // non-empty outer level, jump the cursor to its base tick,
            // and re-insert its events one level down (or into `due`).
            let mut cascaded = false;
            for l in 1..LEVELS {
                let cur_slot = ((self.cur >> (SLOT_BITS * l as u32)) & (SLOTS as u64 - 1)) as usize;
                if let Some(s) = self.next_slot(l, cur_slot) {
                    let shift = SLOT_BITS * l as u32;
                    let base =
                        (self.cur & !((1u64 << (shift + SLOT_BITS)) - 1)) | ((s as u64) << shift);
                    self.cur = base;
                    let batch = std::mem::take(&mut self.levels[l][s]);
                    self.occ[l][s / 64] &= !(1 << (s % 64));
                    for e in batch {
                        self.insert(e);
                    }
                    cascaded = true;
                    break;
                }
            }
            if cascaded {
                if !self.due.is_empty() {
                    return;
                }
                continue;
            }
            // Wheel exhausted: everything left lives in the overflow
            // heap. Jump to its minimum and pull every entry that now
            // fits the wheel horizon back in.
            let Some(Reverse(ByKey(min))) = self.overflow.pop() else {
                unreachable!("advance() called on an empty queue");
            };
            self.cur = min.time / TICK_NS;
            let horizon = self.cur >> (SLOT_BITS * LEVELS as u32);
            self.insert(min);
            while let Some(Reverse(ByKey(e))) = self.overflow.peek() {
                if (e.time / TICK_NS) >> (SLOT_BITS * LEVELS as u32) != horizon {
                    break;
                }
                let Reverse(ByKey(e)) = self.overflow.pop().expect("peeked");
                self.insert(e);
            }
            if !self.due.is_empty() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(5_000, "b");
        q.push(1_000, "a");
        q.push(5_000, "c"); // same tick and time as "b": insertion order
        q.push(0, "zero");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((0, "zero")));
        assert_eq!(q.pop(), Some((1_000, "a")));
        assert_eq!(q.pop(), Some((5_000, "b")));
        assert_eq!(q.pop(), Some((5_000, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn sub_tick_times_stay_ordered() {
        // 1500 ns and 1999 ns share the 1 µs tick but must pop by time.
        let mut q = CalendarQueue::new();
        q.push(1_999, 1);
        q.push(1_500, 2);
        q.push(1_500, 3);
        assert_eq!(q.pop(), Some((1_500, 2)));
        assert_eq!(q.pop(), Some((1_500, 3)));
        assert_eq!(q.pop(), Some((1_999, 1)));
    }

    #[test]
    fn crosses_level_boundaries() {
        let mut q = CalendarQueue::new();
        // One event per level plus an overflow-range event.
        let times = [
            200 * TICK_NS,               // L0
            70_000 * TICK_NS,            // L1
            10_000_000 * TICK_NS,        // L2
            3_000_000_000 * TICK_NS,     // L3
            8_000_000_000_000 * TICK_NS, // overflow (> 2^32 ticks)
            8_000_000_000_001 * TICK_NS, // overflow, later
        ];
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t, i)), "event {i}");
        }
        assert!(q.is_empty());
    }

    #[test]
    fn insert_while_draining_current_tick() {
        let mut q = CalendarQueue::new();
        q.push(1_000, 0);
        assert_eq!(q.pop(), Some((1_000, 0)));
        // Cursor is now at tick 1; same-tick and past inserts are due
        // immediately, ordered by (time, seq).
        q.push(1_500, 1);
        q.push(1_200, 2);
        q.push(500, 3); // into the past: pops first (smallest time)
        assert_eq!(q.pop(), Some((500, 3)));
        assert_eq!(q.pop(), Some((1_200, 2)));
        assert_eq!(q.pop(), Some((1_500, 1)));
    }

    #[test]
    fn next_time_is_non_destructive() {
        let mut q = CalendarQueue::new();
        q.push(123_456_789, "x");
        assert_eq!(q.next_time(), Some(123_456_789));
        assert_eq!(q.next_time(), Some(123_456_789));
        assert_eq!(q.pop(), Some((123_456_789, "x")));
        assert_eq!(q.next_time(), None);
    }
}
