//! Per-connection measurement collection: counters, timelines, and the
//! derived metrics the paper's figures report (throughput, flow
//! completion time, per-subflow usage, transmission overhead).

use crate::time::{as_secs_f64, SimTime};

/// Counters for one subflow.
#[derive(Debug, Clone, Default)]
pub struct SubflowStats {
    /// Packets transmitted (including retransmissions and redundant copies).
    pub tx_packets: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Retransmitted packets.
    pub retransmissions: u64,
    /// Packets dropped by random loss on the wire.
    pub wire_losses: u64,
    /// Packets tail-dropped at the egress queue.
    pub queue_drops: u64,
    /// Fast-retransmit episodes.
    pub fast_retransmits: u64,
    /// Retransmission timeouts.
    pub timeouts: u64,
}

/// Counters and timelines for one connection.
#[derive(Debug, Clone, Default)]
pub struct ConnStats {
    /// Per-subflow counters.
    pub subflows: Vec<SubflowStats>,
    /// Total packets transmitted.
    pub tx_packets: u64,
    /// Total bytes transmitted (counting every copy).
    pub tx_bytes: u64,
    /// Bytes of *distinct* segments transmitted at least once.
    pub unique_tx_bytes: u64,
    /// Bytes enqueued by the application.
    pub enqueued_bytes: u64,
    /// Bytes delivered in order to the receiving application.
    pub delivered_bytes: u64,
    /// Segments added to the reinjection queue `RQ` (loss suspicion,
    /// subflow teardown, tail-loss probes). Explicit reinjection is the
    /// one sanctioned way a byte reaches the receiver twice, so the
    /// invariant oracle reads this counter when judging duplicates.
    /// Deliberately absent from [`ConnStats::snapshot_text`]: the golden
    /// snapshot format predates it and stays frozen.
    pub reinjections: u64,
    /// Packets discarded by scheduler `DROP` actions.
    pub scheduler_drops: u64,
    /// Completed scheduler executions.
    pub scheduler_executions: u64,
    /// Scheduler executions aborted with a runtime error (step budget).
    pub scheduler_errors: u64,
    /// Total scheduler steps (the programming-model cost metric).
    pub scheduler_steps: u64,
    /// Wall-clock nanoseconds spent inside scheduler executions (host
    /// time, for the Fig. 9 overhead measurements).
    pub scheduler_host_ns: u64,
    /// Delivery timeline: (time, cumulative delivered bytes). Recorded
    /// when timelines are enabled.
    pub delivery_timeline: Vec<(SimTime, u64)>,
    /// Transmission timeline: (time, subflow index, bytes). Recorded when
    /// timelines are enabled.
    pub tx_timeline: Vec<(SimTime, u32, u32)>,
}

impl ConnStats {
    /// Creates stats for `n` subflows.
    pub fn new(n: usize) -> Self {
        ConnStats {
            subflows: vec![SubflowStats::default(); n],
            ..Default::default()
        }
    }

    /// Transmission overhead: total transmitted bytes relative to the
    /// distinct payload transmitted (1.0 = no redundancy).
    pub fn overhead_ratio(&self) -> f64 {
        if self.unique_tx_bytes == 0 {
            return 1.0;
        }
        self.tx_bytes as f64 / self.unique_tx_bytes as f64
    }

    /// Mean delivered goodput over `[0, until]` in bytes/second.
    pub fn goodput(&self, until: SimTime) -> f64 {
        if until == 0 {
            return 0.0;
        }
        self.delivered_bytes as f64 / as_secs_f64(until)
    }

    /// Time at which cumulative delivery first reached `bytes`, if it did.
    pub fn delivery_time_of(&self, bytes: u64) -> Option<SimTime> {
        self.delivery_timeline
            .iter()
            .find(|(_, b)| *b >= bytes)
            .map(|(t, _)| *t)
    }

    /// Delivered-byte rate over a sliding window, sampled at `step`
    /// intervals: returns (time, bytes/second) pairs. Requires timelines.
    pub fn goodput_series(
        &self,
        window: SimTime,
        step: SimTime,
        until: SimTime,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        if step == 0 {
            return out;
        }
        let mut t = step;
        while t <= until {
            let start = t.saturating_sub(window);
            let at = |x: SimTime| -> u64 {
                match self
                    .delivery_timeline
                    .binary_search_by_key(&x, |(ts, _)| *ts)
                {
                    Ok(mut i) => {
                        // Take the last sample at time x.
                        while i + 1 < self.delivery_timeline.len()
                            && self.delivery_timeline[i + 1].0 == x
                        {
                            i += 1;
                        }
                        self.delivery_timeline[i].1
                    }
                    Err(0) => 0,
                    Err(i) => self.delivery_timeline[i - 1].1,
                }
            };
            let delta = at(t).saturating_sub(at(start));
            out.push((t, delta as f64 / as_secs_f64(t - start)));
            t += step;
        }
        out
    }

    /// Deterministic, integer-only serialization of the connection's
    /// counters and timelines for golden snapshot tests.
    ///
    /// Contains only exactly-representable quantities (no derived
    /// floating-point metrics), so the output is bit-stable across runs
    /// and platforms for a fixed scenario and seed. Timelines are included
    /// in full when recorded; their absence serializes as empty sections,
    /// keeping snapshots comparable either way.
    pub fn snapshot_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "tx_packets {}\ntx_bytes {}\nunique_tx_bytes {}\nenqueued_bytes {}\ndelivered_bytes {}\n",
            self.tx_packets, self.tx_bytes, self.unique_tx_bytes, self.enqueued_bytes,
            self.delivered_bytes
        ));
        out.push_str(&format!(
            "scheduler_drops {}\nscheduler_executions {}\nscheduler_errors {}\nscheduler_steps {}\n",
            self.scheduler_drops, self.scheduler_executions, self.scheduler_errors,
            self.scheduler_steps
        ));
        for (i, s) in self.subflows.iter().enumerate() {
            out.push_str(&format!(
                "subflow {i} tx_packets {} tx_bytes {} retransmissions {} wire_losses {} \
                 queue_drops {} fast_retransmits {} timeouts {}\n",
                s.tx_packets,
                s.tx_bytes,
                s.retransmissions,
                s.wire_losses,
                s.queue_drops,
                s.fast_retransmits,
                s.timeouts
            ));
        }
        out.push_str(&format!(
            "delivery_timeline {}\n",
            self.delivery_timeline.len()
        ));
        for (t, b) in &self.delivery_timeline {
            out.push_str(&format!("  {t} {b}\n"));
        }
        out.push_str(&format!("tx_timeline {}\n", self.tx_timeline.len()));
        for (t, s, b) in &self.tx_timeline {
            out.push_str(&format!("  {t} {s} {b}\n"));
        }
        out
    }

    /// Bytes transmitted per subflow over a window ending at each step
    /// (per-subflow usage series, Fig. 1/13). Requires timelines.
    pub fn subflow_tx_series(
        &self,
        sbf: u32,
        window: SimTime,
        step: SimTime,
        until: SimTime,
    ) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        if step == 0 {
            return out;
        }
        let mut t = step;
        while t <= until {
            let start = t.saturating_sub(window);
            let bytes: u64 = self
                .tx_timeline
                .iter()
                .filter(|(ts, s, _)| *s == sbf && *ts > start && *ts <= t)
                .map(|(_, _, b)| u64::from(*b))
                .sum();
            out.push((t, bytes as f64 / as_secs_f64(t - start)));
            t += step;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{from_millis, SECONDS};

    #[test]
    fn overhead_ratio() {
        let s = ConnStats {
            tx_bytes: 2000,
            unique_tx_bytes: 1000,
            ..Default::default()
        };
        assert!((s.overhead_ratio() - 2.0).abs() < 1e-9);
        assert!((ConnStats::default().overhead_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn goodput_series_windows() {
        let s = ConnStats {
            delivery_timeline: vec![
                (from_millis(100), 1000),
                (from_millis(200), 2000),
                (from_millis(900), 3000),
            ],
            ..Default::default()
        };
        let series = s.goodput_series(from_millis(500), from_millis(500), SECONDS);
        assert_eq!(series.len(), 2);
        // First window [0, 500ms]: 2000 bytes -> 4000 B/s.
        assert!((series[0].1 - 4000.0).abs() < 1.0);
        // Second window (500ms, 1000ms]: 1000 bytes -> 2000 B/s.
        assert!((series[1].1 - 2000.0).abs() < 1.0);
    }

    #[test]
    fn delivery_time_of_finds_first_crossing() {
        let s = ConnStats {
            delivery_timeline: vec![(10, 100), (20, 300), (30, 500)],
            ..Default::default()
        };
        assert_eq!(s.delivery_time_of(100), Some(10));
        assert_eq!(s.delivery_time_of(250), Some(20));
        assert_eq!(s.delivery_time_of(501), None);
    }

    #[test]
    fn snapshot_text_is_deterministic_and_complete() {
        let mut s = ConnStats::new(2);
        s.tx_packets = 10;
        s.tx_bytes = 14_000;
        s.delivered_bytes = 12_600;
        s.subflows[1].retransmissions = 3;
        s.delivery_timeline = vec![(from_millis(10), 1400), (from_millis(20), 2800)];
        s.tx_timeline = vec![(from_millis(5), 0, 1400)];
        let a = s.snapshot_text();
        let b = s.snapshot_text();
        assert_eq!(a, b);
        assert!(a.contains("tx_packets 10"));
        assert!(a.contains("subflow 1 "));
        assert!(a.contains("retransmissions 3"));
        assert!(a.contains("delivery_timeline 2"));
        assert!(a.contains("tx_timeline 1"));
        // No floating point anywhere in the serialization.
        assert!(!a.contains('.'), "snapshot must be integer-only: {a}");
    }

    #[test]
    fn subflow_tx_series_filters_by_subflow() {
        let s = ConnStats {
            tx_timeline: vec![
                (from_millis(10), 0, 1000),
                (from_millis(20), 1, 500),
                (from_millis(30), 0, 1000),
            ],
            ..Default::default()
        };
        let s0 = s.subflow_tx_series(0, from_millis(100), from_millis(100), from_millis(100));
        assert!((s0[0].1 - 20_000.0).abs() < 1.0); // 2000 B / 0.1 s
        let s1 = s.subflow_tx_series(1, from_millis(100), from_millis(100), from_millis(100));
        assert!((s1[0].1 - 5_000.0).abs() < 1.0);
    }
}
