//! Sender-side subflow state: one TCP subflow of an MPTCP connection.

use crate::cc::CcState;
use crate::path::Path;
use crate::rtt::RttEstimator;
use crate::time::{SimTime, MILLIS, SECONDS};
use progmp_core::env::{PacketRef, SubflowId};
use std::collections::VecDeque;

/// Record of one transmission awaiting subflow-level acknowledgement.
#[derive(Debug, Clone)]
pub struct TxRec {
    /// Subflow-level sequence number (transmission index).
    pub sbf_seq: u64,
    /// The meta segment transmitted.
    pub pkt: PacketRef,
    /// Payload size (bytes).
    pub size: u32,
    /// Transmission time.
    pub sent_at: SimTime,
    /// Whether this was a retransmission (excluded from RTT sampling).
    pub is_rtx: bool,
}

/// Sender-side state of one subflow.
#[derive(Debug)]
pub struct Subflow {
    /// Stable identifier within the connection.
    pub id: SubflowId,
    /// The network path this subflow runs over.
    pub path: Path,
    /// Congestion-control state.
    pub cc: CcState,
    /// RTT estimator.
    pub rtt: RttEstimator,
    /// Backup flag set by the path manager (the `IS_BACKUP` property).
    pub is_backup: bool,
    /// Application-assigned cost/preference weight (the `COST` property).
    pub cost: i64,
    /// Whether the subflow is currently established.
    pub established: bool,
    /// Next subflow-level sequence number to assign.
    pub next_seq: u64,
    /// Cumulative subflow-level ack received.
    pub acked_seq: u64,
    /// Consecutive duplicate acks observed.
    pub dupacks: u32,
    /// Unacknowledged transmissions, oldest first.
    pub sent: VecDeque<TxRec>,
    /// Total packets declared lost on this subflow (`LOST_SKBS`).
    pub lost_skbs: u64,
    /// Last time this subflow transmitted or received (`LAST_ACT_AGE`).
    pub last_activity: SimTime,
    /// Token invalidating stale RTO timer events.
    pub rto_token: u64,
    /// Whether an RTO timer is currently armed.
    pub rto_armed: bool,
    /// Token invalidating stale tail-loss-probe events.
    pub tlp_token: u64,
    /// Whether a tail-loss probe is currently armed.
    pub tlp_armed: bool,
    /// TCP-small-queue limit: max packets in the egress queue before the
    /// subflow reports `TSQ_THROTTLED`.
    pub tsq_limit: usize,
    /// Maximum segment size (bytes).
    pub mss: u32,
    // --- delivery-rate estimation (the `BW` property) ---
    bw_bytes: u64,
    bw_window_start: SimTime,
    bw_est: u64,
}

impl Subflow {
    /// Creates an established subflow over `path`.
    pub fn new(id: SubflowId, path: Path, mss: u32) -> Self {
        Subflow {
            id,
            path,
            cc: CcState::default(),
            rtt: RttEstimator::default(),
            is_backup: false,
            cost: 0,
            established: true,
            next_seq: 0,
            acked_seq: 0,
            dupacks: 0,
            sent: VecDeque::new(),
            lost_skbs: 0,
            last_activity: 0,
            rto_token: 0,
            rto_armed: false,
            tlp_token: 0,
            tlp_armed: false,
            tsq_limit: 2,
            mss,
            bw_bytes: 0,
            bw_window_start: 0,
            bw_est: 0,
        }
    }

    /// Packets in flight at the subflow level (`SKBS_IN_FLIGHT`).
    pub fn in_flight(&self) -> usize {
        self.sent.len()
    }

    /// Tail-loss-probe timeout (RFC 8985-style): `2 * SRTT + 10 ms`,
    /// clamped to at least 30 ms — much shorter than the RTO, so tail
    /// losses of short flows are recovered quickly.
    pub fn pto(&self) -> SimTime {
        (2 * self.rtt.srtt() + 10 * MILLIS).max(30 * MILLIS)
    }

    /// Whether the TCP-small-queue condition throttles this subflow.
    pub fn tsq_throttled(&self, now: SimTime) -> bool {
        self.path.queued_at(now) >= self.tsq_limit
    }

    /// Records acknowledged bytes for delivery-rate estimation and
    /// returns the refreshed estimate when the window rolls over.
    pub fn record_delivered(&mut self, now: SimTime, bytes: u64) {
        self.bw_bytes += bytes;
        let window = self.rtt.srtt().max(50 * MILLIS);
        let elapsed = now.saturating_sub(self.bw_window_start);
        if elapsed >= window {
            let rate = self.bw_bytes.saturating_mul(SECONDS) / elapsed.max(1);
            self.bw_est = if self.bw_est == 0 {
                rate
            } else {
                (3 * self.bw_est + rate) / 4
            };
            self.bw_bytes = 0;
            self.bw_window_start = now;
        }
    }

    /// Current delivery-rate estimate in bytes/second (the `BW` property).
    pub fn bw_estimate(&self) -> u64 {
        self.bw_est
    }

    /// Finds and removes the transmission records acknowledged by a new
    /// cumulative `ack`. Returns (acked packet count, acked byte count,
    /// RTT sample from the newest first-transmission if valid).
    pub fn take_acked(&mut self, ack: u64, now: SimTime) -> (u64, u64, Option<SimTime>) {
        let mut pkts = 0u64;
        let mut bytes = 0u64;
        let mut sample = None;
        while let Some(front) = self.sent.front() {
            if front.sbf_seq >= ack {
                break;
            }
            let rec = self.sent.pop_front().expect("checked non-empty");
            pkts += 1;
            bytes += u64::from(rec.size);
            if !rec.is_rtx {
                sample = Some(now.saturating_sub(rec.sent_at));
            }
        }
        (pkts, bytes, sample)
    }

    /// Removes and returns the oldest unacknowledged transmission (the
    /// fast-retransmit victim). Returns `None` when nothing is in flight.
    pub fn take_oldest_unacked(&mut self) -> Option<TxRec> {
        self.sent.pop_front()
    }

    /// Drains all in-flight transmissions (RTO recovery).
    pub fn drain_in_flight(&mut self) -> Vec<TxRec> {
        self.sent.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathConfig;
    use crate::time::from_millis;

    fn subflow() -> Subflow {
        Subflow::new(
            SubflowId(0),
            Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000)),
            1400,
        )
    }

    fn tx(sbf_seq: u64, sent_at: SimTime) -> TxRec {
        TxRec {
            sbf_seq,
            pkt: PacketRef(sbf_seq),
            size: 1400,
            sent_at,
            is_rtx: false,
        }
    }

    #[test]
    fn take_acked_pops_in_order() {
        let mut s = subflow();
        for i in 0..5 {
            s.sent.push_back(tx(i, 0));
        }
        let (pkts, bytes, sample) = s.take_acked(3, from_millis(12));
        assert_eq!(pkts, 3);
        assert_eq!(bytes, 3 * 1400);
        assert_eq!(sample, Some(from_millis(12)));
        assert_eq!(s.in_flight(), 2);
    }

    #[test]
    fn retransmissions_do_not_sample_rtt() {
        let mut s = subflow();
        s.sent.push_back(TxRec {
            is_rtx: true,
            ..tx(0, 0)
        });
        let (_, _, sample) = s.take_acked(1, from_millis(30));
        assert_eq!(sample, None, "Karn's algorithm");
    }

    #[test]
    fn bw_estimate_converges() {
        let mut s = subflow();
        for _ in 0..20 {
            s.rtt.sample(from_millis(10));
        }
        let mut now = 0;
        for _ in 0..100 {
            now += from_millis(10);
            // 12500 bytes per 10 ms = 1.25 MB/s
            s.record_delivered(now, 12_500);
        }
        let bw = s.bw_estimate();
        assert!(
            (1_000_000..1_500_000).contains(&bw),
            "bw={bw} expected ~1.25 MB/s"
        );
    }

    #[test]
    fn tsq_throttles_when_queue_builds() {
        let mut s = subflow();
        assert!(!s.tsq_throttled(0));
        s.path.transmit_forced(0, 1400, false);
        s.path.transmit_forced(0, 1400, false);
        s.path.transmit_forced(0, 1400, false);
        assert!(s.tsq_throttled(0));
        assert!(!s.tsq_throttled(from_millis(100)), "queue drains over time");
    }

    #[test]
    fn drain_in_flight_empties() {
        let mut s = subflow();
        for i in 0..4 {
            s.sent.push_back(tx(i, 0));
        }
        let drained = s.drain_in_flight();
        assert_eq!(drained.len(), 4);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn cumulative_ack_over_mixed_rtx_samples_only_unambiguous_record() {
        // Karn's rule under retransmission ambiguity: a cumulative ack
        // covering both a retransmitted record and a fresh one must take
        // its RTT sample exclusively from the fresh transmission.
        let mut s = subflow();
        s.sent.push_back(TxRec {
            is_rtx: true,
            ..tx(0, 0)
        });
        s.sent.push_back(tx(1, from_millis(50)));
        let (pkts, _, sample) = s.take_acked(2, from_millis(80));
        assert_eq!(pkts, 2);
        assert_eq!(
            sample,
            Some(from_millis(30)),
            "sample comes from the unambiguous record only"
        );
    }

    #[test]
    fn ack_of_only_ambiguous_records_yields_no_sample() {
        let mut s = subflow();
        for i in 0..3 {
            s.sent.push_back(TxRec {
                is_rtx: true,
                ..tx(i, from_millis(10 * i))
            });
        }
        let (pkts, bytes, sample) = s.take_acked(3, from_millis(200));
        assert_eq!((pkts, bytes), (3, 3 * 1400));
        assert_eq!(sample, None, "every covered record is ambiguous");
    }

    #[test]
    fn spurious_rto_retransmits_but_keeps_rtt_estimate_clean() {
        // End-to-end Karn check at the connection level: an RTO fires
        // spuriously (the original packet was merely delayed), the
        // segment is retransmitted, and then the ORIGINAL ack arrives.
        // The ambiguous RTT must not be sampled, so the pre-RTO estimate
        // survives; the data still completes.
        use crate::cc::CcAlgo;
        use crate::connection::{Connection, SchedulerHandle};
        use crate::receiver::{Receiver, ReceiverMode};
        use progmp_core::env::SchedulerEnv;

        let subflows = vec![Subflow::new(
            SubflowId(0),
            Path::new(&PathConfig::symmetric(from_millis(20), 1_250_000)),
            1400,
        )];
        let receiver = Receiver::new(ReceiverMode::Improved, 1, 1 << 20);
        let mut c = Connection::new(
            0,
            subflows,
            receiver,
            SchedulerHandle::Native(Box::new(crate::native::NativeMinRtt)),
            CcAlgo::Reno,
            1400,
            1 << 20,
        );
        c.subflows[0].rtt.sample(from_millis(20));
        let srtt_before = c.subflows[0].rtt.srtt();
        let pkts = c.enqueue_data(1400, 0, 0);
        c.record_tx(0, pkts[0], 1400, 0, None);

        // Spurious timeout at 1 s: retransmit + reinjection queued.
        let out = c.handle_rto(0, from_millis(1000));
        assert_eq!(out.auto_retransmit.len(), 1);
        assert!(out.loss_suspected, "segment entered RQ");
        c.record_tx(0, pkts[0], 1400, from_millis(1000), Some(0));
        assert!(c.subflows[0].sent[0].is_rtx, "record marked ambiguous");
        assert_eq!(c.stats.subflows[0].timeouts, 1);

        // The original ack finally lands.
        c.handle_ack(0, 1, 1400, 1 << 20, from_millis(1100));
        assert_eq!(
            c.subflows[0].rtt.srtt(),
            srtt_before,
            "no RTT sample from the ambiguous retransmission (Karn)"
        );
        assert!(c.all_acked());
        assert!(
            c.queue(progmp_core::env::QueueKind::Reinject).is_empty(),
            "meta ack cleared the reinjection queue"
        );
    }
}
