//! Network path model: rate, propagation delay, random loss, and a
//! bounded FIFO egress queue per direction.
//!
//! This is the substitute for the paper's Mininet links and real WiFi/LTE
//! interfaces: the evaluation scenarios only depend on per-path delay,
//! capacity, loss and their dynamics, all of which are modelled here.
//! Rates and delays may change over time through [`PathProfileEntry`] entries
//! (WiFi throughput fluctuation, handover degradation).

use crate::faults::{ChaosRng, LossModel};
use crate::time::{serialize_time, SimTime};

/// Static configuration of one path (one subflow's network substrate).
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// One-way propagation delay, data direction (ns).
    pub fwd_delay: SimTime,
    /// One-way propagation delay, acknowledgement direction (ns).
    pub rev_delay: SimTime,
    /// Link rate in bytes/second (data direction).
    pub rate: u64,
    /// Independent random loss probability per packet (0.0..1.0).
    pub loss: f64,
    /// Egress queue capacity in packets; packets beyond it are tail-dropped.
    pub queue_cap: usize,
    /// Scheduled changes to rate/loss over time.
    pub profile: Vec<PathProfileEntry>,
}

/// A scheduled change of path characteristics.
#[derive(Debug, Clone, Copy)]
pub struct PathProfileEntry {
    /// When the change takes effect.
    pub at: SimTime,
    /// New rate (bytes/second); `None` keeps the current rate.
    pub rate: Option<u64>,
    /// New loss probability; `None` keeps the current loss.
    pub loss: Option<f64>,
    /// New forward one-way delay; `None` keeps the current delay.
    pub fwd_delay: Option<SimTime>,
}

impl PathConfig {
    /// A symmetric path described by RTT (split evenly) and rate.
    pub fn symmetric(rtt: SimTime, rate: u64) -> Self {
        PathConfig {
            fwd_delay: rtt / 2,
            rev_delay: rtt / 2,
            rate,
            loss: 0.0,
            queue_cap: 1000,
            profile: Vec::new(),
        }
    }

    /// Sets the random loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the egress queue capacity (packets).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Appends a profile entry.
    pub fn with_profile_entry(mut self, entry: PathProfileEntry) -> Self {
        self.profile.push(entry);
        self
    }
}

/// Runtime state of one path.
#[derive(Debug, Clone)]
pub struct Path {
    /// Current configuration values.
    pub fwd_delay: SimTime,
    /// Ack-direction delay.
    pub rev_delay: SimTime,
    /// Current rate (bytes/second).
    pub rate: u64,
    /// Current loss probability.
    pub loss: f64,
    /// Queue capacity in packets.
    pub queue_cap: usize,
    /// Time the link becomes free to serialize the next packet.
    next_free: SimTime,
    /// Departure times of packets currently in the egress queue (still
    /// queued or being serialized). Pruned lazily.
    departures: Vec<SimTime>,
    /// Per-path random stream for loss and jitter draws. Paths never
    /// share a stream, so one path's loss trace is independent of how
    /// other paths' events interleave (chaos-trace reproducibility).
    rng: ChaosRng,
    /// Fault-injected loss process overriding the baseline [`Path::loss`]
    /// while active (blackouts, Gilbert–Elliott bursts).
    fault_loss: Option<LossModel>,
    /// Fault-injected per-packet extra one-way delay, drawn uniformly
    /// from `[0, amplitude)` while active.
    jitter: Option<SimTime>,
}

/// Outcome of handing a packet to the path at the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Packet will arrive at the receiver at the given time.
    Arrives {
        /// Arrival time at the receiver.
        at: SimTime,
        /// Departure time from the sender's egress queue.
        departs: SimTime,
    },
    /// Packet was dropped (random loss); it departs but never arrives.
    LostOnWire {
        /// Departure time from the sender's egress queue.
        departs: SimTime,
    },
    /// Packet was tail-dropped at the full egress queue.
    QueueDrop,
}

impl Path {
    /// Creates runtime path state from a configuration.
    pub fn new(cfg: &PathConfig) -> Self {
        Path {
            fwd_delay: cfg.fwd_delay,
            rev_delay: cfg.rev_delay,
            rate: cfg.rate,
            loss: cfg.loss,
            queue_cap: cfg.queue_cap,
            next_free: 0,
            departures: Vec::new(),
            rng: ChaosRng::new(0),
            fault_loss: None,
            jitter: None,
        }
    }

    /// Replaces the path's random stream. The engine calls this when a
    /// connection is added, deriving the stream from `(simulation seed,
    /// connection id, subflow index)` so every path draws from its own
    /// reproducible sequence.
    pub fn reseed(&mut self, rng: ChaosRng) {
        self.rng = rng;
    }

    /// Installs (or, with `None`, removes) a fault-injected loss process
    /// overriding the baseline Bernoulli loss.
    pub fn set_fault_loss(&mut self, model: Option<LossModel>) {
        self.fault_loss = model;
    }

    /// Installs (or removes) fault-injected per-packet delay jitter with
    /// the given amplitude.
    pub fn set_jitter(&mut self, amplitude: Option<SimTime>) {
        self.jitter = amplitude;
    }

    /// Removes departed packets from the egress accounting.
    fn prune(&mut self, now: SimTime) {
        self.departures.retain(|&d| d > now);
    }

    /// Number of packets queued (or in serialization) at `now` — the
    /// `QUEUED` scheduler property and the basis of TSQ throttling.
    pub fn queued(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.departures.len()
    }

    /// Like [`Path::queued`] but without mutating (for property reads
    /// during scheduler executions, which must not change state).
    pub fn queued_at(&self, now: SimTime) -> usize {
        self.departures.iter().filter(|&&d| d > now).count()
    }

    /// Attempts to transmit a packet of `size` bytes at `now`, drawing
    /// the loss decision (and jitter, when a fault clause is active) from
    /// this path's own random stream.
    pub fn transmit(&mut self, now: SimTime, size: u32) -> TxOutcome {
        let lost = match &mut self.fault_loss {
            Some(model) => model.draw(&mut self.rng),
            None => {
                let mut base = LossModel::bernoulli(self.loss);
                base.draw(&mut self.rng)
            }
        };
        self.transmit_forced(now, size, lost)
    }

    /// Like [`Path::transmit`] but with an externally forced loss
    /// decision — no random draw. Used by unit tests that need exact
    /// outcomes; the engine always uses [`Path::transmit`].
    pub fn transmit_forced(&mut self, now: SimTime, size: u32, lost: bool) -> TxOutcome {
        self.prune(now);
        if self.departures.len() >= self.queue_cap {
            return TxOutcome::QueueDrop;
        }
        let start = self.next_free.max(now);
        let departs = start + serialize_time(u64::from(size), self.rate);
        self.next_free = departs;
        self.departures.push(departs);
        if lost {
            TxOutcome::LostOnWire { departs }
        } else {
            let extra = match self.jitter {
                Some(amp) if amp > 0 => self.rng.below(amp),
                _ => 0,
            };
            TxOutcome::Arrives {
                at: departs + self.fwd_delay + extra,
                departs,
            }
        }
    }

    /// Applies a profile entry.
    pub fn apply_profile(&mut self, entry: &PathProfileEntry) {
        if let Some(r) = entry.rate {
            self.rate = r;
        }
        if let Some(l) = entry.loss {
            self.loss = l;
        }
        if let Some(d) = entry.fwd_delay {
            self.fwd_delay = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{from_millis, MILLIS};

    fn path_10ms_10mbps() -> Path {
        // 10 Mbit/s = 1,250,000 B/s
        Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000))
    }

    #[test]
    fn first_packet_arrives_after_serialization_plus_delay() {
        let mut p = path_10ms_10mbps();
        let out = p.transmit_forced(0, 1250, false);
        // 1250 B at 1.25 MB/s = 1 ms serialization + 5 ms one-way delay.
        assert_eq!(
            out,
            TxOutcome::Arrives {
                at: 6 * MILLIS,
                departs: MILLIS
            }
        );
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        let mut p = path_10ms_10mbps();
        let TxOutcome::Arrives { at: a1, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        let TxOutcome::Arrives { at: a2, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        assert_eq!(a2 - a1, MILLIS, "second packet waits for the first");
    }

    #[test]
    fn queued_counts_pending_packets() {
        let mut p = path_10ms_10mbps();
        for _ in 0..5 {
            p.transmit_forced(0, 1250, false);
        }
        assert_eq!(p.queued(0), 5);
        // After 3.5 ms, three packets have departed.
        assert_eq!(p.queued(3 * MILLIS + MILLIS / 2), 2);
        assert_eq!(p.queued(10 * MILLIS), 0);
    }

    #[test]
    fn queue_cap_tail_drops() {
        let mut p = Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000).with_queue_cap(3));
        for _ in 0..3 {
            assert!(!matches!(
                p.transmit_forced(0, 1250, false),
                TxOutcome::QueueDrop
            ));
        }
        assert_eq!(p.transmit_forced(0, 1250, false), TxOutcome::QueueDrop);
    }

    #[test]
    fn lost_packet_departs_but_never_arrives() {
        let mut p = path_10ms_10mbps();
        let out = p.transmit_forced(0, 1250, true);
        assert_eq!(out, TxOutcome::LostOnWire { departs: MILLIS });
        // It still occupied the link.
        let TxOutcome::Arrives { at, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        assert_eq!(at, 7 * MILLIS);
    }

    #[test]
    fn profile_changes_rate() {
        let mut p = path_10ms_10mbps();
        p.apply_profile(&PathProfileEntry {
            at: 0,
            rate: Some(2_500_000),
            loss: None,
            fwd_delay: None,
        });
        let TxOutcome::Arrives { departs, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        assert_eq!(departs, MILLIS / 2, "doubled rate halves serialization");
    }

    #[test]
    fn rate_step_mid_flight_only_affects_later_serialization() {
        // Two packets queued at the old rate, then the profile halves the
        // rate: the queued packets keep their departure times (they are
        // already committed to the egress queue), while a packet handed
        // over after the step serializes at the new rate.
        let mut p = path_10ms_10mbps();
        let TxOutcome::Arrives { departs: d1, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        let TxOutcome::Arrives { departs: d2, .. } = p.transmit_forced(0, 1250, false) else {
            panic!()
        };
        assert_eq!((d1, d2), (MILLIS, 2 * MILLIS));
        p.apply_profile(&PathProfileEntry {
            at: MILLIS / 2,
            rate: Some(625_000),
            loss: None,
            fwd_delay: None,
        });
        assert_eq!(p.queued(MILLIS / 2), 2, "committed packets unaffected");
        let TxOutcome::Arrives { departs: d3, .. } = p.transmit_forced(MILLIS / 2, 1250, false)
        else {
            panic!()
        };
        // Starts when the link frees at 2 ms; 1250 B at 625 kB/s = 2 ms.
        assert_eq!(d3, 4 * MILLIS, "post-step packet serializes at new rate");
    }

    #[test]
    fn loss_step_mid_flight_switches_drawn_outcomes() {
        let mut p = path_10ms_10mbps();
        p.reseed(ChaosRng::new(7));
        // Baseline loss is 0.0: internal draws never lose (and consume no
        // randomness, so the stream is untouched for the lossy phase).
        for _ in 0..20 {
            assert!(matches!(p.transmit(0, 1250), TxOutcome::Arrives { .. }));
        }
        p.apply_profile(&PathProfileEntry {
            at: 25 * MILLIS,
            rate: None,
            loss: Some(1.0),
            fwd_delay: None,
        });
        for _ in 0..20 {
            assert!(matches!(
                p.transmit(25 * MILLIS, 1250),
                TxOutcome::LostOnWire { .. }
            ));
        }
    }

    #[test]
    fn tail_drop_boundary_at_exactly_full_queue() {
        // queue_cap = 2. Fill it; the first packet departs at exactly
        // 1 ms. One nanosecond before that instant the queue is still
        // full (tail drop); at exactly the departure instant the slot is
        // free again (departures are pruned with `d > now`).
        let mut p = Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000).with_queue_cap(2));
        assert!(!matches!(
            p.transmit_forced(0, 1250, false),
            TxOutcome::QueueDrop
        ));
        assert!(!matches!(
            p.transmit_forced(0, 1250, false),
            TxOutcome::QueueDrop
        ));
        assert_eq!(
            p.transmit_forced(MILLIS - 1, 1250, false),
            TxOutcome::QueueDrop,
            "one ns before first departure the queue is still full"
        );
        assert!(
            matches!(
                p.transmit_forced(MILLIS, 1250, false),
                TxOutcome::Arrives { .. }
            ),
            "at the departure instant exactly one slot frees"
        );
    }

    #[test]
    fn jitter_draws_from_path_stream_and_only_delays_arrival() {
        let mut p = path_10ms_10mbps();
        p.reseed(ChaosRng::new(5));
        p.set_jitter(Some(4 * MILLIS));
        let mut extras = Vec::new();
        for i in 0..32u64 {
            let now = i * 10 * MILLIS;
            let TxOutcome::Arrives { at, departs } = p.transmit(now, 1250) else {
                panic!()
            };
            assert_eq!(departs, now + MILLIS, "jitter never affects departure");
            let extra = at - departs - 5 * MILLIS;
            assert!(extra < 4 * MILLIS, "jitter bounded by amplitude");
            extras.push(extra);
        }
        assert!(
            extras.iter().any(|&e| e > 0),
            "jitter actually perturbs arrivals"
        );
        p.set_jitter(None);
        let TxOutcome::Arrives { at, departs } = p.transmit(320 * 10 * MILLIS, 1250) else {
            panic!()
        };
        assert_eq!(at - departs, 5 * MILLIS, "cleared jitter restores baseline");
    }

    #[test]
    fn fault_loss_overrides_baseline_and_restores() {
        let mut p = Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000).with_loss(0.0));
        p.reseed(ChaosRng::new(9));
        p.set_fault_loss(Some(LossModel::blackout()));
        for i in 0..10u64 {
            assert!(matches!(
                p.transmit(i * MILLIS * 10, 1250),
                TxOutcome::LostOnWire { .. }
            ));
        }
        p.set_fault_loss(None);
        assert!(matches!(
            p.transmit(200 * MILLIS, 1250),
            TxOutcome::Arrives { .. }
        ));
    }
}
