//! Network path model: rate, propagation delay, random loss, and a
//! bounded FIFO egress queue per direction.
//!
//! This is the substitute for the paper's Mininet links and real WiFi/LTE
//! interfaces: the evaluation scenarios only depend on per-path delay,
//! capacity, loss and their dynamics, all of which are modelled here.
//! Rates and delays may change over time through [`PathProfileEntry`] entries
//! (WiFi throughput fluctuation, handover degradation).

use crate::time::{serialize_time, SimTime};

/// Static configuration of one path (one subflow's network substrate).
#[derive(Debug, Clone)]
pub struct PathConfig {
    /// One-way propagation delay, data direction (ns).
    pub fwd_delay: SimTime,
    /// One-way propagation delay, acknowledgement direction (ns).
    pub rev_delay: SimTime,
    /// Link rate in bytes/second (data direction).
    pub rate: u64,
    /// Independent random loss probability per packet (0.0..1.0).
    pub loss: f64,
    /// Egress queue capacity in packets; packets beyond it are tail-dropped.
    pub queue_cap: usize,
    /// Scheduled changes to rate/loss over time.
    pub profile: Vec<PathProfileEntry>,
}

/// A scheduled change of path characteristics.
#[derive(Debug, Clone, Copy)]
pub struct PathProfileEntry {
    /// When the change takes effect.
    pub at: SimTime,
    /// New rate (bytes/second); `None` keeps the current rate.
    pub rate: Option<u64>,
    /// New loss probability; `None` keeps the current loss.
    pub loss: Option<f64>,
    /// New forward one-way delay; `None` keeps the current delay.
    pub fwd_delay: Option<SimTime>,
}

impl PathConfig {
    /// A symmetric path described by RTT (split evenly) and rate.
    pub fn symmetric(rtt: SimTime, rate: u64) -> Self {
        PathConfig {
            fwd_delay: rtt / 2,
            rev_delay: rtt / 2,
            rate,
            loss: 0.0,
            queue_cap: 1000,
            profile: Vec::new(),
        }
    }

    /// Sets the random loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the egress queue capacity (packets).
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.queue_cap = cap;
        self
    }

    /// Appends a profile entry.
    pub fn with_profile_entry(mut self, entry: PathProfileEntry) -> Self {
        self.profile.push(entry);
        self
    }
}

/// Runtime state of one path.
#[derive(Debug, Clone)]
pub struct Path {
    /// Current configuration values.
    pub fwd_delay: SimTime,
    /// Ack-direction delay.
    pub rev_delay: SimTime,
    /// Current rate (bytes/second).
    pub rate: u64,
    /// Current loss probability.
    pub loss: f64,
    /// Queue capacity in packets.
    pub queue_cap: usize,
    /// Time the link becomes free to serialize the next packet.
    next_free: SimTime,
    /// Departure times of packets currently in the egress queue (still
    /// queued or being serialized). Pruned lazily.
    departures: Vec<SimTime>,
}

/// Outcome of handing a packet to the path at the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Packet will arrive at the receiver at the given time.
    Arrives {
        /// Arrival time at the receiver.
        at: SimTime,
        /// Departure time from the sender's egress queue.
        departs: SimTime,
    },
    /// Packet was dropped (random loss); it departs but never arrives.
    LostOnWire {
        /// Departure time from the sender's egress queue.
        departs: SimTime,
    },
    /// Packet was tail-dropped at the full egress queue.
    QueueDrop,
}

impl Path {
    /// Creates runtime path state from a configuration.
    pub fn new(cfg: &PathConfig) -> Self {
        Path {
            fwd_delay: cfg.fwd_delay,
            rev_delay: cfg.rev_delay,
            rate: cfg.rate,
            loss: cfg.loss,
            queue_cap: cfg.queue_cap,
            next_free: 0,
            departures: Vec::new(),
        }
    }

    /// Removes departed packets from the egress accounting.
    fn prune(&mut self, now: SimTime) {
        self.departures.retain(|&d| d > now);
    }

    /// Number of packets queued (or in serialization) at `now` — the
    /// `QUEUED` scheduler property and the basis of TSQ throttling.
    pub fn queued(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.departures.len()
    }

    /// Like [`Path::queued`] but without mutating (for property reads
    /// during scheduler executions, which must not change state).
    pub fn queued_at(&self, now: SimTime) -> usize {
        self.departures.iter().filter(|&&d| d > now).count()
    }

    /// Attempts to transmit a packet of `size` bytes at `now`.
    /// `lost` is the externally drawn Bernoulli loss decision (the caller
    /// owns the RNG so simulations stay deterministic per seed).
    pub fn transmit(&mut self, now: SimTime, size: u32, lost: bool) -> TxOutcome {
        self.prune(now);
        if self.departures.len() >= self.queue_cap {
            return TxOutcome::QueueDrop;
        }
        let start = self.next_free.max(now);
        let departs = start + serialize_time(u64::from(size), self.rate);
        self.next_free = departs;
        self.departures.push(departs);
        if lost {
            TxOutcome::LostOnWire { departs }
        } else {
            TxOutcome::Arrives {
                at: departs + self.fwd_delay,
                departs,
            }
        }
    }

    /// Applies a profile entry.
    pub fn apply_profile(&mut self, entry: &PathProfileEntry) {
        if let Some(r) = entry.rate {
            self.rate = r;
        }
        if let Some(l) = entry.loss {
            self.loss = l;
        }
        if let Some(d) = entry.fwd_delay {
            self.fwd_delay = d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{from_millis, MILLIS};

    fn path_10ms_10mbps() -> Path {
        // 10 Mbit/s = 1,250,000 B/s
        Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000))
    }

    #[test]
    fn first_packet_arrives_after_serialization_plus_delay() {
        let mut p = path_10ms_10mbps();
        let out = p.transmit(0, 1250, false);
        // 1250 B at 1.25 MB/s = 1 ms serialization + 5 ms one-way delay.
        assert_eq!(
            out,
            TxOutcome::Arrives {
                at: 6 * MILLIS,
                departs: MILLIS
            }
        );
    }

    #[test]
    fn serialization_queues_back_to_back_packets() {
        let mut p = path_10ms_10mbps();
        let TxOutcome::Arrives { at: a1, .. } = p.transmit(0, 1250, false) else {
            panic!()
        };
        let TxOutcome::Arrives { at: a2, .. } = p.transmit(0, 1250, false) else {
            panic!()
        };
        assert_eq!(a2 - a1, MILLIS, "second packet waits for the first");
    }

    #[test]
    fn queued_counts_pending_packets() {
        let mut p = path_10ms_10mbps();
        for _ in 0..5 {
            p.transmit(0, 1250, false);
        }
        assert_eq!(p.queued(0), 5);
        // After 3.5 ms, three packets have departed.
        assert_eq!(p.queued(3 * MILLIS + MILLIS / 2), 2);
        assert_eq!(p.queued(10 * MILLIS), 0);
    }

    #[test]
    fn queue_cap_tail_drops() {
        let mut p = Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000).with_queue_cap(3));
        for _ in 0..3 {
            assert!(!matches!(p.transmit(0, 1250, false), TxOutcome::QueueDrop));
        }
        assert_eq!(p.transmit(0, 1250, false), TxOutcome::QueueDrop);
    }

    #[test]
    fn lost_packet_departs_but_never_arrives() {
        let mut p = path_10ms_10mbps();
        let out = p.transmit(0, 1250, true);
        assert_eq!(out, TxOutcome::LostOnWire { departs: MILLIS });
        // It still occupied the link.
        let TxOutcome::Arrives { at, .. } = p.transmit(0, 1250, false) else {
            panic!()
        };
        assert_eq!(at, 7 * MILLIS);
    }

    #[test]
    fn profile_changes_rate() {
        let mut p = path_10ms_10mbps();
        p.apply_profile(&PathProfileEntry {
            at: 0,
            rate: Some(2_500_000),
            loss: None,
            fwd_delay: None,
        });
        let TxOutcome::Arrives { departs, .. } = p.transmit(0, 1250, false) else {
            panic!()
        };
        assert_eq!(departs, MILLIS / 2, "doubled rate halves serialization");
    }
}
