//! # mptcp-sim
//!
//! A deterministic discrete-event Multipath TCP simulator: the substrate
//! on which the ProgMP scheduler programming model (`progmp-core`) is
//! evaluated, substituting for the paper's Linux-kernel implementation
//! and Mininet/real-world testbeds (see DESIGN.md §1 for the substitution
//! argument).
//!
//! The simulator models, per connection:
//!
//! * **subflows** over independent paths (rate, propagation delay, random
//!   loss, bounded egress queue, time-varying profiles for WiFi
//!   fluctuation and handover);
//! * **TCP machinery** per subflow: NewReno or coupled LIA congestion
//!   control, RFC 6298 RTT estimation, fast retransmit on triple-dupack,
//!   retransmission timeouts with backoff, TCP-small-queue throttling;
//! * the **MPTCP meta socket**: sending queue `Q`, in-flight queue `QU`,
//!   reinjection queue `RQ`, data-level sequencing/acking, and the
//!   scheduler hook implementing [`progmp_core::env::SchedulerEnv`];
//! * the **receiver**: per-subflow and meta reordering with both the
//!   stock-Linux (legacy) and the paper's improved delivery (§4.2);
//! * **applications**: bulk, constant-bitrate, bursty, and short-flow
//!   sources, plus register signalling through the extended API.
//!
//! ## Quick example
//!
//! ```
//! use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
//! use mptcp_sim::time::{from_millis, SECONDS};
//!
//! let mut sim = Sim::new(1);
//! let conn = sim.add_connection(ConnectionConfig::new(
//!     vec![
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
//!     ],
//!     SchedulerSpec::dsl(
//!         "IF (!Q.EMPTY) {
//!              SUBFLOWS.FILTER(sbf => sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED)
//!                      .MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
//!     ),
//! )).unwrap();
//! sim.app_send_at(conn, 0, 50_000, 0);
//! sim.run_to_completion(10 * SECONDS);
//! assert!(sim.connections[conn].all_acked());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod calendar;
pub mod cc;
pub mod config;
pub mod connection;
pub mod engine;
pub mod faults;
pub mod fleet;
pub mod native;
pub mod oracle;
pub mod packet;
pub mod path;
pub mod pathman;
pub mod receiver;
pub mod rtt;
pub mod stats;
pub mod subflow;
pub mod supervisor;
pub mod time;

pub use calendar::CalendarQueue;
pub use cc::CcAlgo;
pub use config::{ConnectionConfig, SchedulerSpec, SubflowConfig};
pub use connection::{Connection, SchedulerHandle};
pub use engine::{ConnId, Sim};
pub use faults::{ChaosRng, FaultClause, FaultPlan, LossModel};
pub use fleet::{
    run_fleet, ConnReport, ConnScenario, FleetConfig, FleetReport, OracleMode, Workload,
};
pub use native::{NativeMinRtt, NativeRoundRobin, NativeScheduler, NativeTrapping};
pub use oracle::{InvariantOracle, OracleViolation};
pub use path::{PathConfig, PathProfileEntry};
pub use pathman::{PathManager, PathManagerPolicy, PmAction};
pub use receiver::ReceiverMode;
pub use stats::{ConnStats, SubflowStats};
pub use supervisor::{
    classify_exec_error, fallback_program, ContainAction, ContainState, ContainmentConfig,
    FaultAction, FaultClass, IncidentReport, ParkedScheduler, Supervisor,
};
