//! Deterministic fault injection: seeded, composable schedules of the
//! hostile network conditions the paper's schedulers exist to survive
//! (§5–6): path blackouts, Gilbert–Elliott burst loss, delay jitter /
//! RTT spikes, receive-window stalls, and subflow add/remove churn.
//!
//! A [`FaultPlan`] is a list of [`FaultClause`]s, each a time-windowed
//! fault on one path (or the connection, for window stalls). Plans are
//! generated deterministically from a seed ([`FaultPlan::generate`]) and
//! rendered to a stable integer-only text form ([`FaultPlan::render`])
//! so a failing chaos case replays from its seed and reads in a report.
//!
//! Every random draw in the fault layer — loss decisions, burst-state
//! transitions, per-packet jitter — comes from a **per-path**
//! [`ChaosRng`] (xorshift64*) stream seeded from `(simulation seed,
//! connection id, subflow index)`. Paths never share a stream, so a
//! path's loss/jitter trace depends only on its own transmission
//! sequence, not on how unrelated events interleave in the global event
//! queue. This is what makes chaos traces reproducible and shrinkable:
//! removing one connection (or one fault clause) does not perturb the
//! draws of the others.

use crate::time::{SimTime, MILLIS, SECONDS};

/// xorshift64* generator (Vigna). The fault layer's only randomness
/// source; deliberately the same frozen algorithm as the conformance
/// harness's seed streams so recorded chaos seeds stay valid forever.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from `seed` (0 is remapped: xorshift has an
    /// all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        ChaosRng {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Derives an independent stream for `(conn, sbf)` from a base seed
    /// by mixing through splitmix64 — adjacent inputs yield uncorrelated
    /// streams.
    pub fn for_path(base_seed: u64, conn: u64, sbf: u64) -> Self {
        let mut z = base_seed
            .wrapping_add(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(sbf.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        ChaosRng::new(z ^ (z >> 31))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `ppm / 1_000_000`.
    pub fn chance_ppm(&mut self, ppm: u32) -> bool {
        if ppm == 0 {
            return false;
        }
        if ppm >= 1_000_000 {
            return true;
        }
        self.below(1_000_000) < u64::from(ppm)
    }
}

/// Packet-loss process of a path. Probabilities are parts-per-million so
/// plans render and replay with integers only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossModel {
    /// Independent per-packet loss with probability `ppm / 1e6`.
    Bernoulli {
        /// Loss probability in parts-per-million.
        ppm: u32,
    },
    /// Two-state Gilbert–Elliott burst-loss process: per packet, first a
    /// state transition is drawn, then a loss with the state's rate.
    GilbertElliott {
        /// P(good → bad) per packet, ppm.
        p_enter_bad: u32,
        /// P(bad → good) per packet, ppm.
        p_exit_bad: u32,
        /// Loss probability in the good state, ppm.
        loss_good: u32,
        /// Loss probability in the bad state, ppm.
        loss_bad: u32,
        /// Current state (part of the model so traces replay).
        bad: bool,
    },
}

impl LossModel {
    /// Bernoulli model from a float probability (clamped to `[0, 1]`).
    pub fn bernoulli(p: f64) -> Self {
        LossModel::Bernoulli {
            ppm: (p.clamp(0.0, 1.0) * 1e6) as u32,
        }
    }

    /// A total blackout: every packet is lost.
    pub fn blackout() -> Self {
        LossModel::Bernoulli { ppm: 1_000_000 }
    }

    /// Draws the loss decision for one packet, advancing burst state.
    /// Degenerate probabilities (0, 1) do not consume random draws, so a
    /// loss-free path never touches its stream.
    pub fn draw(&mut self, rng: &mut ChaosRng) -> bool {
        match self {
            LossModel::Bernoulli { ppm } => rng.chance_ppm(*ppm),
            LossModel::GilbertElliott {
                p_enter_bad,
                p_exit_bad,
                loss_good,
                loss_bad,
                bad,
            } => {
                let flip = rng.chance_ppm(if *bad { *p_exit_bad } else { *p_enter_bad });
                if flip {
                    *bad = !*bad;
                }
                rng.chance_ppm(if *bad { *loss_bad } else { *loss_good })
            }
        }
    }
}

/// One time-windowed fault. All windows are half-open `[from, until)`;
/// the engine installs the fault at `from` and restores the baseline at
/// `until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClause {
    /// Total loss on one path (the link is up but delivers nothing —
    /// e.g. walking out of WiFi range before the association drops).
    Blackout {
        /// Affected subflow index.
        sbf: u32,
        /// Window start.
        from: SimTime,
        /// Window end (baseline restored).
        until: SimTime,
    },
    /// Gilbert–Elliott bursty loss on one path.
    BurstLoss {
        /// Affected subflow index.
        sbf: u32,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// P(good → bad) per packet, ppm.
        p_enter_bad: u32,
        /// P(bad → good) per packet, ppm.
        p_exit_bad: u32,
        /// Loss probability while bad, ppm.
        loss_bad: u32,
    },
    /// Per-packet one-way delay jitter in `[0, amplitude)` — RTT spikes
    /// and reordering on the wire.
    DelayJitter {
        /// Affected subflow index.
        sbf: u32,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
        /// Maximum extra one-way delay (ns).
        amplitude: SimTime,
    },
    /// The receiving application stops reading: the advertised receive
    /// window collapses to zero for the duration, then a window update
    /// reopens it.
    RwndStall {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Subflow churn: the subflow is torn down at `down_at` and
    /// re-established at `up_at` (handover, interface flap).
    Churn {
        /// Affected subflow index.
        sbf: u32,
        /// Teardown time.
        down_at: SimTime,
        /// Re-establishment time.
        up_at: SimTime,
    },
}

/// A seeded, composable schedule of faults for one connection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The clauses, in generation order.
    pub clauses: Vec<FaultClause>,
}

impl FaultPlan {
    /// Generates a plan for a connection with `n_subflows`, with every
    /// fault window contained in `[horizon/8, horizon)`. Deterministic
    /// per seed; 1–4 clauses.
    pub fn generate(seed: u64, n_subflows: u32, horizon: SimTime) -> Self {
        let mut rng = ChaosRng::new(seed ^ 0xC4A0_5C4A_05C4_A05C);
        let n_clauses = 1 + rng.below(4);
        let mut clauses = Vec::new();
        let lo = horizon / 8;
        let span = horizon.saturating_sub(lo).max(1);
        for _ in 0..n_clauses {
            let sbf = rng.below(u64::from(n_subflows.max(1))) as u32;
            let from = lo + rng.below(span / 2).max(1);
            let len = (50 * MILLIS + rng.below(2 * SECONDS)).min(horizon - from);
            let until = from + len.max(MILLIS);
            clauses.push(match rng.below(5) {
                0 => FaultClause::Blackout { sbf, from, until },
                1 => FaultClause::BurstLoss {
                    sbf,
                    from,
                    until,
                    p_enter_bad: 20_000 + rng.below(180_000) as u32,
                    p_exit_bad: 50_000 + rng.below(400_000) as u32,
                    loss_bad: 300_000 + rng.below(700_000) as u32,
                },
                2 => FaultClause::DelayJitter {
                    sbf,
                    from,
                    until,
                    amplitude: 2 * MILLIS + rng.below(80 * MILLIS),
                },
                3 => FaultClause::RwndStall {
                    from,
                    until: from + len.clamp(MILLIS, 800 * MILLIS),
                },
                _ => FaultClause::Churn {
                    sbf,
                    down_at: from,
                    up_at: until,
                },
            });
        }
        FaultPlan { clauses }
    }

    /// Stable, integer-only text form for reports and golden replays.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.clauses {
            out.push_str(&match *c {
                FaultClause::Blackout { sbf, from, until } => {
                    format!("blackout sbf={sbf} from={from} until={until}\n")
                }
                FaultClause::BurstLoss {
                    sbf,
                    from,
                    until,
                    p_enter_bad,
                    p_exit_bad,
                    loss_bad,
                } => format!(
                    "burst-loss sbf={sbf} from={from} until={until} \
                     enter={p_enter_bad} exit={p_exit_bad} bad={loss_bad}\n"
                ),
                FaultClause::DelayJitter {
                    sbf,
                    from,
                    until,
                    amplitude,
                } => format!("jitter sbf={sbf} from={from} until={until} amp={amplitude}\n"),
                FaultClause::RwndStall { from, until } => {
                    format!("rwnd-stall from={from} until={until}\n")
                }
                FaultClause::Churn {
                    sbf,
                    down_at,
                    up_at,
                } => {
                    format!("churn sbf={sbf} down={down_at} up={up_at}\n")
                }
            });
        }
        out
    }

    /// Highest subflow index any clause touches, if any clause targets a
    /// subflow (used by shrinkers to keep plans well-formed).
    pub fn max_subflow(&self) -> Option<u32> {
        self.clauses
            .iter()
            .filter_map(|c| match *c {
                FaultClause::Blackout { sbf, .. }
                | FaultClause::BurstLoss { sbf, .. }
                | FaultClause::DelayJitter { sbf, .. }
                | FaultClause::Churn { sbf, .. } => Some(sbf),
                FaultClause::RwndStall { .. } => None,
            })
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_rng_is_frozen_xorshift64star() {
        // Same pinned first output as the conformance harness's stream:
        // changing the algorithm invalidates every recorded chaos seed.
        let mut r = ChaosRng::new(1);
        assert_eq!(r.next_u64(), 0x47E4_CE4B_896C_DD1D);
    }

    #[test]
    fn per_path_streams_are_independent() {
        let mut a = ChaosRng::for_path(7, 0, 0);
        let mut b = ChaosRng::for_path(7, 0, 1);
        let mut c = ChaosRng::for_path(7, 1, 0);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(xs, ys);
        assert_ne!(xs, zs);
        assert_ne!(ys, zs);
    }

    #[test]
    fn degenerate_bernoulli_consumes_no_draws() {
        let mut rng = ChaosRng::new(3);
        let before = rng.clone().next_u64();
        let mut never = LossModel::Bernoulli { ppm: 0 };
        let mut always = LossModel::blackout();
        assert!(!never.draw(&mut rng));
        assert!(always.draw(&mut rng));
        assert_eq!(rng.next_u64(), before, "stream untouched");
    }

    #[test]
    fn gilbert_elliott_bursts() {
        let mut model = LossModel::GilbertElliott {
            p_enter_bad: 100_000,
            p_exit_bad: 300_000,
            loss_good: 0,
            loss_bad: 1_000_000,
            bad: false,
        };
        let mut rng = ChaosRng::new(11);
        let outcomes: Vec<bool> = (0..2000).map(|_| model.draw(&mut rng)).collect();
        let losses = outcomes.iter().filter(|l| **l).count();
        assert!(losses > 100, "bad state produces losses: {losses}");
        assert!(losses < 1500, "good state passes packets: {losses}");
        // Burstiness: a loss is followed by another loss far more often
        // than the marginal loss rate alone would predict.
        let pairs = outcomes.windows(2).filter(|w| w[0]).count();
        let runs = outcomes.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(runs * 2 > pairs, "losses cluster: {runs}/{pairs}");
    }

    #[test]
    fn generated_plans_are_deterministic_and_bounded() {
        let a = FaultPlan::generate(42, 2, 10 * SECONDS);
        let b = FaultPlan::generate(42, 2, 10 * SECONDS);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::generate(43, 2, 10 * SECONDS));
        assert!(!a.clauses.is_empty() && a.clauses.len() <= 4);
        for seed in 0..200 {
            let plan = FaultPlan::generate(seed, 3, 10 * SECONDS);
            for c in &plan.clauses {
                let (from, until) = match *c {
                    FaultClause::Blackout { from, until, .. }
                    | FaultClause::BurstLoss { from, until, .. }
                    | FaultClause::DelayJitter { from, until, .. }
                    | FaultClause::RwndStall { from, until }
                    | FaultClause::Churn {
                        down_at: from,
                        up_at: until,
                        ..
                    } => (from, until),
                };
                assert!(from < until, "windows are non-empty");
                assert!(until <= 10 * SECONDS, "windows end within the horizon");
                if let Some(sbf) = plan.max_subflow() {
                    assert!(sbf < 3);
                }
            }
        }
    }

    #[test]
    fn render_is_integer_only_and_stable() {
        let plan = FaultPlan::generate(9, 2, 10 * SECONDS);
        let text = plan.render();
        assert_eq!(text, plan.render());
        assert!(!text.contains('.'), "render must be integer-only: {text}");
        assert_eq!(text.lines().count(), plan.clauses.len());
    }
}
