//! Runtime containment: scheduler quarantine, safe-default fallback, and
//! deterministic backoff re-admission.
//!
//! The supervisor sits between the engine's upcall path and the scheduler
//! backends. Every upcall runs under a fault boundary that converts
//! backend traps, certified-step-budget exhaustion, oracle invariant
//! violations, and eventual-progress stalls into a structured
//! [`FaultClass`] — propagated as a value, never a panic, never a silent
//! log line, and never `catch_unwind`. On a fault the supervisor
//!
//! 1. **quarantines** the program for that connection: the faulting
//!    scheduler instance is parked (together with its property
//!    certificate, `RQ` capability flag, and step budget) and a built-in
//!    safe default with minRtt semantics ([`fallback_program`], compiled
//!    once and shared across all quarantined connections) takes over;
//! 2. schedules **probationary re-admission** after a deterministic
//!    exponential backoff. Backoff jitter is drawn from a per-connection
//!    xorshift stream keyed by `(simulation seed, connection identity)`
//!    ([`ChaosRng::for_path`]), so containment decisions are a pure
//!    function of the connection's own history — fleet digests stay
//!    bit-identical no matter how many workers the fleet is split
//!    across;
//! 3. trips a per-connection **circuit breaker** after
//!    [`ContainmentConfig::max_strikes`] faults, pinning the fallback
//!    permanently; and
//! 4. above a configurable fleet-wide fault rate, trips a **fleet-level
//!    breaker** that flips the remaining connections' invariant oracle
//!    from panic to collect mode. The fleet breaker only changes how
//!    violations are *routed* — never the simulated behaviour — so it
//!    cannot perturb digests.
//!
//! Every transition emits a seed-replayable [`IncidentReport`], rendered
//! in the integer-only replay style of [`crate::faults`]: re-running the
//! same scenario with the same seed reproduces the same incident at the
//! same simulated time.

use crate::connection::SchedulerHandle;
use crate::faults::ChaosRng;
use crate::time::{SimTime, MILLIS, SECONDS};
use progmp_core::{ExecError, SchedulerProgram};
use std::sync::{Arc, OnceLock};

/// Domain separation for the supervisor's backoff streams: keeps the
/// jitter draws disjoint from the path chaos streams derived from the
/// same simulation seed.
const SUPERVISOR_SALT: u64 = 0x0C04_17A1_4170_C0DE;

/// The built-in safe default installed on quarantine: the paper's
/// default minRtt scheduler with reinjection priority — the same
/// semantics the engine's baseline tests pin. It provably pops `RQ`, so
/// a quarantined connection can recover loss-suspected segments its
/// original scheduler would have stranded.
pub const FALLBACK_DSL: &str = "
    VAR rqSkb = RQ.TOP;
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (rqSkb != NULL) {
        VAR rtxSbf = avail.FILTER(sbf => !rqSkb.SENT_ON(sbf)).MIN(sbf => sbf.RTT);
        IF (rtxSbf != NULL) {
            rtxSbf.PUSH(RQ.POP());
            RETURN;
        }
    }
    IF (!Q.EMPTY) {
        avail.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }";

static FALLBACK: OnceLock<Arc<SchedulerProgram>> = OnceLock::new();

/// The shared fallback program, compiled once per process. Quarantined
/// connections get a per-connection instance via
/// [`SchedulerProgram::instantiate_shared`], so the compiled image (and
/// its certificates) is never duplicated.
pub fn fallback_program() -> &'static Arc<SchedulerProgram> {
    FALLBACK.get_or_init(|| {
        Arc::new(progmp_core::compile(FALLBACK_DSL).expect("built-in fallback scheduler compiles"))
    })
}

/// The structured fault a scheduler upcall (or its oracle watchdog)
/// produced. Each variant maps one containment trigger class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultClass {
    /// The execution exhausted its certified per-upcall step budget.
    StepBudget {
        /// The budget that was in force.
        budget: u64,
    },
    /// The VM rejected its own image mid-execution (a codegen bug that
    /// slipped past verification — contained, then reported).
    MalformedBytecode {
        /// Program counter of the fault.
        pc: usize,
        /// Backend description of the fault.
        detail: String,
    },
    /// A backend raised a structured [`ExecError::Trap`].
    BackendTrap {
        /// Component that raised the trap.
        origin: &'static str,
        /// Trap description.
        detail: String,
    },
    /// The runtime invariant oracle caught the scheduler violating one
    /// of its certified properties (catalogue name attached).
    OracleViolation {
        /// Violated invariant, e.g. `property-work-conservation`.
        invariant: &'static str,
    },
    /// The event queue drained with deliverable data stranded: the
    /// scheduler stopped making progress (a starver, or a program with
    /// no reinjection logic sitting on an `RQ` strand).
    ProgressStall,
}

impl FaultClass {
    /// Stable class name used in replay strings and reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultClass::StepBudget { .. } => "step-budget",
            FaultClass::MalformedBytecode { .. } => "malformed-bytecode",
            FaultClass::BackendTrap { .. } => "backend-trap",
            FaultClass::OracleViolation { .. } => "oracle-violation",
            FaultClass::ProgressStall => "progress-stall",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultClass::StepBudget { budget } => {
                write!(f, "step budget of {budget} exhausted")
            }
            FaultClass::MalformedBytecode { pc, detail } => {
                write!(f, "malformed bytecode at pc {pc}: {detail}")
            }
            FaultClass::BackendTrap { origin, detail } => {
                write!(f, "trap in {origin}: {detail}")
            }
            FaultClass::OracleViolation { invariant } => {
                write!(f, "oracle invariant `{invariant}` violated")
            }
            FaultClass::ProgressStall => f.write_str("eventual-progress stall at quiescence"),
        }
    }
}

/// Converts an [`ExecError`] escaping an upcall into its fault class.
pub fn classify_exec_error(err: &ExecError) -> FaultClass {
    match err {
        ExecError::StepBudgetExhausted { budget } => FaultClass::StepBudget { budget: *budget },
        ExecError::MalformedBytecode { pc, detail } => FaultClass::MalformedBytecode {
            pc: *pc,
            detail: detail.clone(),
        },
        ExecError::Trap { origin, detail } => FaultClass::BackendTrap {
            origin,
            detail: detail.clone(),
        },
    }
}

/// Containment knobs. The defaults quarantine aggressively and re-admit
/// within a simulated second — tuned for transfers that should survive a
/// misbehaving scheduler without missing their horizon.
#[derive(Debug, Clone)]
pub struct ContainmentConfig {
    /// First-strike backoff before probationary re-admission.
    pub base_backoff: SimTime,
    /// Backoff ceiling (the exponential doubling saturates here).
    pub max_backoff: SimTime,
    /// Faults before the per-connection circuit breaker pins the
    /// fallback permanently. Must be at least 1.
    pub max_strikes: u32,
    /// Percentage of registered connections that must fault before the
    /// fleet-level breaker trips (flipping the oracle from panic to
    /// collect routing). Values above 100 disable the breaker.
    pub fleet_breaker_pct: u32,
    /// The fleet breaker never trips below this many registered
    /// connections (a single faulty connection is not a fleet incident).
    pub fleet_breaker_min_conns: usize,
    /// Period of the per-connection stall watchdog. The watchdog fires a
    /// [`FaultClass::ProgressStall`] when a full period passes with
    /// schedulable work, an available subflow, and zero forward progress.
    /// Check times are multiples of this period from the connection's
    /// own first-data event, so stall detection — like every other
    /// containment decision — is invariant under fleet partitioning.
    pub stall_check_interval: SimTime,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        ContainmentConfig {
            base_backoff: 200 * MILLIS,
            max_backoff: 30 * SECONDS,
            max_strikes: 3,
            fleet_breaker_pct: 50,
            fleet_breaker_min_conns: 4,
            stall_check_interval: SECONDS,
        }
    }
}

/// Where a connection sits in the containment state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainState {
    /// Original scheduler active, no strikes outstanding.
    Healthy,
    /// Fallback active; a re-admission is scheduled.
    Quarantined,
    /// Original scheduler re-admitted and under watch: the next fault
    /// quarantines again with a doubled backoff.
    Probation,
    /// Per-connection circuit breaker tripped: fallback pinned, no
    /// further re-admission.
    Pinned,
}

/// What the engine must do in response to a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Park the original scheduler, install the fallback, and schedule a
    /// re-admission at `until`.
    Quarantine {
        /// Absolute simulated time of the probationary re-admission.
        until: SimTime,
    },
    /// Park the original scheduler and install the fallback permanently.
    Pin,
    /// The connection is already running the fallback (or pinned); the
    /// incident was recorded and nothing is swapped.
    Recorded,
}

/// State transition an [`IncidentReport`] documents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainAction {
    /// Original scheduler quarantined, fallback installed.
    Quarantined,
    /// Per-connection circuit breaker tripped; fallback pinned.
    Pinned,
    /// Original scheduler re-admitted on probation.
    Readmitted,
    /// A fault occurred while the fallback was already active (recorded,
    /// no swap).
    FallbackFault,
    /// The fleet-level breaker tripped (oracle flipped to collect mode).
    FleetBreakerTripped,
}

impl ContainAction {
    /// Stable lower-case name used in replay strings.
    pub fn name(self) -> &'static str {
        match self {
            ContainAction::Quarantined => "quarantined",
            ContainAction::Pinned => "pinned",
            ContainAction::Readmitted => "readmitted",
            ContainAction::FallbackFault => "fallback-fault",
            ContainAction::FleetBreakerTripped => "fleet-breaker",
        }
    }
}

/// One seed-replayable containment transition.
#[derive(Debug, Clone)]
pub struct IncidentReport {
    /// Simulated time of the transition.
    pub at: SimTime,
    /// Global connection identity (fleet index; equals the local id in a
    /// standalone [`crate::Sim`]).
    pub conn: u64,
    /// The fault that triggered the transition ([`ContainAction::Readmitted`]
    /// re-states the fault that caused the quarantine being left).
    pub class: FaultClass,
    /// Spanned program location (`line:col`) where the backend could
    /// attribute the fault to source; `None` otherwise.
    pub location: Option<String>,
    /// Strike count after this transition.
    pub strikes: u32,
    /// What the supervisor did.
    pub action: ContainAction,
    /// Backoff applied (0 unless the action schedules a re-admission).
    pub backoff: SimTime,
    /// Integer-only replay string in the style of
    /// [`crate::faults::FaultPlan::render`]: re-running the scenario with
    /// this seed reproduces the incident bit-identically.
    pub replay: String,
}

impl std::fmt::Display for IncidentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conn {} {} at t={} (strike {}): {}{} [{}]",
            self.conn,
            self.action.name(),
            self.at,
            self.strikes,
            self.class,
            match &self.location {
                Some(loc) => format!(" @ {loc}"),
                None => String::new(),
            },
            self.replay,
        )
    }
}

/// The original scheduler and everything that travels with it while the
/// fallback holds the connection.
pub struct ParkedScheduler {
    /// The parked scheduler instance.
    pub handle: SchedulerHandle,
    /// Its property certificate (the fallback's replaces it meanwhile).
    pub prop_cert: Option<progmp_core::PropertyCertificate>,
    /// Its static `RQ`-capability flag.
    pub pops_rq: bool,
    /// Its per-execution step budget.
    pub step_budget: u64,
}

/// Per-connection containment record.
struct ConnContain {
    state: ContainState,
    strikes: u32,
    rng: ChaosRng,
    identity: u64,
    parked: Option<ParkedScheduler>,
    watchdog_armed: bool,
    progress_mark: u64,
}

/// The containment supervisor owned by one [`crate::Sim`].
pub struct Supervisor {
    cfg: ContainmentConfig,
    seed: u64,
    conns: Vec<Option<ConnContain>>,
    /// Every containment transition, in simulated-time order.
    pub incidents: Vec<IncidentReport>,
    /// Distinct connections that have ever faulted.
    faulted: usize,
    /// Registered connections (the fleet-breaker denominator).
    total: usize,
    /// Whether the fleet-level breaker has tripped.
    pub fleet_breaker_tripped: bool,
    breaker_just_tripped: bool,
}

impl Supervisor {
    /// Creates a supervisor for a simulation seeded with `seed`.
    pub fn new(seed: u64, cfg: ContainmentConfig) -> Self {
        Supervisor {
            cfg: ContainmentConfig {
                max_strikes: cfg.max_strikes.max(1),
                ..cfg
            },
            seed,
            conns: Vec::new(),
            incidents: Vec::new(),
            faulted: 0,
            total: 0,
            fleet_breaker_tripped: false,
            breaker_just_tripped: false,
        }
    }

    /// Registers connection `conn` (local index) with its global
    /// `identity`; idempotent.
    pub fn register(&mut self, conn: usize, identity: u64) {
        if self.conns.len() <= conn {
            self.conns.resize_with(conn + 1, || None);
        }
        if self.conns[conn].is_none() {
            self.conns[conn] = Some(ConnContain {
                state: ContainState::Healthy,
                strikes: 0,
                // Jitter draws are a pure function of (seed, identity):
                // independent of sharding and of other connections.
                rng: ChaosRng::for_path(self.seed ^ SUPERVISOR_SALT, identity, 0),
                identity,
                parked: None,
                watchdog_armed: false,
                progress_mark: 0,
            });
            self.total += 1;
        }
    }

    /// Containment state of `conn` (Healthy when never registered).
    pub fn state(&self, conn: usize) -> ContainState {
        self.conns
            .get(conn)
            .and_then(|c| c.as_ref())
            .map(|c| c.state)
            .unwrap_or(ContainState::Healthy)
    }

    /// Whether the connection is currently running the fallback.
    pub fn on_fallback(&self, conn: usize) -> bool {
        matches!(
            self.state(conn),
            ContainState::Quarantined | ContainState::Pinned
        )
    }

    /// Number of quarantine transitions recorded so far.
    pub fn quarantines(&self) -> usize {
        self.incidents
            .iter()
            .filter(|i| matches!(i.action, ContainAction::Quarantined | ContainAction::Pinned))
            .count()
    }

    fn replay_string(&self, identity: u64, class: &FaultClass, at: SimTime) -> String {
        format!(
            "seed={} conn={} class={} at={}",
            self.seed,
            identity,
            class.name(),
            at
        )
    }

    /// Handles a fault on `conn` at `now`. Returns what the engine must
    /// do with the scheduler handles; the swap itself happens in the
    /// engine via [`Supervisor::park`] / [`Supervisor::unpark`].
    pub fn on_fault(
        &mut self,
        now: SimTime,
        conn: usize,
        class: FaultClass,
        location: Option<String>,
    ) -> FaultAction {
        let Some(entry) = self.conns.get_mut(conn).and_then(|c| c.as_mut()) else {
            return FaultAction::Recorded;
        };
        let identity = entry.identity;
        match entry.state {
            ContainState::Quarantined | ContainState::Pinned => {
                // The fallback itself faulted (or a stale violation
                // arrived after the swap): record, never double-park.
                let strikes = entry.strikes;
                let replay = self.replay_string(identity, &class, now);
                self.incidents.push(IncidentReport {
                    at: now,
                    conn: identity,
                    class,
                    location,
                    strikes,
                    action: ContainAction::FallbackFault,
                    backoff: 0,
                    replay,
                });
                FaultAction::Recorded
            }
            ContainState::Healthy | ContainState::Probation => {
                let first_fault = entry.strikes == 0;
                entry.strikes += 1;
                let strikes = entry.strikes;
                let pin = strikes >= self.cfg.max_strikes;
                let (action, contain_action, backoff) = if pin {
                    entry.state = ContainState::Pinned;
                    (FaultAction::Pin, ContainAction::Pinned, 0)
                } else {
                    entry.state = ContainState::Quarantined;
                    // Deterministic exponential backoff with jitter from
                    // the per-connection stream: double per strike, cap,
                    // and spread re-admissions so a fleet of identical
                    // faulters does not thunder back in lockstep.
                    let base = self.cfg.base_backoff.max(1);
                    let exp = base.saturating_shl((strikes - 1).min(30));
                    let jitter = entry.rng.below(base / 2 + 1);
                    let backoff = exp.min(self.cfg.max_backoff).saturating_add(jitter);
                    (
                        FaultAction::Quarantine {
                            until: now + backoff,
                        },
                        ContainAction::Quarantined,
                        backoff,
                    )
                };
                let replay = self.replay_string(identity, &class, now);
                self.incidents.push(IncidentReport {
                    at: now,
                    conn: identity,
                    class: class.clone(),
                    location,
                    strikes,
                    action: contain_action,
                    backoff,
                    replay,
                });
                if first_fault {
                    self.faulted += 1;
                    self.maybe_trip_fleet_breaker(now, identity, &class);
                }
                action
            }
        }
    }

    fn maybe_trip_fleet_breaker(&mut self, now: SimTime, identity: u64, class: &FaultClass) {
        if self.fleet_breaker_tripped
            || self.cfg.fleet_breaker_pct > 100
            || self.total < self.cfg.fleet_breaker_min_conns
        {
            return;
        }
        if self.faulted * 100 >= self.total * self.cfg.fleet_breaker_pct as usize {
            self.fleet_breaker_tripped = true;
            self.breaker_just_tripped = true;
            let replay = self.replay_string(identity, class, now);
            self.incidents.push(IncidentReport {
                at: now,
                conn: identity,
                class: class.clone(),
                location: None,
                strikes: 0,
                action: ContainAction::FleetBreakerTripped,
                backoff: 0,
                replay,
            });
        }
    }

    /// Consumes the breaker-trip edge (the engine flips the oracle once).
    pub fn take_breaker_trip(&mut self) -> bool {
        std::mem::take(&mut self.breaker_just_tripped)
    }

    /// The configured stall-watchdog period.
    pub fn stall_check_interval(&self) -> SimTime {
        self.cfg.stall_check_interval
    }

    /// Arms the stall watchdog for `conn`, snapshotting `data_acked` as
    /// the progress mark. Returns `false` when already armed (the engine
    /// schedules a check event only on a fresh arm).
    pub fn arm_watchdog(&mut self, conn: usize, data_acked: u64) -> bool {
        let Some(entry) = self.conns.get_mut(conn).and_then(|c| c.as_mut()) else {
            return false;
        };
        if entry.watchdog_armed {
            return false;
        }
        entry.watchdog_armed = true;
        entry.progress_mark = data_acked;
        true
    }

    /// One watchdog tick: returns `true` if `conn` made forward progress
    /// since the previous tick, and advances the mark either way.
    pub fn watchdog_progressed(&mut self, conn: usize, data_acked: u64) -> bool {
        let Some(entry) = self.conns.get_mut(conn).and_then(|c| c.as_mut()) else {
            return true;
        };
        let progressed = data_acked > entry.progress_mark;
        entry.progress_mark = data_acked;
        progressed
    }

    /// Retires the watchdog (transfer complete); the next data-arrival
    /// event re-arms it.
    pub fn disarm_watchdog(&mut self, conn: usize) {
        if let Some(entry) = self.conns.get_mut(conn).and_then(|c| c.as_mut()) {
            entry.watchdog_armed = false;
        }
    }

    /// Stores the parked original scheduler for `conn`.
    pub fn park(&mut self, conn: usize, parked: ParkedScheduler) {
        if let Some(entry) = self.conns.get_mut(conn).and_then(|c| c.as_mut()) {
            debug_assert!(entry.parked.is_none(), "double park");
            entry.parked = Some(parked);
        }
    }

    /// Handles the re-admission timer for `conn`: in `Quarantined` the
    /// parked scheduler is returned (state moves to `Probation`) and a
    /// `Readmitted` incident is emitted; in any other state (e.g. the
    /// connection was pinned while the timer was in flight) returns
    /// `None`.
    pub fn unpark(&mut self, now: SimTime, conn: usize) -> Option<ParkedScheduler> {
        let entry = self.conns.get_mut(conn).and_then(|c| c.as_mut())?;
        if entry.state != ContainState::Quarantined {
            return None;
        }
        let parked = entry.parked.take()?;
        entry.state = ContainState::Probation;
        let identity = entry.identity;
        let strikes = entry.strikes;
        let class = self
            .incidents
            .iter()
            .rev()
            .find(|i| i.conn == identity && i.action == ContainAction::Quarantined)
            .map(|i| i.class.clone())
            .unwrap_or(FaultClass::ProgressStall);
        let replay = self.replay_string(identity, &class, now);
        self.incidents.push(IncidentReport {
            at: now,
            conn: identity,
            class,
            location: None,
            strikes,
            action: ContainAction::Readmitted,
            backoff: 0,
            replay,
        });
        Some(parked)
    }
}

/// `u64::checked_shl` with saturation (backoff doubling must not wrap).
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if rhs >= self.leading_zeros() {
            u64::MAX
        } else {
            self << rhs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmp_core::PropStatus;

    fn sup(cfg: ContainmentConfig) -> Supervisor {
        let mut s = Supervisor::new(42, cfg);
        s.register(0, 0);
        s
    }

    fn budget_fault() -> FaultClass {
        FaultClass::StepBudget { budget: 5 }
    }

    #[test]
    fn fallback_compiles_once_and_proves_its_claims() {
        let p = fallback_program();
        assert!(Arc::ptr_eq(p, fallback_program()), "compiled once, shared");
        assert!(p.analyze().queues_popped.contains("RQ"));
        assert_eq!(
            p.property_certificate().work_conservation.status,
            PropStatus::Proved,
            "the safe default must be provably work-conserving: {}",
            p.property_certificate().work_conservation.detail
        );
    }

    #[test]
    fn classify_covers_every_exec_error() {
        assert_eq!(
            classify_exec_error(&ExecError::StepBudgetExhausted { budget: 9 }),
            FaultClass::StepBudget { budget: 9 }
        );
        assert!(matches!(
            classify_exec_error(&ExecError::MalformedBytecode {
                pc: 3,
                detail: "x".into()
            }),
            FaultClass::MalformedBytecode { pc: 3, .. }
        ));
        assert!(matches!(
            classify_exec_error(&ExecError::Trap {
                origin: "native",
                detail: "y".into()
            }),
            FaultClass::BackendTrap {
                origin: "native",
                ..
            }
        ));
    }

    #[test]
    fn strike_ladder_quarantines_then_pins() {
        let mut s = sup(ContainmentConfig {
            max_strikes: 3,
            ..ContainmentConfig::default()
        });
        assert_eq!(s.state(0), ContainState::Healthy);

        let a1 = s.on_fault(1_000, 0, budget_fault(), None);
        let until1 = match a1 {
            FaultAction::Quarantine { until } => until,
            other => panic!("first fault must quarantine, got {other:?}"),
        };
        assert!(until1 > 1_000);
        assert_eq!(s.state(0), ContainState::Quarantined);

        assert!(s.unpark(until1, 0).is_none(), "nothing parked yet");
        // (engine normally parks before the timer; emulate it)
        s.conns[0].as_mut().unwrap().parked = Some(ParkedScheduler {
            handle: SchedulerHandle::Native(Box::new(crate::native::NativeMinRtt)),
            prop_cert: None,
            pops_rq: true,
            step_budget: 7,
        });
        let parked = s.unpark(until1, 0).expect("re-admitted");
        assert_eq!(parked.step_budget, 7);
        assert_eq!(s.state(0), ContainState::Probation);

        let a2 = s.on_fault(until1 + 5, 0, budget_fault(), None);
        let until2 = match a2 {
            FaultAction::Quarantine { until } => until,
            other => panic!("probation fault must re-quarantine, got {other:?}"),
        };
        // Exponential: the second backoff window is at least the base
        // doubled (jitter only adds).
        assert!(until2 - (until1 + 5) >= 2 * s.cfg.base_backoff);
        s.conns[0].as_mut().unwrap().parked = Some(ParkedScheduler {
            handle: SchedulerHandle::Native(Box::new(crate::native::NativeMinRtt)),
            prop_cert: None,
            pops_rq: true,
            step_budget: 7,
        });
        s.unpark(until2, 0).expect("second probation");

        let a3 = s.on_fault(until2 + 5, 0, budget_fault(), None);
        assert_eq!(a3, FaultAction::Pin, "third strike trips the breaker");
        assert_eq!(s.state(0), ContainState::Pinned);
        assert!(
            s.unpark(until2 + 10_000_000, 0).is_none(),
            "pinned connections are never re-admitted"
        );

        let actions: Vec<ContainAction> = s.incidents.iter().map(|i| i.action).collect();
        assert_eq!(
            actions,
            vec![
                ContainAction::Quarantined,
                ContainAction::Readmitted,
                ContainAction::Quarantined,
                ContainAction::Readmitted,
                ContainAction::Pinned,
            ]
        );
        assert_eq!(s.quarantines(), 3);
    }

    #[test]
    fn fallback_faults_are_recorded_without_double_parking() {
        let mut s = sup(ContainmentConfig::default());
        s.on_fault(0, 0, budget_fault(), None);
        assert_eq!(s.state(0), ContainState::Quarantined);
        let again = s.on_fault(
            10,
            0,
            FaultClass::OracleViolation {
                invariant: "property-work-conservation",
            },
            None,
        );
        assert_eq!(again, FaultAction::Recorded);
        assert_eq!(s.state(0), ContainState::Quarantined, "state unchanged");
        assert_eq!(
            s.incidents.last().unwrap().action,
            ContainAction::FallbackFault
        );
    }

    #[test]
    fn backoff_is_deterministic_per_seed_and_identity() {
        let run = |seed: u64, identity: u64| {
            let mut s = Supervisor::new(seed, ContainmentConfig::default());
            s.register(3, identity);
            match s.on_fault(0, 3, budget_fault(), None) {
                FaultAction::Quarantine { until } => until,
                other => panic!("{other:?}"),
            }
        };
        assert_eq!(run(1, 9), run(1, 9), "pure function of (seed, identity)");
        assert_ne!(
            run(1, 9),
            run(2, 9),
            "different seeds draw different jitter"
        );
        // Identity — not the local index — keys the stream: the local
        // index differing must not matter.
        let mut a = Supervisor::new(7, ContainmentConfig::default());
        a.register(0, 11);
        let mut b = Supervisor::new(7, ContainmentConfig::default());
        b.register(5, 11);
        assert_eq!(
            a.on_fault(0, 0, budget_fault(), None),
            b.on_fault(0, 5, budget_fault(), None),
            "backoff keyed by identity, invariant under sharding"
        );
    }

    #[test]
    fn fleet_breaker_trips_at_the_configured_rate() {
        let mut s = Supervisor::new(
            5,
            ContainmentConfig {
                fleet_breaker_pct: 50,
                fleet_breaker_min_conns: 4,
                ..ContainmentConfig::default()
            },
        );
        for i in 0..4 {
            s.register(i, i as u64);
        }
        s.on_fault(0, 0, budget_fault(), None);
        assert!(!s.fleet_breaker_tripped, "1/4 < 50%");
        assert!(!s.take_breaker_trip());
        s.on_fault(1, 1, budget_fault(), None);
        assert!(s.fleet_breaker_tripped, "2/4 >= 50%");
        assert!(s.take_breaker_trip(), "edge fires once");
        assert!(!s.take_breaker_trip(), "and only once");
        // Repeated faults on already-faulted connections don't re-count.
        s.on_fault(2, 2, budget_fault(), None);
        assert_eq!(
            s.incidents
                .iter()
                .filter(|i| i.action == ContainAction::FleetBreakerTripped)
                .count(),
            1
        );
    }

    #[test]
    fn breaker_respects_min_conns_and_disable() {
        let mut small = Supervisor::new(5, ContainmentConfig::default());
        small.register(0, 0);
        small.on_fault(0, 0, budget_fault(), None);
        assert!(!small.fleet_breaker_tripped, "below min_conns");

        let mut off = Supervisor::new(
            5,
            ContainmentConfig {
                fleet_breaker_pct: 101,
                fleet_breaker_min_conns: 1,
                ..ContainmentConfig::default()
            },
        );
        for i in 0..8 {
            off.register(i, i as u64);
            off.on_fault(0, i, budget_fault(), None);
        }
        assert!(!off.fleet_breaker_tripped, "pct > 100 disables");
    }

    #[test]
    fn replay_strings_are_integer_only_and_seeded() {
        let mut s = sup(ContainmentConfig::default());
        s.on_fault(123, 0, budget_fault(), None);
        let inc = &s.incidents[0];
        assert_eq!(inc.replay, "seed=42 conn=0 class=step-budget at=123");
        assert!(inc.to_string().contains("quarantined"));
    }

    #[test]
    fn saturating_shl_saturates() {
        assert_eq!(1u64.saturating_shl(3), 8);
        assert_eq!(0u64.saturating_shl(63), 0);
        assert_eq!(u64::MAX.saturating_shl(1), u64::MAX);
        assert_eq!((1u64 << 62).saturating_shl(5), u64::MAX);
    }
}
