//! Runtime invariant oracle: checks conservation-of-data, acknowledgement
//! monotonicity, reorder-queue accounting, and eventual progress after
//! every simulated event.
//!
//! The oracle exists for the chaos tier (TESTING.md): fault plans drive
//! the simulator through blackouts, burst loss, jitter, window stalls and
//! churn, and the oracle asserts that the transport machinery never
//! corrupts data in the process. In panicking mode a violation aborts
//! with the replay label (seed) and the tail of the event log, so a
//! failing chaos run reproduces from its report alone; in collecting
//! mode violations accumulate for the conformance harness to diff and
//! shrink.
//!
//! ## Invariant catalogue
//!
//! * **conservation-delivery** — bytes delivered to the application
//!   exactly equal the in-order prefix (`delivered_total == expected`):
//!   no byte is delivered twice (duplicates from explicit reinjection are
//!   detected and discarded at the receiver), none is skipped.
//! * **conservation-stats** — the engine's delivery counter agrees with
//!   the receiver's ground truth.
//! * **conservation-bound** — the receiver never delivers bytes the
//!   application never enqueued.
//! * **ack-monotone** — the meta cumulative ack, the receiver's expected
//!   pointer, and every subflow cumulative ack only move forward.
//! * **ack-bound** — the sender's cumulative ack never runs ahead of
//!   what the receiver delivered, and subflow acks never pass the
//!   subflow's send counter.
//! * **reorder-accounting** — the incremental out-of-order byte counter
//!   equals a from-scratch recount of the reorder queues, and occupancy
//!   stays within the receive buffer (bounded reorder-queue occupancy).
//! * **queue-structure** — `Q`/`QU`/`RQ` hold only known, unacked,
//!   non-duplicate segments ([`Connection::queue_invariants`]).
//! * **step-bound** — no scheduler execution aborted on its certified
//!   step budget (admitted programs carry a verified worst-case bound;
//!   exceeding it would starve the connection).
//! * **property-work-conservation** — a program whose certificate
//!   *proves* work-conservation must emit at least one effective `PUSH`
//!   whenever it runs with a non-empty send queue and an established
//!   subflow ([`InvariantOracle::check_properties`]).
//! * **property-starvation** — every `PUSH` target id stays inside the
//!   certificate's statically derived allowed-id set.
//! * **property-redundancy-bound** — no packet is pushed more often in
//!   one execution than the certificate's closed-form duplication bound
//!   evaluated at the actual subflow count.
//! * **property-reinjection** — a program whose `POP` sites are all
//!   proved guarded never observes a `NULL` pop at runtime.
//! * **eventual-progress** — checked at quiescence: if the event queue
//!   drains while unacknowledged data remains, a live (established)
//!   subflow exists, and the scheduler never dropped a packet, the
//!   machinery lost data forever — a liveness violation. Exception:
//!   data stranded *only* in the reinjection queue under a scheduler
//!   whose static analysis shows it never pops `RQ` is an expected
//!   stall (the program simply has no reinjection logic), not a bug.

use crate::connection::Connection;
use crate::time::SimTime;
use progmp_core::env::PacketRef;
use progmp_core::verify::props::PropStatus;
use progmp_core::PropertyCertificate;
use std::collections::VecDeque;

/// How many trailing events the oracle keeps for violation reports.
const EVENT_LOG_CAP: usize = 48;

/// Cap on stored violations in collecting mode. A pathological scheduler
/// in a long fleet run can violate on every event; unbounded storage
/// would turn one bad connection into an OOM for the whole harness. The
/// buffer keeps the *latest* violations (the oldest are dropped and
/// counted in [`InvariantOracle::dropped_violations`]) because the most
/// recent ones carry the state closest to the final report.
pub const VIOLATION_CAP: usize = 256;

/// One detected invariant violation.
#[derive(Debug, Clone)]
pub struct OracleViolation {
    /// Simulation time of the violating event.
    pub at: SimTime,
    /// Connection the violation occurred on.
    pub conn: usize,
    /// Which invariant failed (catalogue name).
    pub invariant: &'static str,
    /// Human-readable detail with the offending values.
    pub detail: String,
}

impl std::fmt::Display for OracleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated on conn {} at t={}: {}",
            self.invariant, self.conn, self.at, self.detail
        )
    }
}

/// What one scheduler execution actually did, as far as the property
/// certificate's dynamic checks are concerned. The engine collects one
/// observation around every `execute_once` round (pre-state before the
/// run, actions and stats after) and hands it to
/// [`InvariantOracle::check_properties`].
#[derive(Debug, Clone, Default)]
pub struct PropObservation {
    /// Send queue was non-empty *before* the execution.
    pub pre_q_nonempty: bool,
    /// At least one established subflow existed *before* the execution.
    pub pre_subflows_nonempty: bool,
    /// At least one *available* subflow existed *before* the execution:
    /// not TSQ-throttled, not lossy, and with congestion-window room
    /// (`CWND > SKBS_IN_FLIGHT + QUEUED`, evaluated with the DSL's
    /// wrapping arithmetic). Mirrors the work-conservation analysis'
    /// availability precondition.
    pub pre_avail_subflow: bool,
    /// Effective pushes (both operands non-`NULL`) the execution emitted.
    pub pushes: u64,
    /// Pops that observed `NULL` (an empty queue view).
    pub null_pops: u64,
    /// `(subflow id, packet)` of every emitted `Push` action.
    pub push_targets: Vec<(u32, PacketRef)>,
    /// Established subflows visible to the execution.
    pub n_subflows: u64,
}

/// Per-connection high-water marks for monotonicity checks.
#[derive(Debug, Default, Clone)]
struct Marks {
    data_acked: u64,
    expected: u64,
    sbf_acked: Vec<u64>,
    scheduler_errors: u64,
}

/// The oracle itself; owned by the engine and consulted after each event.
#[derive(Debug)]
pub struct InvariantOracle {
    /// Replay label baked into panic messages (typically `seed N ...`).
    label: String,
    /// Panic on the first violation (true) or collect (false).
    panic_on_violation: bool,
    /// Whether the engine should feed the per-event replay log. On by
    /// default; fleet-scale runs in collect mode turn it off because
    /// formatting every event dominates the simulation itself.
    pub log_events: bool,
    /// Violations found so far (collecting mode), capped at
    /// [`VIOLATION_CAP`]; see [`InvariantOracle::dropped_violations`].
    pub violations: Vec<OracleViolation>,
    /// Violations evicted from the bounded buffer once it filled up.
    pub dropped_violations: u64,
    /// When true (set by the containment supervisor), scheduler-fault
    /// invariants — the `property-*` family, `eventual-progress`, and
    /// `step-bound` — are *routed* instead of reported: recorded in the
    /// bounded violation buffer and queued as pending faults for the
    /// engine to quarantine, never panicking even in panicking mode.
    /// Transport-machinery invariants (conservation, acks, reorder,
    /// queue structure) are unaffected: the fallback scheduler cannot
    /// repair an engine bug, so those still abort.
    pub contain_scheduler_faults: bool,
    pending_faults: Vec<(usize, &'static str)>,
    log: VecDeque<String>,
    marks: Vec<Marks>,
}

impl InvariantOracle {
    /// Creates an oracle. `label` should identify the replay (seed,
    /// scenario); `panic_on_violation` selects abort-vs-collect.
    pub fn new(label: impl Into<String>, panic_on_violation: bool) -> Self {
        InvariantOracle {
            label: label.into(),
            panic_on_violation,
            log_events: true,
            violations: Vec::new(),
            dropped_violations: 0,
            contain_scheduler_faults: false,
            pending_faults: Vec::new(),
            log: VecDeque::new(),
            marks: Vec::new(),
        }
    }

    /// Switches abort-vs-collect at runtime (the fleet-level circuit
    /// breaker flips a panicking oracle to collect mode so one bad
    /// cohort cannot take down the whole fleet run).
    pub fn set_panic_on_violation(&mut self, panic_on_violation: bool) {
        self.panic_on_violation = panic_on_violation;
    }

    /// Drains the scheduler faults queued while
    /// [`InvariantOracle::contain_scheduler_faults`] routing was active:
    /// `(connection, invariant)` pairs for the engine to quarantine.
    pub fn take_pending_faults(&mut self) -> Vec<(usize, &'static str)> {
        std::mem::take(&mut self.pending_faults)
    }

    /// Appends one event description to the bounded replay log.
    pub fn log_event(&mut self, desc: String) {
        if self.log.len() == EVENT_LOG_CAP {
            self.log.pop_front();
        }
        self.log.push_back(desc);
    }

    /// The trailing event log, oldest first.
    pub fn event_log(&self) -> impl Iterator<Item = &str> {
        self.log.iter().map(String::as_str)
    }

    fn report(&mut self, v: OracleViolation) {
        if self.panic_on_violation {
            let mut msg = format!(
                "[invariant oracle] {v}\nreplay: {}\nevent log (oldest first):\n",
                self.label
            );
            for line in &self.log {
                msg.push_str("  ");
                msg.push_str(line);
                msg.push('\n');
            }
            panic!("{msg}");
        }
        self.store(v);
    }

    /// Appends to the bounded violation buffer, evicting the oldest entry
    /// (and counting it) once [`VIOLATION_CAP`] is reached.
    fn store(&mut self, v: OracleViolation) {
        if self.violations.len() == VIOLATION_CAP {
            self.violations.remove(0);
            self.dropped_violations += 1;
        }
        self.violations.push(v);
    }

    /// Reports a *scheduler-fault* invariant: under containment routing
    /// the violation is stored (never panics) and queued for the engine
    /// to quarantine; otherwise it goes through [`Self::report`] as usual.
    fn report_scheduler_fault(&mut self, v: OracleViolation) {
        if self.contain_scheduler_faults {
            self.pending_faults.push((v.conn, v.invariant));
            self.store(v);
        } else {
            self.report(v);
        }
    }

    /// Checks every per-event invariant on `conn` at time `now`.
    pub fn check(&mut self, now: SimTime, conn: &Connection) {
        if self.marks.len() <= conn.id {
            self.marks.resize(conn.id + 1, Marks::default());
        }
        let marks = &mut self.marks[conn.id];
        marks.sbf_acked.resize(conn.subflows.len(), 0);

        let mut bad: Vec<(&'static str, String)> = Vec::new();
        let delivered = conn.receiver.delivered_total;
        let expected = conn.receiver.expected();

        if delivered != expected {
            bad.push((
                "conservation-delivery",
                format!("delivered_total {delivered} != expected {expected} (a byte was delivered twice or skipped)"),
            ));
        }
        if conn.stats.delivered_bytes != delivered {
            bad.push((
                "conservation-stats",
                format!(
                    "stats.delivered_bytes {} != receiver.delivered_total {delivered}",
                    conn.stats.delivered_bytes
                ),
            ));
        }
        if expected > conn.enqueued_bytes() {
            bad.push((
                "conservation-bound",
                format!(
                    "receiver expected {expected} > enqueued {} (bytes invented)",
                    conn.enqueued_bytes()
                ),
            ));
        }
        if conn.data_acked < marks.data_acked {
            bad.push((
                "ack-monotone",
                format!(
                    "meta data_acked moved backwards: {} -> {}",
                    marks.data_acked, conn.data_acked
                ),
            ));
        }
        if expected < marks.expected {
            bad.push((
                "ack-monotone",
                format!(
                    "receiver expected moved backwards: {} -> {expected}",
                    marks.expected
                ),
            ));
        }
        if conn.data_acked > expected {
            bad.push((
                "ack-bound",
                format!(
                    "data_acked {} > receiver expected {expected}",
                    conn.data_acked
                ),
            ));
        }
        for (i, sbf) in conn.subflows.iter().enumerate() {
            if sbf.acked_seq < marks.sbf_acked[i] {
                bad.push((
                    "ack-monotone",
                    format!(
                        "subflow {i} acked_seq moved backwards: {} -> {}",
                        marks.sbf_acked[i], sbf.acked_seq
                    ),
                ));
            }
            if sbf.acked_seq > sbf.next_seq {
                bad.push((
                    "ack-bound",
                    format!(
                        "subflow {i} acked_seq {} > next_seq {} (acked the unsent)",
                        sbf.acked_seq, sbf.next_seq
                    ),
                ));
            }
        }
        let ooo = conn.receiver.ooo_bytes();
        let recount = conn.receiver.ooo_recount();
        if ooo != recount {
            bad.push((
                "reorder-accounting",
                format!("incremental ooo_bytes {ooo} != recount {recount}"),
            ));
        }
        if ooo > conn.receiver.buf_cap() {
            bad.push((
                "reorder-accounting",
                format!(
                    "reorder occupancy {ooo} exceeds receive buffer {}",
                    conn.receiver.buf_cap()
                ),
            ));
        }
        if let Err(detail) = conn.queue_invariants() {
            bad.push(("queue-structure", detail));
        }
        // Delta-based so each aborted execution is reported once, not on
        // every subsequent event. Skipped entirely under containment:
        // the supervisor's exec-error boundary already converted the
        // abort into a structured fault, and reporting it here as well
        // would charge the connection a second strike for one incident.
        if conn.stats.scheduler_errors > marks.scheduler_errors && !self.contain_scheduler_faults {
            bad.push((
                "step-bound",
                format!(
                    "{} scheduler execution(s) aborted on the certified step budget",
                    conn.stats.scheduler_errors
                ),
            ));
        }

        marks.data_acked = conn.data_acked;
        marks.expected = expected;
        marks.scheduler_errors = conn.stats.scheduler_errors;
        for (i, sbf) in conn.subflows.iter().enumerate() {
            marks.sbf_acked[i] = sbf.acked_seq;
        }

        for (invariant, detail) in bad {
            self.report(OracleViolation {
                at: now,
                conn: conn.id,
                invariant,
                detail,
            });
        }
    }

    /// Checks one scheduler execution against the statically derived
    /// property certificate: every dynamic check enforces a claim the
    /// verifier *proved* (or a bound it certified), so any violation here
    /// is an analysis soundness bug, not a scheduler bug.
    pub fn check_properties(
        &mut self,
        now: SimTime,
        conn: usize,
        cert: &PropertyCertificate,
        obs: &PropObservation,
    ) {
        let mut bad: Vec<(&'static str, String)> = Vec::new();
        if cert.work_conservation.status == PropStatus::Proved
            && obs.pre_q_nonempty
            && obs.pre_subflows_nonempty
            && obs.pre_avail_subflow
            && obs.pushes == 0
        {
            bad.push((
                "property-work-conservation",
                "proved work-conserving, yet an execution with a non-empty send queue \
                 and an available subflow pushed nothing"
                    .to_string(),
            ));
        }
        for &(sbf, _) in &obs.push_targets {
            if !cert.allowed_ids.contains(i64::from(sbf)) {
                bad.push((
                    "property-starvation",
                    format!(
                        "PUSH targeted subflow id {sbf}, outside the statically derived \
                         allowed set {}",
                        cert.allowed_ids.render()
                    ),
                ));
            }
        }
        if !obs.push_targets.is_empty() {
            let cap = cert.dup_bound.eval(obs.n_subflows);
            let mut counts: Vec<(PacketRef, u64)> = Vec::new();
            for &(_, pkt) in &obs.push_targets {
                match counts.iter_mut().find(|(p, _)| *p == pkt) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((pkt, 1)),
                }
            }
            for (pkt, c) in counts {
                if c > cap {
                    bad.push((
                        "property-redundancy-bound",
                        format!(
                            "packet {} was pushed {c} times in one execution; the \
                             certificate bounds it by {} = {cap} at n={}",
                            pkt.0,
                            cert.dup_bound.render(),
                            obs.n_subflows
                        ),
                    ));
                }
            }
        }
        if cert.pops_fully_guarded && obs.null_pops > 0 {
            bad.push((
                "property-reinjection",
                format!(
                    "{} POP(s) observed an empty queue view although every POP site \
                     was proved guarded",
                    obs.null_pops
                ),
            ));
        }
        for (invariant, detail) in bad {
            self.report_scheduler_fault(OracleViolation {
                at: now,
                conn,
                invariant,
                detail,
            });
        }
    }

    /// Liveness check run when the event queue drains: with unacked data,
    /// at least one live subflow, and no scheduler-sanctioned drops, the
    /// simulation must not be quiescent.
    pub fn check_quiescent(&mut self, now: SimTime, conn: &Connection) {
        use progmp_core::env::{QueueKind, SchedulerEnv};
        let live = conn.subflows.iter().any(|s| s.established);
        if !conn.all_acked() && live && conn.stats.scheduler_drops == 0 {
            // Data stranded exclusively in the reinjection queue is
            // reachable only through `RQ.POP()`; a scheduler that
            // provably never pops RQ (Fig. 3's minimal example) stalls
            // there by design, not by an engine bug.
            let rq_only_strand = conn.queue(QueueKind::SendQueue).is_empty()
                && !conn.queue(QueueKind::Reinject).is_empty();
            if rq_only_strand && !conn.pops_rq {
                return;
            }
            let detail = format!(
                "event queue drained with {} of {} bytes unacked, {} live subflow(s), no DROPs",
                conn.enqueued_bytes() - conn.data_acked,
                conn.enqueued_bytes(),
                conn.subflows.iter().filter(|s| s.established).count()
            );
            self.report_scheduler_fault(OracleViolation {
                at: now,
                conn: conn.id,
                invariant: "eventual-progress",
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::CcAlgo;
    use crate::connection::SchedulerHandle;
    use crate::path::{Path, PathConfig};
    use crate::receiver::{Receiver, ReceiverMode};
    use crate::subflow::Subflow;
    use crate::time::from_millis;
    use progmp_core::env::SubflowId;

    fn conn() -> Connection {
        let subflows = vec![Subflow::new(
            SubflowId(0),
            Path::new(&PathConfig::symmetric(from_millis(10), 1_250_000)),
            1400,
        )];
        let receiver = Receiver::new(ReceiverMode::Improved, 1, 1 << 20);
        Connection::new(
            0,
            subflows,
            receiver,
            SchedulerHandle::Native(Box::new(crate::native::NativeMinRtt)),
            CcAlgo::Reno,
            1400,
            1 << 20,
        )
    }

    #[test]
    fn clean_connection_passes_all_checks() {
        let mut oracle = InvariantOracle::new("unit", true);
        let c = conn();
        oracle.check(0, &c);
    }

    #[test]
    fn double_delivery_is_caught() {
        let mut oracle = InvariantOracle::new("unit", false);
        let mut c = conn();
        c.enqueue_data(1400, 0, 0);
        c.receiver.inject_double_delivery_bug();
        let p = progmp_core::env::PacketRef(1);
        c.receiver.on_arrival(0, 0, 0, p, 1400);
        c.stats.delivered_bytes = c.receiver.delivered_total;
        oracle.check(1, &c);
        assert!(oracle.violations.is_empty(), "first copy is legitimate");
        c.receiver.on_arrival(0, 1, 0, p, 1400);
        c.stats.delivered_bytes = c.receiver.delivered_total;
        oracle.check(2, &c);
        assert!(
            oracle
                .violations
                .iter()
                .any(|v| v.invariant == "conservation-delivery"),
            "duplicate delivery must violate conservation: {:?}",
            oracle.violations
        );
    }

    #[test]
    fn backwards_ack_is_caught() {
        let mut oracle = InvariantOracle::new("unit", false);
        let mut c = conn();
        c.enqueue_data(2800, 0, 0);
        c.receiver
            .on_arrival(0, 0, 0, progmp_core::env::PacketRef(1), 1400);
        c.stats.delivered_bytes = 1400;
        c.meta_ack(1400);
        oracle.check(0, &c);
        assert!(oracle.violations.is_empty());
        c.data_acked = 0; // corrupt: cumulative ack regresses
        oracle.check(1, &c);
        assert!(oracle
            .violations
            .iter()
            .any(|v| v.invariant == "ack-monotone"));
    }

    #[test]
    fn quiescent_stall_is_caught_and_drop_exempts() {
        let mut oracle = InvariantOracle::new("unit", false);
        let mut c = conn();
        c.enqueue_data(1400, 0, 0);
        c.subflows[0].established = true;
        oracle.check_quiescent(5, &c);
        assert!(
            oracle
                .violations
                .iter()
                .any(|v| v.invariant == "eventual-progress"),
            "stranded data with a live subflow is a liveness violation"
        );
        // An explicit scheduler DROP makes the loss sanctioned.
        oracle.violations.clear();
        c.stats.scheduler_drops = 1;
        oracle.check_quiescent(6, &c);
        assert!(oracle.violations.is_empty());
    }

    #[test]
    fn rq_only_strand_is_exempt_for_non_reinjecting_schedulers() {
        use progmp_core::env::{Action, SchedulerEnv, NUM_REGISTERS};
        let mut oracle = InvariantOracle::new("unit", false);
        let mut c = conn();
        let pkts = c.enqueue_data(1400, 0, 0);
        // Move the segment Q -> QU (a scheduler PUSH), then into RQ
        // (suspected lost) — the post-fault state of a non-reinjecting
        // scheduler.
        c.apply(
            &[0i64; NUM_REGISTERS],
            &[Action::Push {
                subflow: SubflowId(0),
                packet: pkts[0],
            }],
        );
        c.reinject(pkts[0]);
        c.pops_rq = false;
        oracle.check_quiescent(5, &c);
        assert!(
            oracle.violations.is_empty(),
            "a scheduler with no RQ logic cannot be blamed for an RQ strand: {:?}",
            oracle.violations
        );
        // The same strand under an RQ-capable scheduler is a violation.
        c.pops_rq = true;
        oracle.check_quiescent(6, &c);
        assert!(oracle
            .violations
            .iter()
            .any(|v| v.invariant == "eventual-progress"));
    }

    #[test]
    fn property_checks_enforce_the_certificate() {
        // A certificate proving everything: wc proved, all ids allowed,
        // dup bound 1, pops fully guarded.
        let cert = progmp_core::compile(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        )
        .unwrap()
        .property_certificate()
        .clone();
        assert_eq!(
            cert.work_conservation.status,
            progmp_core::PropStatus::Proved
        );
        let mut oracle = InvariantOracle::new("unit", false);
        // A conforming observation passes.
        let ok = PropObservation {
            pre_q_nonempty: true,
            pre_subflows_nonempty: true,
            pre_avail_subflow: true,
            pushes: 1,
            null_pops: 0,
            push_targets: vec![(0, PacketRef(7))],
            n_subflows: 2,
        };
        oracle.check_properties(1, 0, &cert, &ok);
        assert!(oracle.violations.is_empty(), "{:?}", oracle.violations);
        // No push despite the precondition: work-conservation violated.
        let silent = PropObservation {
            pushes: 0,
            push_targets: vec![],
            ..ok.clone()
        };
        oracle.check_properties(2, 0, &cert, &silent);
        // The same packet pushed twice busts the dup bound of 1.
        let dup = PropObservation {
            pushes: 2,
            push_targets: vec![(0, PacketRef(7)), (1, PacketRef(7))],
            ..ok.clone()
        };
        oracle.check_properties(3, 0, &cert, &dup);
        // A NULL pop under a fully-guarded certificate.
        let nullpop = PropObservation {
            null_pops: 1,
            ..ok.clone()
        };
        oracle.check_properties(4, 0, &cert, &nullpop);
        let names: Vec<&str> = oracle.violations.iter().map(|v| v.invariant).collect();
        assert_eq!(
            names,
            vec![
                "property-work-conservation",
                "property-redundancy-bound",
                "property-reinjection"
            ],
            "{:?}",
            oracle.violations
        );

        // A starver certificate restricts the allowed target ids.
        let starver = progmp_core::compile(
            "VAR fast = SUBFLOWS.FILTER(sbf => sbf.ID == 0).MIN(sbf => sbf.RTT);\n\
             IF (fast != NULL AND !Q.EMPTY) { fast.PUSH(Q.POP()); }",
        )
        .unwrap()
        .property_certificate()
        .clone();
        oracle.violations.clear();
        let stray = PropObservation {
            push_targets: vec![(3, PacketRef(9))],
            ..ok
        };
        oracle.check_properties(5, 0, &starver, &stray);
        assert!(
            oracle
                .violations
                .iter()
                .any(|v| v.invariant == "property-starvation"),
            "{:?}",
            oracle.violations
        );
    }

    #[test]
    fn violation_buffer_is_bounded_and_counts_drops() {
        let mut oracle = InvariantOracle::new("unit", false);
        for i in 0..(VIOLATION_CAP as u64 + 10) {
            oracle.store(OracleViolation {
                at: i,
                conn: 0,
                invariant: "step-bound",
                detail: String::new(),
            });
        }
        assert_eq!(oracle.violations.len(), VIOLATION_CAP);
        assert_eq!(oracle.dropped_violations, 10);
        // Keep-latest: the survivors are the most recent ones.
        assert_eq!(oracle.violations[0].at, 10);
        assert_eq!(
            oracle.violations.last().unwrap().at,
            VIOLATION_CAP as u64 + 9
        );
    }

    #[test]
    fn step_bound_fires_once_per_new_error_and_is_skipped_under_containment() {
        let mut oracle = InvariantOracle::new("unit", false);
        let mut c = conn();
        c.stats.scheduler_errors = 1;
        oracle.check(1, &c);
        oracle.check(2, &c);
        assert_eq!(
            oracle
                .violations
                .iter()
                .filter(|v| v.invariant == "step-bound")
                .count(),
            1,
            "delta-based: one violation per new error, not per event: {:?}",
            oracle.violations
        );
        c.stats.scheduler_errors = 2;
        oracle.check(3, &c);
        assert_eq!(oracle.violations.len(), 2);

        // Under containment routing the exec-error boundary owns the
        // fault; the oracle stays silent.
        let mut contained = InvariantOracle::new("unit", true);
        contained.contain_scheduler_faults = true;
        contained.check(1, &c); // would panic without the skip
        assert!(contained.violations.is_empty());
        assert!(contained.take_pending_faults().is_empty());
    }

    #[test]
    fn containment_routing_queues_scheduler_faults_instead_of_panicking() {
        let cert = progmp_core::compile(
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }",
        )
        .unwrap()
        .property_certificate()
        .clone();
        let mut oracle = InvariantOracle::new("unit", true); // panicking mode
        oracle.contain_scheduler_faults = true;
        let silent = PropObservation {
            pre_q_nonempty: true,
            pre_subflows_nonempty: true,
            pre_avail_subflow: true,
            pushes: 0,
            null_pops: 0,
            push_targets: vec![],
            n_subflows: 2,
        };
        oracle.check_properties(1, 3, &cert, &silent);
        assert_eq!(
            oracle.take_pending_faults(),
            vec![(3, "property-work-conservation")]
        );
        assert!(oracle.take_pending_faults().is_empty(), "drained");
        assert_eq!(oracle.violations.len(), 1, "still recorded for reports");

        // eventual-progress routes the same way.
        let mut c = conn();
        c.enqueue_data(1400, 0, 0);
        c.subflows[0].established = true;
        oracle.check_quiescent(5, &c);
        assert_eq!(oracle.take_pending_faults(), vec![(0, "eventual-progress")]);

        // Transport-machinery invariants are NOT contained: a
        // conservation bug still panics in panicking mode.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = conn();
            c.receiver.inject_double_delivery_bug();
            let p = progmp_core::env::PacketRef(1);
            c.enqueue_data(1400, 0, 0);
            c.receiver.on_arrival(0, 0, 0, p, 1400);
            c.receiver.on_arrival(0, 1, 0, p, 1400);
            c.stats.delivered_bytes = c.receiver.delivered_total;
            oracle.check(7, &c);
        }));
        assert!(result.is_err(), "engine bugs must still abort");
    }

    #[test]
    #[should_panic(expected = "conservation-delivery")]
    fn panicking_mode_aborts_with_replay_label() {
        let mut oracle = InvariantOracle::new("seed 42", true);
        let mut c = conn();
        c.receiver.inject_double_delivery_bug();
        let p = progmp_core::env::PacketRef(1);
        c.enqueue_data(1400, 0, 0);
        c.receiver.on_arrival(0, 0, 0, p, 1400);
        c.receiver.on_arrival(0, 1, 0, p, 1400);
        c.stats.delivered_bytes = c.receiver.delivered_total;
        oracle.check(0, &c);
    }
}
