//! Page-load execution over the MPTCP simulator and the derived metrics
//! of paper Fig. 14.
//!
//! Models the Nghttp2-based MPTCP-aware web server of §5.5: the server
//! annotates each packet with the content class of the HTTP data it
//! carries (through the per-packet property channel of the extended API)
//! and signals the initial-page byte count through a scheduler register.
//! A legacy (unaware) server sends the same bytes without annotations.

use crate::page::Page;
use mptcp_sim::time::{from_millis, SimTime, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::CompileError;

/// Two-path WiFi/LTE client profile for page loads.
#[derive(Debug, Clone)]
pub struct WifiLteProfile {
    /// WiFi round-trip time.
    pub wifi_rtt: SimTime,
    /// WiFi rate (bytes/s).
    pub wifi_rate: u64,
    /// LTE round-trip time.
    pub lte_rtt: SimTime,
    /// LTE rate (bytes/s).
    pub lte_rate: u64,
    /// Whether LTE is flagged non-preferred (`COST = 1`) for
    /// preference-aware schedulers.
    pub lte_metered: bool,
}

impl Default for WifiLteProfile {
    fn default() -> Self {
        WifiLteProfile {
            wifi_rtt: from_millis(20),
            wifi_rate: 2_500_000, // 20 Mbit/s
            lte_rtt: from_millis(60),
            lte_rate: 2_500_000,
            lte_metered: true,
        }
    }
}

/// Result of one simulated page load.
#[derive(Debug, Clone)]
pub struct PageLoadResult {
    /// When all dependency-head bytes were delivered — the time at which
    /// third-party requests can be issued.
    pub dependency_resolved: SimTime,
    /// When the initial view was complete: all initial bytes delivered
    /// *and* third-party content arrived.
    pub initial_page_time: SimTime,
    /// When the full page (including post-initial content) was delivered.
    pub full_load_time: SimTime,
    /// Bytes transmitted on the WiFi subflow.
    pub wifi_bytes: u64,
    /// Bytes transmitted on the (metered) LTE subflow.
    pub lte_bytes: u64,
    /// Total transmitted bytes (including retransmissions).
    pub total_tx_bytes: u64,
}

/// Whether the web server annotates packets with content classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// MPTCP-aware server (per-packet content-class annotations + initial
    /// page size in a register).
    Aware,
    /// Legacy server: no annotations (every packet reads property 0).
    Legacy,
}

/// Simulates loading `page` over a two-path connection running
/// `scheduler_source`, returning the Fig. 14 metrics.
///
/// # Errors
///
/// Returns a [`CompileError`] when the scheduler source does not compile.
pub fn run_page_load(
    page: &Page,
    profile: &WifiLteProfile,
    scheduler_source: &str,
    server: ServerMode,
    seed: u64,
) -> Result<PageLoadResult, CompileError> {
    let mut sim = Sim::new(seed);
    let mut lte = SubflowConfig::new(PathConfig::symmetric(profile.lte_rtt, profile.lte_rate));
    if profile.lte_metered {
        lte = lte.with_cost(1);
    }
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(profile.wifi_rtt, profile.wifi_rate)),
            lte,
        ],
        SchedulerSpec::dsl(scheduler_source),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg)?;

    // The client's request reaches the server after half a WiFi RTT; the
    // server then streams the page objects in order, annotating packets
    // when aware.
    let request_arrival = profile.wifi_rtt / 2;
    let mut t = request_arrival;
    for obj in &page.objects {
        let prop = match server {
            ServerMode::Aware => obj.class.prop(),
            ServerMode::Legacy => 0,
        };
        sim.app_send_at(conn, t, obj.size, prop);
        // Objects become available to the server application back to
        // back; a microsecond of spacing keeps enqueue order stable.
        t += 1_000;
    }

    sim.run_to_completion(120 * SECONDS);
    let c = &sim.connections[conn];

    let head = page.head_boundary();
    let initial = page.initial_boundary();
    let total = page.total_bytes();
    let dependency_resolved = c.stats.delivery_time_of(head).unwrap_or(u64::MAX);
    let initial_delivered = c.stats.delivery_time_of(initial).unwrap_or(u64::MAX);
    let full_load_time = c.stats.delivery_time_of(total).unwrap_or(u64::MAX);
    let third_party_done = dependency_resolved.saturating_add(page.third_party_latency);
    Ok(PageLoadResult {
        dependency_resolved,
        initial_page_time: initial_delivered.max(third_party_done),
        full_load_time,
        wifi_bytes: c.stats.subflows[0].tx_bytes,
        lte_bytes: c.stats.subflows[1].tx_bytes,
        total_tx_bytes: c.stats.tx_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmp_schedulers::{DEFAULT_MIN_RTT, HTTP2_AWARE};

    fn profile_with_rtt_ratio(ratio: u64) -> WifiLteProfile {
        WifiLteProfile {
            wifi_rtt: from_millis(20 * ratio),
            ..Default::default()
        }
    }

    #[test]
    fn page_load_completes_with_both_schedulers() {
        let page = Page::amazon_like();
        for sched in [DEFAULT_MIN_RTT, HTTP2_AWARE] {
            let r = run_page_load(
                &page,
                &WifiLteProfile::default(),
                sched,
                ServerMode::Aware,
                1,
            )
            .unwrap();
            assert!(r.full_load_time < 120 * SECONDS, "page finished loading");
            assert!(r.dependency_resolved <= r.initial_page_time);
            assert!(r.initial_page_time <= r.full_load_time.max(r.initial_page_time));
        }
    }

    #[test]
    fn aware_scheduler_saves_metered_lte_bytes() {
        let page = Page::amazon_like();
        let profile = WifiLteProfile::default();
        let unaware =
            run_page_load(&page, &profile, DEFAULT_MIN_RTT, ServerMode::Legacy, 1).unwrap();
        let aware = run_page_load(&page, &profile, HTTP2_AWARE, ServerMode::Aware, 1).unwrap();
        assert!(
            aware.lte_bytes < unaware.lte_bytes / 2,
            "preference-aware post-initial scheduling cuts LTE usage: aware={} unaware={}",
            aware.lte_bytes,
            unaware.lte_bytes
        );
    }

    #[test]
    fn aware_scheduler_resolves_dependencies_earlier_under_rtt_skew() {
        // With WiFi degraded to a high RTT... the head data must avoid the
        // *slow* path. Invert the profile: WiFi fast, LTE slow, but give
        // minRTT a reason to spread: large initial cwnd exhaustion. Use a
        // strong skew so head packets on LTE visibly delay resolution.
        let page = Page::amazon_like();
        let profile = profile_with_rtt_ratio(1);
        let unaware =
            run_page_load(&page, &profile, DEFAULT_MIN_RTT, ServerMode::Legacy, 3).unwrap();
        let aware = run_page_load(&page, &profile, HTTP2_AWARE, ServerMode::Aware, 3).unwrap();
        assert!(
            aware.dependency_resolved <= unaware.dependency_resolved + from_millis(5),
            "aware dependency resolution is not worse: aware={} unaware={}",
            aware.dependency_resolved,
            unaware.dependency_resolved
        );
    }
}

#[cfg(test)]
mod news_tests {
    use super::*;
    use crate::page::Page;
    use progmp_schedulers::{DEFAULT_MIN_RTT, HTTP2_AWARE};

    #[test]
    fn news_page_benefits_even_more_from_awareness() {
        // The heavier 3PC latency makes early dependency resolution more
        // valuable, and the bigger post-initial tail makes the metered
        // saving larger in absolute bytes.
        let page = Page::news_like();
        let profile = WifiLteProfile::default();
        let unaware =
            run_page_load(&page, &profile, DEFAULT_MIN_RTT, ServerMode::Legacy, 5).unwrap();
        let aware = run_page_load(&page, &profile, HTTP2_AWARE, ServerMode::Aware, 5).unwrap();
        assert!(aware.dependency_resolved <= unaware.dependency_resolved + from_millis(5));
        assert!(aware.lte_bytes < unaware.lte_bytes / 2);
        assert!(aware.full_load_time < 60 * SECONDS);
    }
}
