//! Web-page model: objects, content classes, and dependency structure.
//!
//! Models the page anatomy of paper §5.5 (Fig. 14 right): an HTML head
//! whose bytes carry the references to third-party content (3PC), the
//! remaining content needed for the initial view, and additional content
//! (e.g. below-the-fold images) that does not affect the initial page.
//! "One fourth of the Alexa-200 pages have 3PC dependencies on their
//! critical path"; the example page follows the paper's amazon.com-like
//! layout where more than half of the data is post-initial.

/// Content classification used for per-packet scheduling annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContentClass {
    /// Head data carrying external-dependency information (annotated as
    /// packet property 1): its delivery time gates 3PC requests.
    DependencyHead,
    /// Content required to render the initial view (property 2).
    InitialView,
    /// Content not required for the initial view (property 3) — the
    /// preference-aware class.
    PostInitial,
}

impl ContentClass {
    /// The packet-property value the MPTCP-aware web server annotates
    /// packets of this class with.
    pub fn prop(self) -> u32 {
        match self {
            ContentClass::DependencyHead => 1,
            ContentClass::InitialView => 2,
            ContentClass::PostInitial => 3,
        }
    }
}

/// One object of a page, sent in declaration order.
#[derive(Debug, Clone)]
pub struct PageObject {
    /// Diagnostic name.
    pub name: String,
    /// Transfer size in bytes.
    pub size: u64,
    /// Content class.
    pub class: ContentClass,
}

/// A web page: an ordered list of objects plus third-party dependencies
/// discovered from the head data.
#[derive(Debug, Clone)]
pub struct Page {
    /// Objects in server send order.
    pub objects: Vec<PageObject>,
    /// Extra latency (ns) for fetching third-party content once the head
    /// data is parsed (DNS + connect + transfer on the 3PC server).
    pub third_party_latency: u64,
}

impl Page {
    /// Total bytes of a content class.
    pub fn class_bytes(&self, class: ContentClass) -> u64 {
        self.objects
            .iter()
            .filter(|o| o.class == class)
            .map(|o| o.size)
            .sum()
    }

    /// Total page bytes.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Byte offset (in send order) at which all `DependencyHead` data has
    /// been sent — the dependency-resolution boundary.
    pub fn head_boundary(&self) -> u64 {
        let mut offset = 0;
        let mut boundary = 0;
        for o in &self.objects {
            offset += o.size;
            if o.class == ContentClass::DependencyHead {
                boundary = offset;
            }
        }
        boundary
    }

    /// Byte offset after which only `PostInitial` content remains.
    pub fn initial_boundary(&self) -> u64 {
        let mut offset = 0;
        let mut boundary = 0;
        for o in &self.objects {
            offset += o.size;
            if o.class != ContentClass::PostInitial {
                boundary = offset;
            }
        }
        boundary
    }

    /// The paper's example page, "inspired by major optimized web pages,
    /// such as amazon.com": optimized HTML head with dependency info
    /// first, CSS/JS and above-the-fold images next, and more than half
    /// of the bytes (below-the-fold images) after the initial page.
    pub fn amazon_like() -> Page {
        Page {
            objects: vec![
                PageObject {
                    name: "html-head".into(),
                    // Dependency references live in the first kilobytes of
                    // the optimized HTML: small enough to fit the initial
                    // window of a single fast subflow.
                    size: 12_000,
                    class: ContentClass::DependencyHead,
                },
                PageObject {
                    name: "critical-css".into(),
                    size: 45_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "app-js".into(),
                    size: 160_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "hero-image".into(),
                    size: 120_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "belowfold-images".into(),
                    size: 430_000,
                    class: ContentClass::PostInitial,
                },
                PageObject {
                    name: "prefetch-assets".into(),
                    size: 90_000,
                    class: ContentClass::PostInitial,
                },
            ],
            third_party_latency: 120 * 1_000_000, // 120 ms
        }
    }
}

impl Page {
    /// A news-site-like page: heavier third-party dependency chain (ads,
    /// analytics, CDNs) and a larger post-initial tail — the "one fourth
    /// of the Alexa-200 pages have 3PC dependencies on their critical
    /// path" profile.
    pub fn news_like() -> Page {
        Page {
            objects: vec![
                PageObject {
                    name: "html-head".into(),
                    size: 8_000,
                    class: ContentClass::DependencyHead,
                },
                PageObject {
                    name: "consent-js".into(),
                    size: 6_000,
                    class: ContentClass::DependencyHead,
                },
                PageObject {
                    name: "layout-css".into(),
                    size: 60_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "article-text".into(),
                    size: 40_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "top-image".into(),
                    size: 180_000,
                    class: ContentClass::InitialView,
                },
                PageObject {
                    name: "gallery".into(),
                    size: 700_000,
                    class: ContentClass::PostInitial,
                },
                PageObject {
                    name: "recommendations".into(),
                    size: 250_000,
                    class: ContentClass::PostInitial,
                },
            ],
            third_party_latency: 250 * 1_000_000, // slow ad exchange: 250 ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amazon_like_page_is_mostly_post_initial() {
        let p = Page::amazon_like();
        let post = p.class_bytes(ContentClass::PostInitial);
        assert!(
            post * 2 > p.total_bytes(),
            "more than half of the data is post-initial (paper §5.5)"
        );
    }

    #[test]
    fn boundaries_are_ordered() {
        let p = Page::amazon_like();
        assert!(p.head_boundary() > 0);
        assert!(p.head_boundary() < p.initial_boundary());
        assert!(p.initial_boundary() < p.total_bytes());
        assert_eq!(p.head_boundary(), 12_000);
        assert_eq!(p.initial_boundary(), 12_000 + 45_000 + 160_000 + 120_000);
    }

    #[test]
    fn news_like_page_has_two_head_objects_on_critical_path() {
        let p = Page::news_like();
        assert_eq!(p.head_boundary(), 14_000, "both head objects gate 3PC");
        assert!(p.class_bytes(ContentClass::PostInitial) * 2 > p.total_bytes());
        assert!(p.third_party_latency > Page::amazon_like().third_party_latency);
    }

    #[test]
    fn class_props_match_convention() {
        assert_eq!(ContentClass::DependencyHead.prop(), 1);
        assert_eq!(ContentClass::InitialView.prop(), 2);
        assert_eq!(ContentClass::PostInitial.prop(), 3);
    }
}
