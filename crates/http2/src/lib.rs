//! # http2-sim
//!
//! An HTTP/2-flavoured page-load model over `mptcp-sim`, reproducing the
//! application side of paper §5.5 (Fig. 14): an MPTCP-aware web server
//! that annotates packets with content classes (dependency-critical head
//! data, initial-view content, post-initial content) so an HTTP/2-aware
//! ProgMP scheduler can optimize dependency resolution and preserve
//! subflow preferences.
//!
//! The paper extended Nghttp2 to forward HTTP information through OpenSSL
//! to the scheduler API; here the [`load::ServerMode::Aware`] server plays
//! that role by setting per-packet properties, while
//! [`load::ServerMode::Legacy`] models an unmodified server.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod load;
pub mod page;

pub use load::{run_page_load, PageLoadResult, ServerMode, WifiLteProfile};
pub use page::{ContentClass, Page, PageObject};
