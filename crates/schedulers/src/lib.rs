//! # progmp-schedulers
//!
//! Every scheduler from the Middleware '17 ProgMP paper, expressed in the
//! scheduler specification language (see [`sources`]), plus helpers to
//! compile them and a registry for experiments.
//!
//! The crate demonstrates the paper's central claim: schedulers that take
//! hundreds of lines of fragile kernel C (the in-tree round robin alone
//! is 301 LOC) are 10–30 line declarative programs here, safe by
//! construction.
//!
//! ```
//! use mptcp_sim::time::{from_millis, SECONDS};
//! use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
//!
//! // Run the paper's TAP scheduler on a two-path connection.
//! let mut sim = Sim::new(7);
//! let conn = sim.add_connection(ConnectionConfig::new(
//!     vec![
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(10), 2_000_000)),
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(40), 2_000_000)).with_cost(1),
//!     ],
//!     SchedulerSpec::dsl(progmp_schedulers::TAP),
//! )).unwrap();
//! sim.set_register_at(conn, 0, progmp_core::env::RegId::R1, 1_000_000);
//! sim.app_send_at(conn, 0, 50_000, 0);
//! sim.run_to_completion(10 * SECONDS);
//! assert!(sim.connections[conn].all_acked());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod sources;

use progmp_core::{compile_named, Backend, CompileError, SchedulerInstance, SchedulerProgram};

pub use sources::*;

/// Compiles the named scheduler from the registry.
///
/// # Errors
///
/// Returns the compile error of the scheduler source (never expected for
/// the bundled sources — covered by tests) or an unknown-name error.
pub fn load(name: &str) -> Result<SchedulerProgram, CompileError> {
    let source = sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
        .ok_or_else(|| CompileError {
            stage: progmp_core::error::Stage::Sema,
            pos: progmp_core::error::Pos { line: 0, col: 0 },
            message: format!("unknown scheduler `{name}`"),
        })?;
    compile_named(Some(name), source)
}

/// Compiles and instantiates the named scheduler on `backend`.
pub fn instantiate(name: &str, backend: Backend) -> Result<SchedulerInstance, CompileError> {
    Ok(load(name)?.instantiate(backend))
}

/// Names of all bundled schedulers.
pub fn names() -> Vec<&'static str> {
    sources::ALL.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmp_core::env::{PacketProp, QueueKind, RegId, SubflowProp};
    use progmp_core::testenv::MockEnv;

    /// Every bundled scheduler compiles and verifies on every backend.
    #[test]
    fn all_schedulers_compile_on_all_backends() {
        for (name, _) in sources::ALL {
            let prog = load(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            for backend in Backend::ALL {
                let _ = prog.instantiate(backend);
            }
        }
    }

    #[test]
    fn unknown_scheduler_is_error() {
        assert!(load("doesNotExist").is_err());
    }

    fn wifi_lte_env() -> MockEnv {
        let mut env = MockEnv::new();
        env.add_subflow(0); // WiFi: fast, preferred
        env.set_subflow_prop(0, SubflowProp::Rtt, 10_000);
        env.set_subflow_prop(0, SubflowProp::Cwnd, 10);
        env.set_subflow_prop(0, SubflowProp::Mss, 1400);
        env.set_subflow_prop(0, SubflowProp::Bw, 2_000_000);
        env.add_subflow(1); // LTE: slow, non-preferred (COST > 0)
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        env.set_subflow_prop(1, SubflowProp::Cwnd, 10);
        env.set_subflow_prop(1, SubflowProp::Cost, 1);
        env.set_subflow_prop(1, SubflowProp::Mss, 1400);
        env.set_subflow_prop(1, SubflowProp::Bw, 1_000_000);
        env
    }

    fn run(name: &str, env: &mut MockEnv) {
        let mut inst = instantiate(name, Backend::Vm).unwrap();
        inst.execute(env).unwrap();
    }

    fn run_rounds(name: &str, env: &mut MockEnv, rounds: usize) {
        let mut inst = instantiate(name, Backend::Vm).unwrap();
        for _ in 0..rounds {
            inst.execute(env).unwrap();
        }
    }

    #[test]
    fn default_prefers_min_rtt_and_skips_backup() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("default", &mut env);
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn default_falls_back_to_backup_when_alone() {
        let mut env = wifi_lte_env();
        env.remove_subflow(0);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("default", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 1, "backup used when only option");
    }

    #[test]
    fn default_reinjects_first_on_unsent_subflow() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 10, 1400);
        env.push_packet(QueueKind::Reinject, 2, 0, 1400);
        env.push_packet(QueueKind::Unacked, 2, 0, 1400);
        env.mark_sent_on(2, 0);
        run("default", &mut env);
        assert_eq!(env.transmissions[0].1 .0, 2, "reinjection first");
        assert_eq!(
            env.transmissions[0].0 .0, 1,
            "on the subflow that has not sent it"
        );
    }

    #[test]
    fn round_robin_cycles_and_skips_throttled() {
        let mut env = wifi_lte_env();
        for i in 0..4 {
            env.push_packet(QueueKind::SendQueue, 10 + i, i as i64, 1400);
        }
        run_rounds("roundRobin", &mut env, 2);
        assert_eq!(env.transmissions[0].0 .0, 0);
        assert_eq!(env.transmissions[1].0 .0, 1);
        // Throttle subflow 1: it must be skipped from the rotation.
        env.set_subflow_prop(1, SubflowProp::TsqThrottled, 1);
        run_rounds("roundRobin", &mut env, 2);
        assert!(env.transmissions[2..].iter().all(|t| t.0 .0 == 0));
    }

    #[test]
    fn redundant_catches_up_in_flight_packets() {
        let mut env = wifi_lte_env();
        // One packet already in flight on subflow 0 only.
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        env.push_packet(QueueKind::SendQueue, 6, 1, 1400);
        run("redundant", &mut env);
        // Subflow 0 has sent everything in QU -> takes fresh packet 6;
        // subflow 1 catches up on packet 5.
        let on0: Vec<u64> = env
            .transmissions
            .iter()
            .filter(|t| t.0 .0 == 0)
            .map(|t| t.1 .0)
            .collect();
        let on1: Vec<u64> = env
            .transmissions
            .iter()
            .filter(|t| t.0 .0 == 1)
            .map(|t| t.1 .0)
            .collect();
        assert_eq!(on0, vec![6]);
        assert_eq!(on1, vec![5]);
    }

    #[test]
    fn opportunistic_redundant_sends_on_all_free_subflows_once() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("opportunisticRedundant", &mut env);
        assert_eq!(env.transmissions.len(), 2, "both subflows get a copy");
        assert!(env.queue_contents(QueueKind::SendQueue).is_empty());
        // Exhaust one window: only the other sends.
        env.push_packet(QueueKind::SendQueue, 2, 1, 1400);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        run("opportunisticRedundant", &mut env);
        let last: Vec<_> = env.transmissions[2..].iter().map(|t| t.0 .0).collect();
        assert_eq!(last, vec![1], "no second chance for the blocked subflow");
    }

    #[test]
    fn redundant_if_no_q_prioritizes_fresh_data() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        env.push_packet(QueueKind::SendQueue, 6, 1, 1400);
        run("redundantIfNoQ", &mut env);
        assert_eq!(
            env.transmissions.len(),
            1,
            "fresh data only while Q non-empty"
        );
        assert_eq!(env.transmissions[0].1 .0, 6);
        // Q now empty: the next execution deploys redundancy from QU.
        run("redundantIfNoQ", &mut env);
        assert!(env.transmissions[1..]
            .iter()
            .any(|t| t.1 .0 == 5 && t.0 .0 == 1));
    }

    #[test]
    fn compensating_retransmits_in_flight_at_flow_end() {
        let mut env = wifi_lte_env();
        // Two packets in flight, one per subflow; flow end signaled.
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        env.push_packet(QueueKind::Unacked, 6, 1, 1400);
        env.mark_sent_on(6, 1);
        env.set_register(RegId::R2, 1);
        run_rounds("compensating", &mut env, 2);
        // Packet 5 compensated on subflow 1, packet 6 on subflow 0.
        assert!(env.transmissions.contains(&(
            progmp_core::env::SubflowId(1),
            progmp_core::env::PacketRef(5)
        )));
        assert!(env.transmissions.contains(&(
            progmp_core::env::SubflowId(0),
            progmp_core::env::PacketRef(6)
        )));
    }

    #[test]
    fn compensating_is_inert_without_signal() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        run("compensating", &mut env);
        assert!(env.transmissions.is_empty());
    }

    #[test]
    fn selective_compensation_requires_rtt_ratio() {
        // RTT ratio 40/10 = 4 > 2: compensates.
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        env.set_register(RegId::R2, 1);
        run("selectiveCompensation", &mut env);
        assert_eq!(env.transmissions.len(), 1);

        // RTT ratio 12/10 < 2: does not compensate.
        let mut env2 = wifi_lte_env();
        env2.set_subflow_prop(1, SubflowProp::Rtt, 12_000);
        env2.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env2.mark_sent_on(5, 0);
        env2.set_register(RegId::R2, 1);
        run("selectiveCompensation", &mut env2);
        assert!(env2.transmissions.is_empty());
    }

    #[test]
    fn tap_uses_preferred_when_available() {
        let mut env = wifi_lte_env();
        env.set_register(RegId::R1, 4_000_000);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("tap", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn tap_spills_to_lte_only_when_target_exceeds_wifi() {
        // WiFi blocked (window full), WiFi BW 2 MB/s < target 4 MB/s:
        // LTE may carry the leftover.
        let mut env = wifi_lte_env();
        env.set_register(RegId::R1, 4_000_000);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env.set_subflow_prop(1, SubflowProp::Bw, 0);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("tap", &mut env);
        assert_eq!(env.transmissions.len(), 1);
        assert_eq!(env.transmissions[0].0 .0, 1, "leftover goes to LTE");
    }

    #[test]
    fn tap_never_uses_lte_when_wifi_suffices() {
        // WiFi blocked momentarily but its BW (2 MB/s) covers the 1 MB/s
        // target: the packet must wait rather than spill to LTE.
        let mut env = wifi_lte_env();
        env.set_register(RegId::R1, 1_000_000);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("tap", &mut env);
        assert!(env.transmissions.is_empty(), "preference preserved");
        assert_eq!(env.queue_contents(QueueKind::SendQueue).len(), 1);
    }

    #[test]
    fn tap_leftover_fraction_caps_lte() {
        // LTE already carries (R1 - prefBw) worth of traffic: no more.
        let mut env = wifi_lte_env();
        env.set_register(RegId::R1, 2_500_000);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        // WiFi expected capacity is ~1.4 MB/s, so the leftover is ~1.1 MB/s;
        // LTE already delivers more than that.
        env.set_subflow_prop(1, SubflowProp::Bw, 1_200_000);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("tap", &mut env);
        assert!(env.transmissions.is_empty(), "LTE already above leftover");
    }

    #[test]
    fn target_rtt_escalates_to_backup() {
        let mut env = wifi_lte_env();
        // LTE is actually faster here (the [13] scenario: 15% of samples
        // have higher WiFi RTT).
        env.set_subflow_prop(0, SubflowProp::Rtt, 80_000);
        env.set_subflow_prop(1, SubflowProp::Rtt, 40_000);
        env.set_register(RegId::R1, 50_000); // tolerate 50 ms
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("targetRtt", &mut env);
        assert_eq!(
            env.transmissions[0].0 .0, 1,
            "backup retains the RTT target"
        );
    }

    #[test]
    fn target_rtt_stays_on_preferred_within_target() {
        let mut env = wifi_lte_env();
        env.set_register(RegId::R1, 50_000);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("targetRtt", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn target_deadline_uses_backup_under_pressure() {
        let mut env = wifi_lte_env();
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10); // WiFi full
        env.set_register(RegId::R1, 100); // 100 ms left
        env.set_register(RegId::R2, 1_000_000); // 1 MB left -> needs 10 MB/s
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("targetDeadline", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 1);
        // Relaxed deadline: stays off the backup.
        let mut env2 = wifi_lte_env();
        env2.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env2.set_register(RegId::R1, 10_000); // 10 s left
        env2.set_register(RegId::R2, 1_000_000); // needs only 100 KB/s
        env2.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("targetDeadline", &mut env2);
        assert!(env2.transmissions.is_empty());
    }

    #[test]
    fn handover_retransmits_old_subflow_traffic() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0); // in flight on the breaking WiFi link
        env.set_register(RegId::R3, 1);
        run("handoverAware", &mut env);
        assert_eq!(
            env.transmissions[0].0 .0, 1,
            "retransmitted on the new subflow"
        );
        assert_eq!(env.transmissions[0].1 .0, 5);
    }

    #[test]
    fn probing_refreshes_idle_subflow() {
        let mut env = wifi_lte_env();
        env.set_subflow_prop(1, SubflowProp::LastActAge, 200_000);
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        run("probing", &mut env);
        assert!(
            env.transmissions.iter().any(|t| t.0 .0 == 1 && t.1 .0 == 5),
            "idle subflow probed with in-flight packet"
        );
    }

    #[test]
    fn http2_head_data_avoids_slow_subflow() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.set_packet_prop(1, PacketProp::UserProp, 1);
        // Block WiFi: head data must NOT fall over to the 4x-RTT LTE.
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        run("http2Aware", &mut env);
        assert!(env.transmissions.is_empty(), "waits for the fast subflow");
    }

    #[test]
    fn http2_post_initial_content_respects_preference() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.set_packet_prop(1, PacketProp::UserProp, 3);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        run("http2Aware", &mut env);
        assert!(env.transmissions.is_empty(), "never spills to metered LTE");
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 0);
        run("http2Aware", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn http2_initial_view_uses_default_strategy() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.set_packet_prop(1, PacketProp::UserProp, 2);
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        run("http2Aware", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 1, "falls over like minRTT");
    }

    #[test]
    fn opportunistic_rtx_retransmits_when_window_blocked() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 100, 1400);
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 1);
        env.set_has_window(0, false); // receive window blocked
        run("opportunisticRtx", &mut env);
        assert_eq!(
            env.transmissions[0],
            (
                progmp_core::env::SubflowId(0),
                progmp_core::env::PacketRef(5)
            ),
            "penalized retransmission on the fast subflow"
        );
    }

    #[test]
    fn fast_coupled_rtx_recovers_on_cleanest_path() {
        let mut env = wifi_lte_env();
        env.set_subflow_prop(0, SubflowProp::LostSkbs, 5); // lossy WiFi
        env.set_subflow_prop(1, SubflowProp::LostSkbs, 0);
        // Packet 5 in flight on the lossy subflow; loss suspected.
        env.push_packet(QueueKind::Unacked, 5, 0, 1400);
        env.mark_sent_on(5, 0);
        env.push_packet(QueueKind::Reinject, 5, 0, 1400);
        run("fastCoupledRtx", &mut env);
        assert_eq!(
            env.transmissions[0],
            (
                progmp_core::env::SubflowId(1),
                progmp_core::env::PacketRef(5)
            ),
            "oldest unacked of the lossiest subflow retransmitted on the cleanest"
        );
        assert!(
            env.queue_contents(QueueKind::Reinject).is_empty(),
            "reinjection entry consumed"
        );
    }

    #[test]
    fn fast_coupled_rtx_defaults_to_min_rtt_without_loss() {
        let mut env = wifi_lte_env();
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        run("fastCoupledRtx", &mut env);
        assert_eq!(env.transmissions[0].0 .0, 0);
    }

    #[test]
    fn cwnd_relax_ignores_window_for_flow_tail() {
        let mut env = wifi_lte_env();
        // Both windows exhausted; two packets left, tail signaled.
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env.set_subflow_prop(1, SubflowProp::SkbsInFlight, 10);
        env.push_packet(QueueKind::SendQueue, 1, 0, 1400);
        env.set_register(RegId::R2, 2);
        run("cwndRelax", &mut env);
        assert_eq!(
            env.transmissions.len(),
            1,
            "tail packet sent despite full cwnd"
        );
        assert_eq!(env.transmissions[0].0 .0, 0, "on the min-RTT subflow");
    }

    #[test]
    fn cwnd_relax_respects_window_mid_flow() {
        let mut env = wifi_lte_env();
        env.set_subflow_prop(0, SubflowProp::SkbsInFlight, 10);
        env.set_subflow_prop(1, SubflowProp::SkbsInFlight, 10);
        for i in 0..5u64 {
            env.push_packet(QueueKind::SendQueue, 1 + i, 1400 * i as i64, 1400);
        }
        env.set_register(RegId::R2, 2); // 5 queued > 2 remaining-signal
        run("cwndRelax", &mut env);
        assert!(env.transmissions.is_empty(), "mid-flow respects the window");
    }

    /// Backend-equivalence: every scheduler produces identical
    /// transmissions/registers on interpreter, AOT, and VM.
    #[test]
    fn backends_agree_for_every_scheduler() {
        for (name, _) in sources::ALL {
            let mut outcomes = Vec::new();
            for backend in Backend::ALL {
                let mut env = wifi_lte_env();
                env.set_register(RegId::R1, 4_000_000);
                env.set_register(RegId::R2, 1);
                env.set_register(RegId::R3, 1);
                for i in 0..3u64 {
                    env.push_packet(QueueKind::SendQueue, 10 + i, 1400 * i as i64, 1400);
                }
                env.push_packet(QueueKind::Unacked, 5, 0, 1400);
                env.mark_sent_on(5, 0);
                env.push_packet(QueueKind::Reinject, 5, 0, 1400);
                let mut inst = instantiate(name, backend).unwrap();
                for _ in 0..3 {
                    inst.execute(&mut env).unwrap();
                }
                outcomes.push((
                    backend.name(),
                    env.transmissions.clone(),
                    env.dropped.clone(),
                ));
            }
            assert_eq!(
                outcomes[0].1, outcomes[1].1,
                "{name}: interp vs aot transmissions"
            );
            assert_eq!(
                outcomes[0].1, outcomes[2].1,
                "{name}: interp vs vm transmissions"
            );
            assert_eq!(outcomes[0].2, outcomes[1].2, "{name}: interp vs aot drops");
            assert_eq!(outcomes[0].2, outcomes[2].2, "{name}: interp vs vm drops");
        }
    }
}

#[cfg(test)]
mod audit_tests {
    use super::*;

    /// Every bundled scheduler passes a multi-tenancy audit: it can
    /// transmit, only the redundancy family discards packets (by design,
    /// after pushing copies), the register interface matches the
    /// documented conventions, and scan depth stays shallow (cheap
    /// executions).
    #[test]
    fn bundled_schedulers_pass_static_audit() {
        for (name, _) in sources::ALL {
            let program = load(name).unwrap();
            let audit = program.analyze();
            assert!(audit.can_transmit(), "{name} must be able to push");
            if audit.can_discard() {
                assert!(
                    matches!(*name, "opportunisticRedundant" | "fastCoupledRtx"),
                    "{name} unexpectedly discards packets"
                );
            }
            assert!(
                audit.max_scan_depth <= 3,
                "{name} nests scans too deeply: {}",
                audit.max_scan_depth
            );
            // Schedulers touching R1 are exactly the intent-driven family.
            let reads_r1 = audit.registers_read.contains(&1);
            let intent_family = matches!(
                *name,
                "tap" | "targetRtt" | "targetDeadline" | "targetRttProbing"
            );
            assert_eq!(reads_r1, intent_family, "{name}: R1 interface mismatch");
        }
    }

    #[test]
    fn audit_distinguishes_redundancy_designs() {
        let redundant = load("redundant").unwrap().analyze();
        assert!(redundant.uses_sent_on, "redundancy is SENT_ON-driven");
        let rr = load("roundRobin").unwrap().analyze();
        assert!(!rr.uses_sent_on);
        assert!(rr.registers_read.contains(&4), "RR keeps its index in R4");
        assert!(rr.registers_written.contains(&4));
    }
}
