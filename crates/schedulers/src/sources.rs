//! ProgMP source texts for every scheduler discussed in the paper.
//!
//! Register conventions (set through the extended API, paper §3.2):
//!
//! | Register | Meaning |
//! |---|---|
//! | `R1` | primary application intent: target bandwidth (bytes/s) for [`TAP`], tolerable RTT (µs) for [`TARGET_RTT`], remaining deadline (ms) for [`TARGET_DEADLINE`] |
//! | `R2` | end-of-flow flag for the compensating schedulers (§5.3), or remaining chunk bytes for [`TARGET_DEADLINE`] |
//! | `R3` | handover-active flag for [`HANDOVER_AWARE`] (§5.2) |
//!
//! Subflow preference convention for the preference-aware schedulers
//! ([`TAP`], [`TARGET_RTT`], [`TARGET_DEADLINE`], [`HTTP2_AWARE`]):
//! preferred subflows have `COST == 0`, non-preferred (metered) subflows
//! `COST > 0` — set through the extended API. Kernel *backup mode*
//! (`IS_BACKUP`) remains a separate, stronger mechanism honored by the
//! default scheduler.
//!
//! Packet property (`PROP`) conventions for [`HTTP2_AWARE`] (§5.5):
//! `1` = dependency-critical initial data, `2` = remaining initial-view
//! content, `3` = post-initial content (deferrable, preference-aware).

/// Fig. 3: the minimal example — push on the subflow with minimum RTT.
pub const MIN_RTT_SIMPLE: &str = "
    IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {
        SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());
    }";

/// The Linux default scheduler (§3.4): reinjections first, then the
/// lowest-RTT subflow with free congestion window, skipping throttled and
/// lossy subflows, with backup semantics (backups only when no non-backup
/// subflow is available).
pub const DEFAULT_MIN_RTT: &str = "
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    VAR nonBackup = avail.FILTER(sbf => !sbf.IS_BACKUP);
    VAR rqSkb = RQ.TOP;
    IF (rqSkb != NULL) {
        VAR rtxSbf = avail.FILTER(sbf => !rqSkb.SENT_ON(sbf)).MIN(sbf => sbf.RTT);
        IF (rtxSbf != NULL) {
            rtxSbf.PUSH(RQ.POP());
            RETURN;
        }
    }
    IF (!Q.EMPTY) {
        VAR s = nonBackup.MIN(sbf => sbf.RTT);
        IF (s != NULL) {
            s.PUSH(Q.POP());
            RETURN;
        }
        /* backup subflows are used only when no non-backup subflow is
           established at all (kernel backup semantics, paper 3.4) */
        IF (SUBFLOWS.FILTER(sbf => !sbf.IS_BACKUP).EMPTY) {
            VAR b = avail.MIN(sbf => sbf.RTT);
            IF (b != NULL) { b.PUSH(Q.POP()); }
        }
    }";

/// Fig. 5: the round-robin scheduler with a cyclic index in `R4` and
/// work-conserving skip of exhausted windows.
pub const ROUND_ROBIN: &str = "
    VAR sbfs = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
    IF (R4 >= sbfs.COUNT) { SET(R4, 0); }
    IF (!Q.EMPTY) {
        VAR sbf = sbfs.GET(R4);
        IF (sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED) {
            sbf.PUSH(Q.POP());
        }
        SET(R4, R4 + 1);
    }";

/// The existing redundant scheduler (§3.4 / Fig. 10a top): every subflow
/// first catches up on in-flight packets it has not transmitted yet, then
/// takes fresh data — converging to "all packets on all subflows".
pub const REDUNDANT: &str = "
    VAR sbfCandidates = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY);
    FOREACH (VAR sbf IN sbfCandidates) {
        VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
        /* are all QU packets sent on this sbf? */
        IF (skb != NULL) {
            sbf.PUSH(skb);
        } ELSE {
            sbf.PUSH(Q.POP());
        }
    }";

/// §5.1 `OpportunisticRedundant`: a packet is sent redundantly on every
/// subflow whose congestion window is free *when it is first scheduled*;
/// as acknowledgements arrive, fresh packets take precedence over
/// completing redundancy (Fig. 10a bottom).
pub const OPPORTUNISTIC_REDUNDANT: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR sbfCandidates = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!sbfCandidates.EMPTY AND !Q.EMPTY) {
        FOREACH (VAR sbf IN sbfCandidates) {
            sbf.PUSH(Q.TOP);
        }
        DROP(Q.POP());
    }";

/// §5.1 `RedundantIfNoQ`: always favors fresh packets; redundancy is only
/// deployed when the sending queue is empty, so it never delays new data.
pub const REDUNDANT_IF_NO_Q: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
        RETURN;
    }
    FOREACH (VAR sbf IN avail) {
        VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
        IF (skb != NULL) { sbf.PUSH(skb); }
    }";

/// §5.3 `Compensating` (Fig. 12 without the highlighted parts): behaves
/// like the default scheduler until the application signals the end of
/// the flow (`R2 = 1`); then every packet still in flight is retransmitted
/// on all subflows it has not used, compensating earlier decisions.
pub const COMPENSATING: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
        RETURN;
    }
    IF (R2 == 1) {
        FOREACH (VAR sbf IN SUBFLOWS) {
            VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
            IF (skb != NULL) { sbf.PUSH(skb); }
        }
    }";

/// §5.3 `Selective Compensation` (Fig. 12 highlighted parts): compensates
/// only when the subflow RTT ratio exceeds 2, balancing flow-completion
/// benefit against transmission overhead.
pub const SELECTIVE_COMPENSATION: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
        RETURN;
    }
    VAR fastRtt = SUBFLOWS.MIN(s => s.RTT).RTT;
    VAR slowRtt = SUBFLOWS.MAX(s => s.RTT).RTT;
    IF (R2 == 1 AND slowRtt > 2 * fastRtt) {
        FOREACH (VAR sbf IN SUBFLOWS) {
            VAR skb = QU.FILTER(s => !s.SENT_ON(sbf)).TOP;
            IF (skb != NULL) { sbf.PUSH(skb); }
        }
    }";

/// §5.4 / Fig. 13 `TAP` (throughput- and preference-aware): prefers
/// non-backup subflows; non-preferred subflows are used only while the
/// preferred capacity estimate is below the application's target
/// bandwidth (`R1`, bytes/s), and only for the leftover fraction.
pub const TAP: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    /* R1 = target bandwidth signaled by the application (bytes/s);
       preferred subflows have COST == 0, metered ones COST > 0 */
    VAR pref = SUBFLOWS.FILTER(sbf => sbf.COST == 0);
    VAR prefAvail = pref.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (Q.EMPTY) { RETURN; }
    VAR s = prefAvail.MIN(sbf => sbf.RTT);
    IF (s != NULL) {
        s.PUSH(Q.POP());
        RETURN;
    }
    /* preferred subflows blocked: expected-throughput check. The
       achievable rate of a subflow is CWND * MSS per RTT (µs -> s). */
    VAR prefBw = pref.SUM(sbf => (sbf.CWND * sbf.MSS * 1000000) / (sbf.RTT + 1));
    IF (prefBw < R1) {
        VAR np = SUBFLOWS.FILTER(sbf => sbf.COST > 0 AND !sbf.LOSSY
            AND !sbf.TSQ_THROTTLED
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED).MIN(sbf => sbf.RTT);
        IF (np != NULL) {
            /* use only the leftover fraction on the non-preferred subflow */
            VAR npBw = SUBFLOWS.FILTER(sbf => sbf.COST > 0).SUM(sbf => sbf.BW);
            IF (npBw <= R1 - prefBw) {
                np.PUSH(Q.POP());
            }
        }
    }";

/// §5.4 target-RTT scheduler: keeps latency below the tolerable RTT
/// signaled in `R1` (µs) by escalating to backup subflows only when every
/// preferred subflow exceeds the target.
pub const TARGET_RTT: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    /* R1 = tolerable RTT in microseconds */
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (Q.EMPTY) { RETURN; }
    /* while any preferred subflow retains the target, use preferred
       subflows only -- waiting out momentary throttling rather than
       spilling to the metered path */
    IF (!SUBFLOWS.FILTER(sbf => sbf.COST == 0 AND sbf.RTT <= R1).EMPTY) {
        VAR best = avail.FILTER(sbf => sbf.COST == 0 AND sbf.RTT <= R1)
            .MIN(sbf => sbf.RTT);
        IF (best != NULL) { best.PUSH(Q.POP()); }
        RETURN;
    }
    /* preferred subflows violate the target: escalate to any subflow
       that retains the target RTT */
    VAR alt = avail.FILTER(sbf => sbf.RTT <= R1).MIN(sbf => sbf.RTT);
    IF (alt != NULL) {
        alt.PUSH(Q.POP());
        RETURN;
    }
    /* only when NO subflow can retain the target: best effort. If one
       could but is momentarily throttled, wait for it instead. */
    IF (SUBFLOWS.FILTER(sbf => sbf.RTT <= R1).EMPTY) {
        VAR anySbf = avail.MIN(sbf => sbf.RTT);
        IF (anySbf != NULL) { anySbf.PUSH(Q.POP()); }
    }";

/// §5.4 target-deadline scheduler (the MP-DASH use case): `R1` holds the
/// remaining deadline in milliseconds and `R2` the remaining chunk bytes;
/// non-preferred subflows are used only when the preferred capacity
/// cannot meet the deadline.
pub const TARGET_DEADLINE: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    /* R1 = remaining deadline (ms), R2 = remaining chunk bytes;
       preferred subflows have COST == 0 */
    VAR pref = SUBFLOWS.FILTER(sbf => sbf.COST == 0);
    VAR prefAvail = pref.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (Q.EMPTY) { RETURN; }
    VAR s = prefAvail.MIN(sbf => sbf.RTT);
    IF (s != NULL) {
        s.PUSH(Q.POP());
        RETURN;
    }
    VAR needBw = (R2 * 1000) / (R1 + 1);
    VAR prefBw = pref.SUM(sbf => sbf.BW);
    IF (needBw > prefBw) {
        VAR np = SUBFLOWS.FILTER(sbf => sbf.COST > 0 AND !sbf.TSQ_THROTTLED
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED).MIN(sbf => sbf.RTT);
        IF (np != NULL) { np.PUSH(Q.POP()); }
    }";

/// §5.2 handover-aware scheduler: while the application signals an
/// ongoing handover (`R3 = 1`), packets in flight on the oldest subflow
/// (the breaking WiFi link) are aggressively retransmitted on the newest
/// subflow (the fresh cellular link) to compensate losses.
pub const HANDOVER_AWARE: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (R3 == 1 AND SUBFLOWS.COUNT > 1) {
        VAR newSbf = SUBFLOWS.MAX(s => s.ID);
        VAR oldSbf = SUBFLOWS.MIN(s => s.ID);
        VAR skb = QU.FILTER(s => s.SENT_ON(oldSbf) AND !s.SENT_ON(newSbf)).TOP;
        IF (skb != NULL) {
            newSbf.PUSH(skb);
            RETURN;
        }
    }
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
    }";

/// §3.4 opportunistic-retransmission flavour of the default scheduler:
/// when the receive window blocks the fastest subflow, packets already
/// sent on slower subflows are proactively retransmitted on the fast one.
pub const OPPORTUNISTIC_RTX: &str = "
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    VAR minRttSbf = avail.MIN(sbf => sbf.RTT);
    IF (minRttSbf == NULL) { RETURN; }
    IF (!Q.EMPTY) {
        IF (minRttSbf.HAS_WINDOW_FOR(Q.TOP)) {
            minRttSbf.PUSH(Q.POP());
            RETURN;
        }
        /* receive window blocked: penalized retransmission of the oldest
           in-flight packet not yet sent on the fast subflow */
        VAR skb = QU.FILTER(s => !s.SENT_ON(minRttSbf)).MIN(s => s.SEQ);
        IF (skb != NULL) { minRttSbf.PUSH(skb); }
    }";

/// Table 2 "Probing": idle subflows (no packets in flight, no activity
/// for 100 ms) are refreshed with a redundant copy of the oldest
/// in-flight packet so their RTT estimates stay current for later
/// scheduling decisions.
pub const PROBING: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR idle = SUBFLOWS.FILTER(sbf => sbf.SKBS_IN_FLIGHT == 0
        AND sbf.LAST_ACT_AGE > 100000 AND !sbf.LOSSY);
    IF (!QU.EMPTY) {
        FOREACH (VAR sbf IN idle) {
            sbf.PUSH(QU.MIN(p => p.SEQ));
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
    }";

/// §5.5 HTTP/2-aware scheduler: content-class-dependent strategies.
/// `PROP 1` (dependency-critical head data) avoids high-RTT subflows so
/// third-party requests start as early as possible; `PROP 2` (initial
/// view) uses the default min-RTT strategy; `PROP 3` (post-initial
/// content) is preference-aware and never touches non-preferred (metered)
/// subflows.
pub const HTTP2_AWARE: &str = "
    /* reinjection queue first: recover suspected losses (model §3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
        VAR rqAny = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqAny != NULL) {
            rqAny.PUSH(RQ.POP());
            RETURN;
        }
    }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (Q.EMPTY) { RETURN; }
    VAR skb = Q.TOP;
    VAR fastestRtt = SUBFLOWS.MIN(s => s.RTT).RTT;
    IF (skb.PROP == 1) {
        /* dependency info: avoid high-RTT subflows entirely */
        VAR s = avail.FILTER(sbf => 2 * sbf.RTT < 3 * fastestRtt).MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
        RETURN;
    }
    IF (skb.PROP == 3) {
        /* post-initial content: preference-aware, preferred subflows only */
        VAR s = avail.FILTER(sbf => sbf.COST == 0).MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
        RETURN;
    }
    VAR s2 = avail.MIN(sbf => sbf.RTT);
    IF (s2 != NULL) { s2.PUSH(Q.POP()); }";

/// Composition of Table 2's "Probing" feature with the target-RTT
/// scheduler: idle subflows are probed with redundant copies of in-flight
/// packets so their RTT estimates stay fresh, letting the scheduler move
/// *back* to the preferred subflow once its RTT recovers — without
/// probing, a subflow abandoned during an RTT spike would keep its stale
/// estimate forever.
pub const TARGET_RTT_PROBING: &str = "
    /* probe idle subflows to refresh RTT estimates (Table 2: Probing) */
    VAR idleProbe = SUBFLOWS.FILTER(pb => pb.SKBS_IN_FLIGHT == 0
        AND pb.LAST_ACT_AGE > 100000 AND !pb.LOSSY);
    IF (!QU.EMPTY) {
        FOREACH (VAR pSbf IN idleProbe) {
            pSbf.PUSH(QU.MIN(pp => pp.SEQ));
        }
    }
    /* reinjection queue first: recover suspected losses (model 3.1) */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED
            AND !rqPre.SENT_ON(q)).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
    }
    /* R1 = tolerable RTT in microseconds */
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (Q.EMPTY) { RETURN; }
    /* while any preferred subflow retains the target, use preferred
       subflows only -- waiting out momentary throttling rather than
       spilling to the metered path */
    IF (!SUBFLOWS.FILTER(sbf => sbf.COST == 0 AND sbf.RTT <= R1).EMPTY) {
        VAR best = avail.FILTER(sbf => sbf.COST == 0 AND sbf.RTT <= R1)
            .MIN(sbf => sbf.RTT);
        IF (best != NULL) { best.PUSH(Q.POP()); }
        RETURN;
    }
    VAR alt = avail.FILTER(sbf => sbf.RTT <= R1).MIN(sbf => sbf.RTT);
    IF (alt != NULL) {
        alt.PUSH(Q.POP());
        RETURN;
    }
    IF (SUBFLOWS.FILTER(sbf => sbf.RTT <= R1).EMPTY) {
        VAR anySbf = avail.MIN(sbf => sbf.RTT);
        IF (anySbf != NULL) { anySbf.PUSH(Q.POP()); }
    }";

/// §2.2 "Compensate Loss in Short Data-center Flows" ([7, 27]): fast
/// coupled retransmission. When a loss is suspected anywhere (`RQ`
/// non-empty), the oldest unacknowledged packet of the subflow with the
/// *highest loss count* is proactively retransmitted on the least-lossy
/// alternative path — the design whose decision points ("the choice of
/// the retransmitted packet") the paper notes were never analyzed; see
/// the `abl_compensating_choice` ablation.
pub const FAST_COUPLED_RTX: &str = "
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    IF (!RQ.EMPTY AND SUBFLOWS.COUNT > 1) {
        /* loss suspected: couple the retransmission to the best path */
        VAR lossiest = SUBFLOWS.MAX(sbf => sbf.LOST_SKBS);
        VAR cleanest = avail.FILTER(sbf => sbf.ID != lossiest.ID).MIN(sbf => sbf.LOST_SKBS);
        IF (cleanest != NULL) {
            VAR victim = QU.FILTER(p => p.SENT_ON(lossiest)
                AND !p.SENT_ON(cleanest)).MIN(p => p.SEQ);
            IF (victim != NULL) {
                cleanest.PUSH(victim);
                DROP(RQ.POP());
                RETURN;
            }
        }
        /* fall back to plain reinjection */
        VAR rSbf = avail.MIN(sbf => sbf.RTT);
        IF (rSbf != NULL) {
            rSbf.PUSH(RQ.POP());
            RETURN;
        }
    }
    IF (!Q.EMPTY) {
        VAR s = avail.MIN(sbf => sbf.RTT);
        IF (s != NULL) { s.PUSH(Q.POP()); }
    }";

/// §6 "Dependencies" — cross-concern optimization: the scheduler relaxes
/// the congestion-window constraint for the last few packets of a flow
/// (signaled via `R2` = remaining packets) to save a round trip. The
/// `abl_cwnd_relax` ablation quantifies the trade-off.
pub const CWND_RELAX: &str = "
    /* reinjection queue first */
    VAR rqPre = RQ.TOP;
    IF (rqPre != NULL) {
        VAR rqSbf = SUBFLOWS.FILTER(q => !q.TSQ_THROTTLED AND !q.LOSSY
            AND q.CWND > q.SKBS_IN_FLIGHT + q.QUEUED).MIN(q => q.RTT);
        IF (rqSbf != NULL) {
            rqSbf.PUSH(RQ.POP());
            RETURN;
        }
    }
    IF (Q.EMPTY) { RETURN; }
    VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
        AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
    VAR s = avail.MIN(sbf => sbf.RTT);
    IF (s != NULL) {
        s.PUSH(Q.POP());
        RETURN;
    }
    /* R2 = packets remaining in the flow: for the tail, relax the cwnd
       constraint (but never TSQ) to avoid waiting a full RTT */
    IF (R2 > 0 AND Q.COUNT <= R2) {
        VAR relaxed = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY)
            .MIN(sbf => sbf.RTT);
        IF (relaxed != NULL) { relaxed.PUSH(Q.POP()); }
    }";

/// All named schedulers, for registries and exhaustive tests.
pub const ALL: &[(&str, &str)] = &[
    ("minRttSimple", MIN_RTT_SIMPLE),
    ("default", DEFAULT_MIN_RTT),
    ("roundRobin", ROUND_ROBIN),
    ("redundant", REDUNDANT),
    ("opportunisticRedundant", OPPORTUNISTIC_REDUNDANT),
    ("redundantIfNoQ", REDUNDANT_IF_NO_Q),
    ("compensating", COMPENSATING),
    ("selectiveCompensation", SELECTIVE_COMPENSATION),
    ("tap", TAP),
    ("targetRtt", TARGET_RTT),
    ("targetDeadline", TARGET_DEADLINE),
    ("handoverAware", HANDOVER_AWARE),
    ("opportunisticRtx", OPPORTUNISTIC_RTX),
    ("probing", PROBING),
    ("http2Aware", HTTP2_AWARE),
    ("targetRttProbing", TARGET_RTT_PROBING),
    ("fastCoupledRtx", FAST_COUPLED_RTX),
    ("cwndRelax", CWND_RELAX),
];
