//! Parser/printer round-trip over every bundled scheduler: printing a
//! parsed program and re-parsing it must yield the identical structure,
//! and printing must be idempotent. This pins the canonical surface
//! syntax that the proc-style introspection interface exposes.

use progmp_core::ast::Program;
use progmp_core::parser::parse;
use progmp_core::printer::print_program;
use progmp_schedulers::sources::ALL;

/// Structure-only rendering: positions change across a print/parse trip,
/// so strip them before comparing.
fn strip_positions(program: &Program) -> String {
    format!("{program:?}")
        .split("pos: Pos")
        .map(|part| part.split_once('}').map(|(_, rest)| rest).unwrap_or(part))
        .collect()
}

#[test]
fn every_bundled_scheduler_round_trips() {
    for (name, source) in ALL {
        let first = parse(source).unwrap_or_else(|e| panic!("`{name}` must parse: {e}"));
        let printed = print_program(&first);
        let second = parse(&printed)
            .unwrap_or_else(|e| panic!("printed `{name}` must re-parse: {e}\n{printed}"));
        assert_eq!(
            strip_positions(&first),
            strip_positions(&second),
            "`{name}`: parse(print(parse(src))) != parse(src)\n--- printed\n{printed}"
        );
    }
}

#[test]
fn printing_is_idempotent_for_every_bundled_scheduler() {
    for (name, source) in ALL {
        let parsed = parse(source).unwrap_or_else(|e| panic!("`{name}` must parse: {e}"));
        let once = print_program(&parsed);
        let twice = print_program(&parse(&once).expect("printed output parses"));
        assert_eq!(once, twice, "`{name}`: printing is not idempotent");
    }
}

#[test]
fn every_bundled_scheduler_compiles_from_printed_form() {
    // The canonical form is not just parseable but a complete, compilable
    // program — sema and codegen accept it like the original.
    for (name, source) in ALL {
        let printed = print_program(&parse(source).expect("parses"));
        progmp_core::compile(&printed)
            .unwrap_or_else(|e| panic!("printed `{name}` must compile: {e}"));
    }
}
