//! Golden lint snapshots for the bundled paper schedulers.
//!
//! Each of the seven headline schedulers from the paper must pass the
//! admission verifier *clean* — admitted, with a finite certified step
//! bound — and the full human-readable verdict (including the bound) is
//! pinned as a snapshot so any change to the verifier's precision or
//! cost model shows up as a reviewable diff. Regenerate with
//! `UPDATE_SNAPSHOTS=1 cargo test -p progmp-conformance --test
//! lint_snapshots`.

use progmp_conformance::{compile_observed, snapshot::assert_snapshot};

/// The seven schedulers highlighted in the paper's evaluation.
const SNAPSHOT_SCHEDULERS: &[&str] = &[
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

fn source_of(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("bundled scheduler {name} not found"))
        .1
}

#[test]
fn bundled_schedulers_verify_clean_with_pinned_bounds() {
    for &name in SNAPSHOT_SCHEDULERS {
        let program = compile_observed(source_of(name))
            .unwrap_or_else(|e| panic!("bundled scheduler {name} must compile: {e}"));
        let verdict = program.verdict();
        assert!(
            verdict.admitted(),
            "bundled scheduler {name} must be admitted:\n{}",
            verdict.render_human(name)
        );
        let bound = verdict.certified_step_bound;
        assert!(
            bound > 0 && bound < u64::MAX,
            "bundled scheduler {name} must have a finite certified bound, got {bound}"
        );
        assert_snapshot(&format!("lint_{name}"), &verdict.render_human(name));
    }
}

/// Stale-golden guard: the committed `lint_*.snap` set is exactly the
/// seven paper schedulers.
#[test]
fn lint_goldens_cover_exactly_the_paper_schedulers() {
    progmp_conformance::snapshot::assert_family_covers("lint_", SNAPSHOT_SCHEDULERS);
}

/// Every bundled scheduler — not just the seven snapshot targets — must
/// pass the enforcing admission gate, since the registry compiles them
/// with default options.
#[test]
fn all_bundled_schedulers_pass_the_admission_gate() {
    for (name, src) in progmp_schedulers::sources::ALL {
        progmp_core::compile_named(Some(name), src)
            .unwrap_or_else(|e| panic!("bundled scheduler {name} rejected by admission gate: {e}"));
    }
}
