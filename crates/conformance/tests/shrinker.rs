//! End-to-end shrinker behavior on generator output: synthetic
//! predicates must reduce real generated cases to tiny repros, the same
//! way a genuine backend divergence is minimized by `conformance-fuzz`.

use progmp_conformance::gen::{EnvSpec, Generator};
use progmp_conformance::shrink::{shrink, stmt_count};
use progmp_core::ast::{Program, StmtKind};

fn contains_push(program: &Program) -> bool {
    fn any(body: &[progmp_core::ast::Stmt]) -> bool {
        body.iter().any(|s| match &s.kind {
            StmtKind::Push { .. } => true,
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => any(then_body) || any(else_body),
            StmtKind::Foreach { body, .. } => any(body),
            _ => false,
        })
    }
    any(&program.body)
}

#[test]
fn shrinks_generated_cases_with_push_to_minimal_repro() {
    let mut shrunk_any = false;
    for seed in 0..40u64 {
        let mut generator = Generator::new(seed);
        let program = generator.program();
        let spec = generator.env_spec();
        if !contains_push(&program) {
            continue;
        }
        let before = stmt_count(&program.body);
        let mut pred = |p: &Program, _: &EnvSpec| contains_push(p);
        let (minimal, min_spec) = shrink(program, spec, &mut pred);
        assert!(contains_push(&minimal), "seed {seed}: predicate lost");
        assert!(
            stmt_count(&minimal.body) <= before,
            "seed {seed}: shrinking grew the program"
        );
        // A PUSH statement plus at most the declarations it depends on.
        assert!(
            minimal.to_string().lines().count() < 10,
            "seed {seed}: repro not minimal:\n{minimal}"
        );
        // The environment is irrelevant to this predicate, so it must
        // shrink to nothing.
        assert!(min_spec.packets.is_empty() && min_spec.subflows.is_empty());
        shrunk_any = true;
    }
    assert!(
        shrunk_any,
        "no generated program contained PUSH in 40 seeds"
    );
}

#[test]
fn shrunk_case_still_compiles() {
    for seed in [7u64, 19, 33] {
        let mut generator = Generator::new(seed);
        let program = generator.program();
        let spec = generator.env_spec();
        let mut pred = |p: &Program, _: &EnvSpec| !p.body.is_empty();
        let (minimal, _) = shrink(program, spec, &mut pred);
        progmp_conformance::compile_observed(&minimal.to_string())
            .unwrap_or_else(|e| panic!("seed {seed}: shrunk program must compile: {e}"));
        assert_eq!(stmt_count(&minimal.body), 1, "seed {seed}");
    }
}
