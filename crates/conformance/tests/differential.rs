//! The conformance contract: all three backends agree on every generated
//! program and every bundled scheduler.

use progmp_conformance::differ::{check_seed, run_differential};
use progmp_conformance::gen::Generator;
use progmp_core::parser::parse;

/// Seeds swept by the main conformance test. The fuzz binary explores
/// further; this floor keeps `cargo test` meaningful without dominating
/// its runtime.
const SEEDS: u64 = 600;

#[test]
fn generated_programs_agree_across_backends() {
    let mut checked = 0;
    for seed in 0..SEEDS {
        if let Some(divergence) = check_seed(seed) {
            panic!("{}", divergence.report());
        }
        checked += 1;
    }
    assert_eq!(checked, SEEDS);
}

#[test]
fn generated_programs_print_idempotently() {
    for seed in 0..200 {
        let mut generator = Generator::new(seed);
        let program = generator.program();
        let printed = program.to_string();
        let reparsed = parse(&printed).expect("printed program parses");
        assert_eq!(
            reparsed.to_string(),
            printed,
            "seed {seed}: print(parse(print(p))) != print(p)"
        );
    }
}

#[test]
fn bundled_schedulers_agree_across_backends() {
    // The hand-written schedulers exercise idioms the generator may
    // under-sample; run each on a spread of random environments.
    for (name, source) in progmp_schedulers::sources::ALL {
        for env_seed in [1u64, 42, 1000, 123_456] {
            let mut generator = Generator::new(env_seed);
            let spec = generator.env_spec();
            match run_differential(source, &spec) {
                Ok(None) => {}
                Ok(Some(d)) => panic!(
                    "bundled scheduler `{name}` diverged on env seed {env_seed}:\n{}",
                    d.report()
                ),
                Err(e) => panic!("bundled scheduler `{name}` failed to compile: {e}"),
            }
        }
    }
}

#[test]
fn divergence_free_seeds_are_deterministic() {
    // Re-checking a seed must traverse the identical program and env.
    let mut a = Generator::new(321);
    let mut b = Generator::new(321);
    assert_eq!(a.program().to_string(), b.program().to_string());
    assert_eq!(a.env_spec().render(), b.env_spec().render());
}
