//! Golden optimizer snapshots for the bundled paper schedulers.
//!
//! Each of the seven headline schedulers compiles through the verified
//! bytecode optimizer *clean* — every kept rewrite re-verified, no
//! fail-open rollbacks — and the pass statistics, instruction counts,
//! and step bounds (HIR-certified and bytecode-model, before and after)
//! are pinned as `optimized_<name>.snap` so any change to a pass's
//! effectiveness or the verifier's precision shows up as a reviewable
//! diff. The bytecode-model bound must never increase; the certified
//! bound is a property of the HIR and is unchanged by construction.
//! Regenerate with `UPDATE_SNAPSHOTS=1 cargo test -p progmp-conformance
//! --test optimizer_snapshots`.

use progmp_conformance::snapshot::assert_snapshot;
use progmp_core::CompileOptions;

/// The seven schedulers highlighted in the paper's evaluation.
const SNAPSHOT_SCHEDULERS: &[&str] = &[
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

fn source_of(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("bundled scheduler {name} not found"))
        .1
}

#[test]
fn bundled_schedulers_optimize_clean_with_pinned_stats() {
    for &name in SNAPSHOT_SCHEDULERS {
        let program = progmp_core::compile_with_options(
            Some(name),
            source_of(name),
            CompileOptions {
                optimize_bytecode: true,
                ..CompileOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("bundled scheduler {name} must compile optimized: {e}"));
        let report = program
            .opt_report()
            .unwrap_or_else(|| panic!("{name}: optimized compile records an OptReport"));
        assert!(
            report.diagnostics.is_empty() && report.passes.iter().all(|p| !p.rolled_back),
            "bundled scheduler {name} must optimize without rollbacks:\n{}",
            report.render_human()
        );
        assert!(
            report.bound_after <= report.bound_before,
            "{name}: model step bound must never increase ({} -> {})",
            report.bound_before,
            report.bound_after
        );
        let mut out = format!("{name}: optimized clean\n");
        out.push_str(&format!(
            "certified step bound: {} (unchanged by bytecode optimization)\n",
            program.certified_step_bound()
        ));
        out.push_str(&report.render_human());
        assert_snapshot(&format!("optimized_{name}"), &out);
    }
}

/// The committed `optimized_*.snap` set is exactly the seven paper
/// schedulers — a golden left behind after a scheduler rename would
/// otherwise silently stop being checked.
#[test]
fn optimizer_goldens_cover_exactly_the_paper_schedulers() {
    progmp_conformance::snapshot::assert_family_covers("optimized_", SNAPSHOT_SCHEDULERS);
}
