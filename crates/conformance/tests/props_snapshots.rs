//! Golden property-certificate snapshots for the bundled paper
//! schedulers plus the pathological `starver` example.
//!
//! Each of the seven headline schedulers' semantic property certificates
//! (work-conservation, per-subflow starvation, redundancy bound,
//! reinjection safety — see `progmp_core::verify::props`) is pinned as
//! `props_<name>.snap` so any change to the analysis's precision shows
//! up as a reviewable diff. The bundled `starver.progmp` negative
//! example pins the refutation path: its certificate must refute
//! subflow-starvation with a spanned witness. Regenerate with
//! `UPDATE_SNAPSHOTS=1 cargo test -p progmp-conformance --test
//! props_snapshots`.

use progmp_conformance::{compile_observed, snapshot::assert_snapshot};
use progmp_core::PropStatus;

/// The seven schedulers highlighted in the paper's evaluation.
const SNAPSHOT_SCHEDULERS: &[&str] = &[
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

fn source_of(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .unwrap_or_else(|| panic!("bundled scheduler {name} not found"))
        .1
}

fn starver_source() -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/schedulers/starver.progmp");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn bundled_schedulers_have_pinned_property_certificates() {
    for &name in SNAPSHOT_SCHEDULERS {
        let program = compile_observed(source_of(name))
            .unwrap_or_else(|e| panic!("bundled scheduler {name} must compile: {e}"));
        let cert = program.property_certificate();
        assert_snapshot(&format!("props_{name}"), &cert.render_human(name));
    }
}

/// The headline claims the paper's schedulers are chosen to illustrate:
/// the guarded min-RTT scheduler is provably work-conserving with no
/// duplication, and the redundant scheduler's duplication factor is
/// exactly the subflow count.
#[test]
fn headline_certificates_match_the_paper_semantics() {
    let min_rtt = compile_observed(source_of("minRttSimple")).expect("compiles");
    let cert = min_rtt.property_certificate();
    assert_eq!(
        cert.work_conservation.status,
        PropStatus::Proved,
        "minRttSimple proves work-conservation: {}",
        cert.render_human("minRttSimple")
    );
    assert_eq!(cert.dup_bound.render(), "1");
    assert_eq!(cert.dup_cap, 1);
    assert!(cert.pops_fully_guarded);

    let redundant = compile_observed(source_of("redundant")).expect("compiles");
    let cert = redundant.property_certificate();
    assert_eq!(
        cert.dup_bound.render(),
        "n_subflows",
        "redundant's duplication factor is the subflow count: {}",
        cert.render_human("redundant")
    );
    assert_eq!(cert.dup_cap, 64, "the bound evaluated at the admission cap");
}

/// The pathological example refutes with an actionable, spanned witness.
#[test]
fn starver_is_refuted_with_a_spanned_witness() {
    let program = compile_observed(&starver_source()).expect("starver compiles (it is admitted)");
    let cert = program.property_certificate();
    assert_eq!(
        cert.starvation.status,
        PropStatus::Refuted,
        "{}",
        cert.render_human("starver")
    );
    assert!(
        !cert.starvation.witness.is_empty(),
        "the refutation carries a witness"
    );
    let step = &cert.starvation.witness[0];
    assert!(
        step.pos.line > 0 && step.pos.col > 0,
        "the witness is spanned: {:?}",
        step
    );
    assert_eq!(cert.allowed_ids.render(), "{0}");
    assert_snapshot("props_starver", &cert.render_human("starver"));
}

/// Stale-golden guard: the committed `props_*.snap` set is exactly the
/// seven paper schedulers plus the bundled `starver` example.
#[test]
fn props_goldens_cover_exactly_the_snapshot_set() {
    let mut expected: Vec<&str> = SNAPSHOT_SCHEDULERS.to_vec();
    expected.push("starver");
    progmp_conformance::snapshot::assert_family_covers("props_", &expected);
}
