//! Golden bytecode-verification snapshots: the seven core paper
//! schedulers' annotated disassembly and verdict, as produced by the
//! dataflow bytecode verifier, must match the checked-in text exactly.
//!
//! These snapshots pin three things at once: the codegen/regalloc output
//! (instruction stream), the debug side table (source spans on every
//! line), and the verifier's abstract interpretation (the register-state
//! annotations and model step bound). Any diff is a deliberate compiler
//! or verifier change — review it as such and regenerate with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p progmp-conformance --test vm_snapshots
//! ```

use progmp_conformance::snapshot::assert_snapshot;

/// Same scheduler set as the simulator golden timelines.
const SNAPSHOT_SCHEDULERS: [&str; 7] = [
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

fn source_of(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
        .unwrap_or_else(|| panic!("bundled scheduler `{name}` missing"))
}

#[test]
fn paper_schedulers_match_golden_bytecode_verdicts() {
    for name in SNAPSHOT_SCHEDULERS {
        let program = progmp_core::compile_named(Some(name), source_of(name))
            .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        assert_snapshot(&format!("bytecode_{name}"), &program.bytecode_report());
    }
}

/// Stale-golden guard: the committed `bytecode_*.snap` set is exactly
/// the seven paper schedulers.
#[test]
fn bytecode_goldens_cover_exactly_the_paper_schedulers() {
    progmp_conformance::snapshot::assert_family_covers("bytecode_", &SNAPSHOT_SCHEDULERS);
}

#[test]
fn bytecode_report_is_deterministic() {
    let src = source_of("redundant");
    let a = progmp_core::compile_named(Some("redundant"), src).expect("compiles");
    let b = progmp_core::compile_named(Some("redundant"), src).expect("compiles");
    assert_eq!(a.bytecode_report(), b.bytecode_report());
}
