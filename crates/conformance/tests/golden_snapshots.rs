//! Golden snapshot tests: the seven core paper schedulers on a fixed
//! two-path topology must reproduce their checked-in per-connection
//! statistics timeline exactly.
//!
//! The simulator is deterministic for a fixed seed and configuration, so
//! any diff here is a real behavior change — scheduler semantics, packet
//! pacing, loss recovery, or stats accounting. Regenerate intentionally
//! changed snapshots with:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p progmp-conformance --test golden_snapshots
//! ```

use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_conformance::snapshot::assert_snapshot;

/// The schedulers snapshotted: the paper's running examples plus the
/// application-defined ones its evaluation features.
const SNAPSHOT_SCHEDULERS: [&str; 7] = [
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

fn source_of(name: &str) -> &'static str {
    progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
        .unwrap_or_else(|| panic!("bundled scheduler `{name}` missing"))
}

/// Fixed scenario: a fast 10 ms / 10 Mbit/s path and a slow 40 ms path,
/// one 50 kB bulk transfer, timelines on, simulation seed 1.
fn run_scenario(scheduler_source: &str) -> String {
    let mut sim = Sim::new(1);
    let conn = sim
        .add_connection(
            ConnectionConfig::new(
                vec![
                    SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
                    SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
                ],
                SchedulerSpec::dsl(scheduler_source),
            )
            .with_timelines(),
        )
        .expect("scheduler compiles");
    sim.app_send_at(conn, 0, 50_000, 0);
    sim.run_to_completion(10 * SECONDS);
    sim.connections[conn].stats.snapshot_text()
}

#[test]
fn paper_schedulers_match_golden_timelines() {
    for name in SNAPSHOT_SCHEDULERS {
        let text = run_scenario(source_of(name));
        assert_snapshot(name, &text);
    }
}

#[test]
fn scenario_is_deterministic() {
    let src = source_of("minRttSimple");
    assert_eq!(run_scenario(src), run_scenario(src));
}
