//! Determinism-under-parallelism tier: the sharded fleet runtime must
//! produce bit-identical per-connection results no matter how many
//! worker threads carve up the fleet.
//!
//! The same 100-connection fleet — all seven paper schedulers, chaotic
//! path mixes, per-connection fault plans — runs at 1, 2, and 8
//! workers. Every connection's [`ConnStats::snapshot_text`] digest must
//! match byte-for-byte across the three partitions, as must the derived
//! counters. This is the contract that makes the scale-benchmark tier
//! trustworthy: worker count is a pure performance knob, never a
//! behavioral one.
//!
//! [`ConnStats::snapshot_text`]: mptcp_sim::stats::ConnStats::snapshot_text

use mptcp_sim::fleet::{run_fleet, ConnScenario, FleetConfig, FleetReport, OracleMode, Workload};
use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, FaultPlan, PathConfig, SchedulerSpec, SubflowConfig};
use progmp_conformance::chaos::SCHEDULERS;
use progmp_core::env::RegId;

const FLEET_SIZE: usize = 100;
const FLEET_SEED: u64 = 0xF1EE7u64;

/// Builds connection `global`'s scenario from its frozen per-connection
/// seed: scheduler round-robins through all seven paper programs, the
/// path mix / flow size / fault plan all derive from the seed alone.
fn scenario(global: usize, seed: u64) -> ConnScenario {
    let scheduler = SCHEDULERS[global % SCHEDULERS.len()];
    let source = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == scheduler)
        .map(|(_, s)| *s)
        .expect("known scheduler");
    let n_paths = 2 + (seed % 2) as usize;
    let subflows = (0..n_paths)
        .map(|p| {
            let rtt_ms = 5 + (seed >> (8 * p)) % 75;
            let loss = ((seed >> 16) % 15) as f64 / 1000.0;
            SubflowConfig::new(
                PathConfig::symmetric(from_millis(rtt_ms), 1_250_000).with_loss(loss),
            )
        })
        .collect();
    let cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl(source));
    let mut sc = ConnScenario::new(
        cfg,
        Workload::Bulk {
            bytes: 20_000 + seed % 40_000,
            prop: 0,
        },
    );
    match scheduler {
        "tap" => sc.registers.push((0, RegId::R1, 1_000_000)),
        "targetRtt" => sc
            .registers
            .push((0, RegId::R1, 40_000 + (seed % 80_000) as i64)),
        _ => {}
    }
    sc.fault_plan = Some(FaultPlan::generate(
        seed ^ 0xC4A0_5C4A,
        n_paths as u32,
        2 * SECONDS,
    ));
    sc
}

fn run_with(workers: usize) -> FleetReport {
    let cfg = FleetConfig::new(FLEET_SIZE, FLEET_SEED)
        .with_workers(workers)
        .with_horizon(300 * SECONDS)
        .with_oracle(OracleMode::Collect);
    run_fleet(&cfg, scenario)
}

#[test]
fn fleet_is_bit_identical_at_1_2_and_8_workers() {
    let base = run_with(1);
    assert_eq!(base.workers, 1);
    assert_eq!(base.per_conn.len(), FLEET_SIZE);
    assert!(
        base.violations.is_empty(),
        "oracle violations at 1 worker: {:?}",
        base.violations
    );

    for workers in [2usize, 8] {
        let run = run_with(workers);
        assert_eq!(run.workers, workers);
        assert_eq!(run.per_conn.len(), FLEET_SIZE);
        assert!(
            run.violations.is_empty(),
            "oracle violations at {workers} workers: {:?}",
            run.violations
        );
        assert_eq!(
            base.events_processed, run.events_processed,
            "total event count drifted at {workers} workers"
        );
        for (a, b) in base.per_conn.iter().zip(&run.per_conn) {
            assert_eq!(a.conn, b.conn);
            assert_eq!(
                a.digest, b.digest,
                "snapshot digest of conn {} differs between 1 and {workers} workers",
                a.conn
            );
            assert_eq!(a.delivered_bytes, b.delivered_bytes, "conn {}", a.conn);
            assert_eq!(a.tx_packets, b.tx_packets, "conn {}", a.conn);
            assert_eq!(
                a.scheduler_executions, b.scheduler_executions,
                "conn {}",
                a.conn
            );
            assert_eq!(a.scheduler_steps, b.scheduler_steps, "conn {}", a.conn);
            assert_eq!(a.all_acked, b.all_acked, "conn {}", a.conn);
        }
        assert_eq!(base.digest(), run.digest());
    }
}

#[test]
fn fleet_digest_tracks_the_seed() {
    let small = |seed| {
        let cfg = FleetConfig::new(10, seed)
            .with_workers(2)
            .with_horizon(120 * SECONDS);
        run_fleet(&cfg, scenario).digest()
    };
    assert_eq!(small(1), small(1), "replays are stable");
    assert_ne!(small(1), small(2), "the seed actually feeds the fleet");
}
