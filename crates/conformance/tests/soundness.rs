//! Verifier-soundness sweep: over a large seed range, every program the
//! admission verifier accepts must execute without runtime errors and
//! within its certified step bound on all three backends.
//!
//! This is the empirical half of the admission-gate contract (the
//! analytical half lives in `progmp_core::verify`'s unit tests). The
//! reject rate is printed so precision regressions show up in CI logs
//! even though they do not fail the test.

use progmp_conformance::soundness::sweep;

const SEEDS: u64 = 500;

#[test]
fn admitted_programs_never_fail_at_runtime() {
    let report = sweep(0, SEEDS, true);
    println!("{}", report.summary());
    assert_eq!(report.checked, SEEDS);
    assert!(
        report.violations.is_empty(),
        "verifier soundness violated:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Precision floor: the verifier must admit a healthy majority of
    // generated programs, otherwise the gate is uselessly conservative.
    assert!(
        report.admitted * 2 > report.checked,
        "verifier rejected too much: {}",
        report.summary()
    );
}
