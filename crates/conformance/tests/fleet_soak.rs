//! Oracle-armed fleet soak: a large fleet of chaotic connections —
//! random fault plans, all seven paper schedulers, mixed path
//! qualities — runs to its horizon with the runtime invariant oracle
//! armed in collect mode on every shard. The pass condition is zero
//! violations: no sequence-space regression, no queue-accounting drift,
//! no liveness stall, on any connection, under any generated fault mix.
//!
//! The bounded 128-connection version runs in the normal workspace
//! sweep; the full 1k-connection soak is `#[ignore]`d here and driven
//! explicitly (release-built) by `ci.sh` and the scale-benchmark tier.

use mptcp_sim::fleet::{run_fleet, ConnScenario, FleetConfig, OracleMode, Workload};
use mptcp_sim::time::{from_millis, SECONDS};
use mptcp_sim::{ConnectionConfig, FaultPlan, PathConfig, SchedulerSpec, SubflowConfig};
use progmp_conformance::chaos::SCHEDULERS;
use progmp_core::env::RegId;

/// Chaotic scenario for connection `global`: everything derives from
/// the frozen per-connection seed.
fn chaos_scenario(global: usize, seed: u64) -> ConnScenario {
    let scheduler = SCHEDULERS[(seed % SCHEDULERS.len() as u64) as usize];
    let source = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == scheduler)
        .map(|(_, s)| *s)
        .expect("known scheduler");
    let n_paths = 2 + (seed >> 3) % 2;
    let subflows = (0..n_paths)
        .map(|p| {
            let rtt_ms = 5 + (seed >> (7 * p + 5)) % 75;
            let loss = ((seed >> 24) % 20) as f64 / 1000.0;
            let rate = [250_000u64, 1_250_000, 5_000_000][((seed >> 11) % 3) as usize];
            SubflowConfig::new(PathConfig::symmetric(from_millis(rtt_ms), rate).with_loss(loss))
        })
        .collect();
    let cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl(source));
    let mut sc = ConnScenario::new(
        cfg,
        Workload::Bulk {
            bytes: 20_000 + seed % 60_000,
            prop: 0,
        },
    );
    match scheduler {
        "tap" => sc.registers.push((0, RegId::R1, 1_000_000)),
        "targetRtt" => sc
            .registers
            .push((0, RegId::R1, 40_000 + (seed % 80_000) as i64)),
        _ => {}
    }
    sc.fault_plan = Some(FaultPlan::generate(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ global as u64,
        n_paths as u32,
        2 * SECONDS,
    ));
    sc
}

fn soak(connections: usize, seed: u64) {
    let cfg = FleetConfig::new(connections, seed)
        .with_horizon(300 * SECONDS)
        .with_oracle(OracleMode::Collect);
    let report = run_fleet(&cfg, chaos_scenario);
    assert_eq!(report.per_conn.len(), connections);
    assert!(
        report.violations.is_empty(),
        "{} invariant violations in a {connections}-connection soak (seed {seed}): first: {}",
        report.violations.len(),
        report.violations[0],
    );
    // Chaos can legitimately strand flows (schedulers with no
    // reinjection logic under a blackout), but the bulk of the fleet
    // must complete — a collapse here means the runtime, not the
    // schedulers, broke.
    assert!(
        report.completion_rate() > 0.5,
        "only {:.0}% of the fleet completed",
        report.completion_rate() * 100.0
    );
}

/// Bounded soak for the default `cargo test` sweep.
#[test]
fn fleet_soak_128_connections_zero_violations() {
    soak(128, 0x50AC_0001);
}

/// The full 1k-connection soak: release-built, driven by `ci.sh`.
/// `cargo test -p conformance --release --test fleet_soak -- --ignored`
#[test]
#[ignore = "large soak; run release-built via ci.sh"]
fn fleet_soak_1000_connections_zero_violations() {
    soak(1000, 0x50AC_1000);
}
