//! Cross-backend differential conformance harness.
//!
//! The ProgMP pipeline ships three execution backends (tree-walking
//! interpreter, AOT closure compiler, bytecode VM) that must be
//! observationally identical: same effect trace, same final environment
//! state, same runtime errors, for every well-typed program on every
//! environment state. This crate enforces that contract by generating
//! random-but-well-typed scheduler programs from a seed
//! ([`gen::Generator`]), executing each on randomized mock environments
//! across all backends ([`differ`]), and shrinking any divergence to a
//! minimal printable repro ([`shrink`]).
//!
//! Everything is deterministic from the seed: `conformance-fuzz --start S
//! --seeds N` explores seeds `[S, S+N)`, and a reported failure replays
//! from its seed number alone. See `TESTING.md` at the repository root
//! for the workflow, including the mutation check that validates the
//! harness can actually catch backend bugs.

#![warn(missing_docs)]

pub mod chaos;
pub mod differ;
pub mod fleet_chaos;
pub mod gen;
pub mod opt_soundness;
pub mod prop_soundness;
pub mod rng;
pub mod shrink;
pub mod snapshot;
pub mod soundness;
pub mod vm_soundness;

/// Compiles `source` in observe mode: the admission verifier still runs
/// and records its [`progmp_core::Verdict`], but error-severity findings
/// do not reject the program.
///
/// The conformance harness needs this because generated programs
/// legitimately trip admission lints (literal zero divisors, popped
/// packets that are never pushed) while remaining well-typed — and the
/// differential contract must hold for those too. The soundness sweep
/// ([`soundness`]) then checks the other direction: programs the
/// verifier *does* admit never raise the runtime errors it excluded.
pub fn compile_observed(
    source: &str,
) -> Result<progmp_core::SchedulerProgram, progmp_core::CompileError> {
    compile_observed_relational(source, true)
}

/// [`compile_observed`] with an explicit octagon-domain toggle, for the
/// differential soundness sweeps that compare the relational verifier
/// against its projection-only (pure interval) fallback.
pub fn compile_observed_relational(
    source: &str,
    relational: bool,
) -> Result<progmp_core::SchedulerProgram, progmp_core::CompileError> {
    progmp_core::compile_with_options(
        None,
        source,
        progmp_core::CompileOptions {
            enforce_admission: false,
            relational_domain: relational,
            ..progmp_core::CompileOptions::default()
        },
    )
}
