//! Cross-backend differential conformance harness.
//!
//! The ProgMP pipeline ships three execution backends (tree-walking
//! interpreter, AOT closure compiler, bytecode VM) that must be
//! observationally identical: same effect trace, same final environment
//! state, same runtime errors, for every well-typed program on every
//! environment state. This crate enforces that contract by generating
//! random-but-well-typed scheduler programs from a seed
//! ([`gen::Generator`]), executing each on randomized mock environments
//! across all backends ([`differ`]), and shrinking any divergence to a
//! minimal printable repro ([`shrink`]).
//!
//! Everything is deterministic from the seed: `conformance-fuzz --start S
//! --seeds N` explores seeds `[S, S+N)`, and a reported failure replays
//! from its seed number alone. See `TESTING.md` at the repository root
//! for the workflow, including the mutation check that validates the
//! harness can actually catch backend bugs.

#![warn(missing_docs)]

pub mod differ;
pub mod gen;
pub mod rng;
pub mod shrink;
pub mod snapshot;
