//! Self-contained deterministic PRNG for the conformance harness.
//!
//! The harness must not depend on external crates (the build environment
//! has no registry access) and must reproduce a failing case from nothing
//! but a seed number, so the generator is a fixed xorshift64* — simple,
//! fast, and stable forever. Changing this algorithm invalidates every
//! recorded seed; don't.

/// xorshift64* generator (Vigna, "An experimental exploration of
/// Marsaglia's xorshift generators, scrambled").
#[derive(Debug, Clone)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator from `seed`. Seed 0 is remapped (xorshift has
    /// an all-zero fixed point).
    pub fn new(seed: u64) -> Self {
        Xorshift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + self.below(span) as i64
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Uniformly picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Xorshift::new(7);
        let mut b = Xorshift::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = Xorshift::new(1);
        let mut b = Xorshift::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = Xorshift::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn helpers_stay_in_bounds() {
        let mut r = Xorshift::new(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
        }
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(r.pick(&items)));
        }
    }

    #[test]
    fn algorithm_is_frozen() {
        // Recorded output of xorshift64* seed 1: changing the algorithm
        // breaks every recorded repro seed, so this test pins it.
        let mut r = Xorshift::new(1);
        assert_eq!(r.next_u64(), 0x47E4_CE4B_896C_DD1D, "first output changed");
    }
}
