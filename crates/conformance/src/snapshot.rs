//! Golden-file snapshot comparison.
//!
//! Snapshots live in `crates/conformance/snapshots/<name>.snap` and are
//! checked into the repository. A test compares its actual output to the
//! stored file; running with `UPDATE_SNAPSHOTS=1` rewrites the files
//! instead, so intentional behavior changes are reviewed as snapshot
//! diffs.

use std::fs;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("snapshots")
        .join(format!("{name}.snap"))
}

/// True when the run should rewrite snapshots instead of comparing.
pub fn update_mode() -> bool {
    std::env::var("UPDATE_SNAPSHOTS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compares `actual` against the stored snapshot `name`, panicking with a
/// diff-friendly message on mismatch. With `UPDATE_SNAPSHOTS=1` the
/// snapshot is (re)written and the comparison skipped.
pub fn assert_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if update_mode() {
        fs::create_dir_all(path.parent().expect("snapshot path has parent"))
            .expect("create snapshots directory");
        fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}: run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let mut msg = format!("snapshot mismatch for {name}\n");
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                msg.push_str(&format!("line {}: expected `{e}`, got `{a}`\n", i + 1));
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            msg.push_str(&format!("line counts differ: expected {el}, got {al}\n"));
        }
        msg.push_str("rerun with UPDATE_SNAPSHOTS=1 to accept the new output\n");
        panic!("{msg}");
    }
}

/// Stale-golden guard: asserts the committed `<prefix><name>.snap` files
/// are *exactly* `expected` — no more, no fewer. A golden left behind
/// after a scheduler rename (or a test that silently stopped covering a
/// name) would otherwise keep passing while pinning nothing.
pub fn assert_family_covers(prefix: &str, expected: &[&str]) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("snapshots");
    let mut on_disk: Vec<String> = fs::read_dir(&dir)
        .expect("snapshots directory exists")
        .filter_map(|e| e.ok()?.file_name().into_string().ok())
        .filter_map(|f| {
            f.strip_prefix(prefix)?
                .strip_suffix(".snap")
                .map(str::to_string)
        })
        .collect();
    on_disk.sort();
    let mut want: Vec<String> = expected.iter().map(|s| s.to_string()).collect();
    want.sort();
    assert_eq!(
        on_disk, want,
        "{prefix}*.snap goldens out of sync with the test's scheduler list"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_stable() {
        let p = snapshot_path("x");
        assert!(p.ends_with("snapshots/x.snap"));
    }

    #[test]
    fn family_guard_accepts_the_committed_optimizer_set() {
        assert_family_covers(
            "optimized_",
            &[
                "minRttSimple",
                "default",
                "roundRobin",
                "redundant",
                "opportunisticRedundant",
                "tap",
                "targetRtt",
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of sync")]
    fn family_guard_rejects_a_missing_golden() {
        assert_family_covers("optimized_", &["minRttSimple", "noSuchScheduler"]);
    }
}
