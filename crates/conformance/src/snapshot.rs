//! Golden-file snapshot comparison.
//!
//! Snapshots live in `crates/conformance/snapshots/<name>.snap` and are
//! checked into the repository. A test compares its actual output to the
//! stored file; running with `UPDATE_SNAPSHOTS=1` rewrites the files
//! instead, so intentional behavior changes are reviewed as snapshot
//! diffs.

use std::fs;
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("snapshots")
        .join(format!("{name}.snap"))
}

/// True when the run should rewrite snapshots instead of comparing.
pub fn update_mode() -> bool {
    std::env::var("UPDATE_SNAPSHOTS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compares `actual` against the stored snapshot `name`, panicking with a
/// diff-friendly message on mismatch. With `UPDATE_SNAPSHOTS=1` the
/// snapshot is (re)written and the comparison skipped.
pub fn assert_snapshot(name: &str, actual: &str) {
    let path = snapshot_path(name);
    if update_mode() {
        fs::create_dir_all(path.parent().expect("snapshot path has parent"))
            .expect("create snapshots directory");
        fs::write(&path, actual).expect("write snapshot");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing snapshot {}: run with UPDATE_SNAPSHOTS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let mut msg = format!("snapshot mismatch for {name}\n");
        for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
            if e != a {
                msg.push_str(&format!("line {}: expected `{e}`, got `{a}`\n", i + 1));
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            msg.push_str(&format!("line counts differ: expected {el}, got {al}\n"));
        }
        msg.push_str("rerun with UPDATE_SNAPSHOTS=1 to accept the new output\n");
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_stable() {
        let p = snapshot_path("x");
        assert!(p.ends_with("snapshots/x.snap"));
    }
}
