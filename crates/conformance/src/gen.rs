//! Seeded generator of well-typed ProgMP programs and randomized
//! environments.
//!
//! Programs are built directly as [`progmp_core::ast`] trees, by
//! construction satisfying every rule `sema` enforces:
//!
//! * globally unique variable names (no redeclaration or shadowing, in
//!   blocks or lambdas);
//! * static typing of every operator, property, aggregate fold, and
//!   builtin;
//! * `POP()` only in effect positions (`VAR` initializers, `PUSH` packet
//!   arguments, `DROP` arguments), never in conditions, lambda bodies,
//!   `GET` indices, or `SET` values;
//! * `NULL` only where a packet/subflow type is inferable, never
//!   `NULL == NULL` or `VAR x = NULL`;
//! * integer literals are non-negative (negation is an explicit unary
//!   node), so the printed program re-parses to the identical tree.
//!
//! A generated program is rendered through the canonical printer and
//! compiled from source, so every case also exercises the lexer, parser,
//! and printer round-trip, not just the backend pipeline.

use crate::rng::Xorshift;
use progmp_core::ast::{BinOp, Expr, ExprKind, Program, Stmt, StmtKind, UnOp};
use progmp_core::env::{PacketProp, QueueKind, RegId, SubflowProp, NUM_REGISTERS};
use progmp_core::error::Pos;
use progmp_core::testenv::MockEnv;
use progmp_core::Type;

fn pos() -> Pos {
    Pos { line: 1, col: 1 }
}

fn expr(kind: ExprKind) -> Expr {
    Expr { pos: pos(), kind }
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt { pos: pos(), kind }
}

/// Tuning knobs of the generator; defaults produce small, dense programs.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum statements per block.
    pub max_block_len: usize,
    /// Maximum expression depth.
    pub max_expr_depth: u32,
    /// Maximum statement nesting depth (IF/FOREACH).
    pub max_stmt_depth: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_block_len: 5,
            max_expr_depth: 4,
            max_stmt_depth: 3,
        }
    }
}

/// The program/environment generator. One instance per seed.
pub struct Generator {
    rng: Xorshift,
    config: GenConfig,
    next_name: u32,
    /// Lexical scope stack: each frame holds `(name, type)` bindings.
    scopes: Vec<Vec<(String, Type)>>,
}

const INT_SUBFLOW_PROPS: [SubflowProp; 13] = [
    SubflowProp::Id,
    SubflowProp::Rtt,
    SubflowProp::RttVar,
    SubflowProp::Cwnd,
    SubflowProp::Ssthresh,
    SubflowProp::SkbsInFlight,
    SubflowProp::Queued,
    SubflowProp::LostSkbs,
    SubflowProp::Mss,
    SubflowProp::Bw,
    SubflowProp::RwndFree,
    SubflowProp::LastActAge,
    SubflowProp::Cost,
];

const BOOL_SUBFLOW_PROPS: [SubflowProp; 3] = [
    SubflowProp::IsBackup,
    SubflowProp::TsqThrottled,
    SubflowProp::Lossy,
];

impl Generator {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        Generator::with_config(seed, GenConfig::default())
    }

    /// Creates a generator with explicit tuning.
    pub fn with_config(seed: u64, config: GenConfig) -> Self {
        Generator {
            rng: Xorshift::new(seed),
            config,
            next_name: 0,
            scopes: vec![Vec::new()],
        }
    }

    /// Generates one well-typed, compilable program.
    ///
    /// Typing is guaranteed by construction, but backend *resource*
    /// limits (the VM's spill-slot budget) can still reject a deeply
    /// nested candidate; those are retried by drawing further from the
    /// seed's RNG stream, so the result stays a pure function of the
    /// seed. A lex/parse/sema rejection is a generator bug and panics.
    pub fn program(&mut self) -> Program {
        for _ in 0..64 {
            self.next_name = 0;
            self.scopes = vec![Vec::new()];
            let len = 1 + self.rng.below(self.config.max_block_len as u64) as usize;
            let candidate = Program {
                body: self.block(len, 0),
            };
            match crate::compile_observed(&candidate.to_string()) {
                Ok(_) => return candidate,
                Err(e) if e.stage == progmp_core::error::Stage::Codegen => continue,
                Err(e) => panic!("generator produced an ill-typed program: {e}\n{candidate}"),
            }
        }
        panic!("generator could not produce a compilable program in 64 attempts")
    }

    /// Generates a randomized environment for differential execution.
    pub fn env_spec(&mut self) -> EnvSpec {
        let mut spec = EnvSpec::default();
        let n_subflows = self.rng.below(4) as u32; // 0..=3, including none
        for i in 0..n_subflows {
            let mut props = Vec::new();
            for p in INT_SUBFLOW_PROPS {
                if self.rng.chance(60) {
                    props.push((p, self.rng.range_i64(0, 100_000)));
                }
            }
            for p in BOOL_SUBFLOW_PROPS {
                if self.rng.chance(30) {
                    props.push((p, 1));
                }
            }
            spec.subflows.push(SubflowSpec {
                id: i,
                props,
                has_window: self.rng.chance(80),
            });
        }
        let n_packets = self.rng.below(7);
        for i in 0..n_packets {
            let queue = *self.rng.pick(&QueueKind::ALL);
            let mut props = Vec::new();
            if self.rng.chance(40) {
                props.push((PacketProp::UserProp, self.rng.range_i64(0, 7)));
            }
            if self.rng.chance(30) {
                props.push((PacketProp::Age, self.rng.range_i64(0, 1_000_000)));
            }
            let mut sent_on = Vec::new();
            if queue != QueueKind::SendQueue && n_subflows > 0 && self.rng.chance(60) {
                sent_on.push(self.rng.below(u64::from(n_subflows)) as u32);
            }
            spec.packets.push(PacketSpec {
                id: i + 1,
                queue,
                seq: i as i64 * 1400,
                size: self.rng.range_i64(1, 1460),
                props,
                sent_on,
            });
        }
        for r in 0..NUM_REGISTERS {
            if self.rng.chance(40) {
                spec.registers[r] = self.rng.range_i64(-10, 100);
            }
        }
        spec
    }

    // ---- scope management -------------------------------------------------

    fn fresh(&mut self, ty: Type) -> String {
        let name = format!("v{}", self.next_name);
        self.next_name += 1;
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .push((name.clone(), ty));
        name
    }

    fn vars_of(&self, ty: Type) -> Vec<String> {
        self.scopes
            .iter()
            .flatten()
            .filter(|(_, t)| *t == ty)
            .map(|(n, _)| n.clone())
            .collect()
    }

    // ---- statements -------------------------------------------------------

    fn block(&mut self, len: usize, depth: u32) -> Vec<Stmt> {
        self.scopes.push(Vec::new());
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.statement(depth));
        }
        self.scopes.pop();
        out
    }

    fn statement(&mut self, depth: u32) -> Stmt {
        let nested_ok = depth < self.config.max_stmt_depth;
        loop {
            let roll = self.rng.below(100);
            let kind = match roll {
                0..=24 => self.var_decl(),
                25..=44 if nested_ok => self.if_stmt(depth),
                45..=54 if nested_ok => self.foreach(depth),
                55..=69 => self.set_reg(),
                70..=87 => self.push(),
                88..=95 => StmtKind::Drop {
                    packet: self.packet_expr(self.config.max_expr_depth, true),
                },
                96..=97 => StmtKind::Return,
                _ => continue, // re-roll when nesting is capped
            };
            return stmt(kind);
        }
    }

    fn var_decl(&mut self) -> StmtKind {
        let d = self.config.max_expr_depth;
        let roll = self.rng.below(100);
        // POP() is allowed here (effect position), so packet declarations
        // get extra weight: they are the idiomatic ProgMP shape
        // (`VAR skb = Q.POP();`).
        let (init, ty) = match roll {
            0..=29 => (self.packet_expr(d, true), Type::Packet),
            30..=49 => (self.int_expr(d, false), Type::Int),
            50..=64 => (self.bool_expr(d), Type::Bool),
            65..=79 => (self.subflow_expr(d), Type::Subflow),
            80..=89 => (self.list_expr(d), Type::SubflowList),
            _ => (self.queue_expr(d), Type::PacketQueue),
        };
        let name = self.fresh(ty);
        StmtKind::VarDecl { name, init }
    }

    fn if_stmt(&mut self, depth: u32) -> StmtKind {
        let cond = self.bool_expr(self.config.max_expr_depth);
        let then_len = 1 + self.rng.below(self.config.max_block_len as u64 / 2 + 1) as usize;
        let then_body = self.block(then_len, depth + 1);
        let else_body = if self.rng.chance(40) {
            let else_len = 1 + self.rng.below(self.config.max_block_len as u64 / 2 + 1) as usize;
            self.block(else_len, depth + 1)
        } else {
            Vec::new()
        };
        StmtKind::If {
            cond,
            then_body,
            else_body,
        }
    }

    fn foreach(&mut self, depth: u32) -> StmtKind {
        let list = self.list_expr(self.config.max_expr_depth);
        // The binder lives in the body scope; sema opens one scope for the
        // binder itself, then blocks inside open their own.
        self.scopes.push(Vec::new());
        let var = self.fresh(Type::Subflow);
        let len = 1 + self.rng.below(2) as usize;
        let body = self.block(len, depth + 1);
        self.scopes.pop();
        StmtKind::Foreach { var, list, body }
    }

    fn set_reg(&mut self) -> StmtKind {
        let reg = RegId::new(1 + self.rng.below(NUM_REGISTERS as u64) as u8)
            .expect("register index in range");
        StmtKind::SetReg {
            reg,
            value: self.int_expr(self.config.max_expr_depth, false),
        }
    }

    fn push(&mut self) -> StmtKind {
        let target = self.subflow_expr(self.config.max_expr_depth);
        let packet = if self.rng.chance(5) {
            expr(ExprKind::Null)
        } else {
            self.packet_expr(self.config.max_expr_depth, true)
        };
        StmtKind::Push { target, packet }
    }

    // ---- expressions ------------------------------------------------------

    /// Integer expression. `in_lambda` suppresses nothing type-wise but is
    /// kept for symmetry; purity is enforced by never emitting POP here.
    fn int_expr(&mut self, depth: u32, in_lambda: bool) -> Expr {
        let vars = self.vars_of(Type::Int);
        if depth == 0 {
            return match self.rng.below(if vars.is_empty() { 2 } else { 3 }) {
                0 => expr(ExprKind::Int(self.int_literal())),
                1 => expr(ExprKind::Reg(self.reg())),
                _ => expr(ExprKind::Var(self.rng.pick(&vars).clone())),
            };
        }
        let _ = in_lambda;
        match self.rng.below(100) {
            0..=14 => expr(ExprKind::Int(self.int_literal())),
            15..=24 => expr(ExprKind::Reg(self.reg())),
            25..=34 if !vars.is_empty() => expr(ExprKind::Var(self.rng.pick(&vars).clone())),
            35..=54 => expr(ExprKind::Binary {
                op: *self
                    .rng
                    .pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div, BinOp::Rem]),
                lhs: Box::new(self.int_expr(depth - 1, in_lambda)),
                rhs: Box::new(self.int_expr(depth - 1, in_lambda)),
            }),
            55..=59 => expr(ExprKind::Unary {
                op: UnOp::Neg,
                expr: Box::new(self.int_expr(depth - 1, in_lambda)),
            }),
            60..=74 => expr(ExprKind::Prop {
                obj: Box::new(self.subflow_expr(depth - 1)),
                name: self.rng.pick(&INT_SUBFLOW_PROPS).name().to_string(),
            }),
            75..=84 => expr(ExprKind::Prop {
                obj: Box::new(self.packet_expr(depth - 1, false)),
                name: self.rng.pick(&PacketProp::ALL).name().to_string(),
            }),
            85..=89 => expr(ExprKind::Prop {
                obj: Box::new(self.list_expr(depth - 1)),
                name: "COUNT".to_string(),
            }),
            90..=93 => expr(ExprKind::Prop {
                obj: Box::new(self.queue_expr(depth - 1)),
                name: "COUNT".to_string(),
            }),
            94..=96 => self.sum_expr(depth, true),
            97..=99 => self.sum_expr(depth, false),
            _ => expr(ExprKind::Int(self.int_literal())),
        }
    }

    fn sum_expr(&mut self, depth: u32, over_list: bool) -> Expr {
        if over_list {
            let obj = Box::new(self.list_expr(depth - 1));
            self.scopes.push(Vec::new());
            let var = self.fresh(Type::Subflow);
            let key = Box::new(self.int_expr(depth - 1, true));
            self.scopes.pop();
            expr(ExprKind::Sum { obj, var, key })
        } else {
            let obj = Box::new(self.queue_expr(depth - 1));
            self.scopes.push(Vec::new());
            let var = self.fresh(Type::Packet);
            let key = Box::new(self.int_expr(depth - 1, true));
            self.scopes.pop();
            expr(ExprKind::Sum { obj, var, key })
        }
    }

    /// Non-negative literal with a bias toward boundary values; negativity
    /// is expressed by an explicit unary minus so printing round-trips.
    fn int_literal(&mut self) -> i64 {
        match self.rng.below(10) {
            0 => 0,
            1 => 1,
            2 => 2,
            3 => 1400,
            4 => 100_000,
            _ => self.rng.range_i64(0, 50),
        }
    }

    fn reg(&mut self) -> RegId {
        RegId::new(1 + self.rng.below(NUM_REGISTERS as u64) as u8).expect("in range")
    }

    fn bool_expr(&mut self, depth: u32) -> Expr {
        let vars = self.vars_of(Type::Bool);
        if depth == 0 {
            if !vars.is_empty() && self.rng.chance(40) {
                return expr(ExprKind::Var(self.rng.pick(&vars).clone()));
            }
            return expr(ExprKind::Bool(self.rng.chance(50)));
        }
        match self.rng.below(100) {
            0..=7 => expr(ExprKind::Bool(self.rng.chance(50))),
            8..=13 if !vars.is_empty() => expr(ExprKind::Var(self.rng.pick(&vars).clone())),
            14..=35 => expr(ExprKind::Binary {
                op: *self.rng.pick(&[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                ]),
                lhs: Box::new(self.int_expr(depth - 1, false)),
                rhs: Box::new(self.int_expr(depth - 1, false)),
            }),
            36..=49 => expr(ExprKind::Binary {
                op: *self.rng.pick(&[BinOp::And, BinOp::Or]),
                lhs: Box::new(self.bool_expr(depth - 1)),
                rhs: Box::new(self.bool_expr(depth - 1)),
            }),
            50..=56 => expr(ExprKind::Unary {
                op: UnOp::Not,
                expr: Box::new(self.bool_expr(depth - 1)),
            }),
            57..=64 => expr(ExprKind::Prop {
                obj: Box::new(self.queue_expr(depth - 1)),
                name: "EMPTY".to_string(),
            }),
            65..=70 => expr(ExprKind::Prop {
                obj: Box::new(self.list_expr(depth - 1)),
                name: "EMPTY".to_string(),
            }),
            71..=77 => expr(ExprKind::Prop {
                obj: Box::new(self.subflow_expr(depth - 1)),
                name: self.rng.pick(&BOOL_SUBFLOW_PROPS).name().to_string(),
            }),
            78..=84 => self.null_comparison(depth),
            85..=90 => expr(ExprKind::SentOn {
                pkt: Box::new(self.packet_expr(depth - 1, false)),
                sbf: Box::new(self.subflow_expr(depth - 1)),
            }),
            91..=96 => expr(ExprKind::HasWindowFor {
                sbf: Box::new(self.subflow_expr(depth - 1)),
                pkt: Box::new(self.packet_expr(depth - 1, false)),
            }),
            _ => expr(ExprKind::Binary {
                op: *self.rng.pick(&[BinOp::Eq, BinOp::Ne]),
                lhs: Box::new(self.packet_expr(depth - 1, false)),
                rhs: Box::new(self.packet_expr(depth - 1, false)),
            }),
        }
    }

    /// `nullable == NULL` / `NULL != nullable` with the typed side pure.
    fn null_comparison(&mut self, depth: u32) -> Expr {
        let typed = if self.rng.chance(50) {
            self.packet_expr(depth - 1, false)
        } else {
            self.subflow_expr(depth - 1)
        };
        let null = expr(ExprKind::Null);
        let (lhs, rhs) = if self.rng.chance(50) {
            (typed, null)
        } else {
            (null, typed)
        };
        expr(ExprKind::Binary {
            op: *self.rng.pick(&[BinOp::Eq, BinOp::Ne]),
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    /// Packet expression. `effect` permits `POP()` (VAR init / PUSH / DROP
    /// argument positions only).
    fn packet_expr(&mut self, depth: u32, effect: bool) -> Expr {
        let vars = self.vars_of(Type::Packet);
        if depth == 0 || (self.rng.chance(25) && !vars.is_empty()) {
            if !vars.is_empty() {
                return expr(ExprKind::Var(self.rng.pick(&vars).clone()));
            }
            // No packet vars in scope: fall back to a queue head.
            return expr(ExprKind::Prop {
                obj: Box::new(self.queue_leaf()),
                name: "TOP".to_string(),
            });
        }
        let roll = self.rng.below(100);
        if effect && roll < 45 {
            return expr(ExprKind::Pop {
                obj: Box::new(self.queue_expr(depth - 1)),
            });
        }
        match roll {
            45..=74 => expr(ExprKind::Prop {
                obj: Box::new(self.queue_expr(depth - 1)),
                name: "TOP".to_string(),
            }),
            _ => {
                let obj = Box::new(self.queue_expr(depth - 1));
                self.scopes.push(Vec::new());
                let var = self.fresh(Type::Packet);
                let key = Box::new(self.int_expr(depth - 1, true));
                self.scopes.pop();
                expr(ExprKind::MinMax {
                    obj,
                    var,
                    key,
                    is_max: self.rng.chance(50),
                })
            }
        }
    }

    fn subflow_expr(&mut self, depth: u32) -> Expr {
        let vars = self.vars_of(Type::Subflow);
        if depth == 0 || (self.rng.chance(30) && !vars.is_empty()) {
            if !vars.is_empty() {
                return expr(ExprKind::Var(self.rng.pick(&vars).clone()));
            }
            return expr(ExprKind::Get {
                obj: Box::new(expr(ExprKind::Subflows)),
                index: Box::new(expr(ExprKind::Int(self.rng.range_i64(0, 3)))),
            });
        }
        match self.rng.below(100) {
            0..=44 => expr(ExprKind::Get {
                obj: Box::new(self.list_expr(depth - 1)),
                index: Box::new(self.int_expr(depth - 1, false)),
            }),
            _ => {
                let obj = Box::new(self.list_expr(depth - 1));
                self.scopes.push(Vec::new());
                let var = self.fresh(Type::Subflow);
                let key = Box::new(self.int_expr(depth - 1, true));
                self.scopes.pop();
                expr(ExprKind::MinMax {
                    obj,
                    var,
                    key,
                    is_max: self.rng.chance(50),
                })
            }
        }
    }

    fn list_expr(&mut self, depth: u32) -> Expr {
        let vars = self.vars_of(Type::SubflowList);
        if depth == 0 {
            if !vars.is_empty() && self.rng.chance(40) {
                return expr(ExprKind::Var(self.rng.pick(&vars).clone()));
            }
            return expr(ExprKind::Subflows);
        }
        match self.rng.below(100) {
            0..=54 => expr(ExprKind::Subflows),
            55..=64 if !vars.is_empty() => expr(ExprKind::Var(self.rng.pick(&vars).clone())),
            _ => {
                let obj = Box::new(self.list_expr(depth - 1));
                self.scopes.push(Vec::new());
                let var = self.fresh(Type::Subflow);
                let pred = Box::new(self.bool_expr(depth - 1));
                self.scopes.pop();
                expr(ExprKind::Filter { obj, var, pred })
            }
        }
    }

    fn queue_leaf(&mut self) -> Expr {
        expr(ExprKind::Queue(*self.rng.pick(&QueueKind::ALL)))
    }

    fn queue_expr(&mut self, depth: u32) -> Expr {
        let vars = self.vars_of(Type::PacketQueue);
        if depth == 0 {
            if !vars.is_empty() && self.rng.chance(40) {
                return expr(ExprKind::Var(self.rng.pick(&vars).clone()));
            }
            return self.queue_leaf();
        }
        match self.rng.below(100) {
            0..=59 => self.queue_leaf(),
            60..=69 if !vars.is_empty() => expr(ExprKind::Var(self.rng.pick(&vars).clone())),
            _ => {
                let obj = Box::new(self.queue_expr(depth - 1));
                self.scopes.push(Vec::new());
                let var = self.fresh(Type::Packet);
                let pred = Box::new(self.bool_expr(depth - 1));
                self.scopes.pop();
                expr(ExprKind::Filter { obj, var, pred })
            }
        }
    }
}

// ---- environment specification -------------------------------------------

/// One subflow of an [`EnvSpec`].
#[derive(Debug, Clone)]
pub struct SubflowSpec {
    /// Identifier.
    pub id: u32,
    /// Non-default properties.
    pub props: Vec<(SubflowProp, i64)>,
    /// Whether `HAS_WINDOW_FOR` reports true.
    pub has_window: bool,
}

/// One packet of an [`EnvSpec`].
#[derive(Debug, Clone)]
pub struct PacketSpec {
    /// Handle.
    pub id: u64,
    /// The queue the packet sits in.
    pub queue: QueueKind,
    /// Data sequence number.
    pub seq: i64,
    /// Payload size.
    pub size: i64,
    /// Extra properties.
    pub props: Vec<(PacketProp, i64)>,
    /// Subflows the packet was already transmitted on.
    pub sent_on: Vec<u32>,
}

/// A declarative, shrinkable description of a [`MockEnv`] starting state.
///
/// The shrinker operates on specs (drop a packet, drop a subflow, zero a
/// register) and rebuilds the concrete environment per attempt, so the
/// minimized repro is printable as plain data.
#[derive(Debug, Clone, Default)]
pub struct EnvSpec {
    /// Subflows, in establishment order.
    pub subflows: Vec<SubflowSpec>,
    /// Packets, in queue-arrival order.
    pub packets: Vec<PacketSpec>,
    /// Initial scheduler registers.
    pub registers: [i64; NUM_REGISTERS],
}

impl EnvSpec {
    /// Materializes the described [`MockEnv`].
    pub fn build(&self) -> MockEnv {
        let mut env = MockEnv::new();
        for s in &self.subflows {
            env.add_subflow(s.id);
            for (p, v) in &s.props {
                env.set_subflow_prop(s.id, *p, *v);
            }
            env.set_has_window(s.id, s.has_window);
        }
        for p in &self.packets {
            env.push_packet(p.queue, p.id, p.seq, p.size);
            for (prop, v) in &p.props {
                env.set_packet_prop(p.id, *prop, *v);
            }
            for s in &p.sent_on {
                env.mark_sent_on(p.id, *s);
            }
        }
        for (i, v) in self.registers.iter().enumerate() {
            if *v != 0 {
                env.set_register(RegId::new(i as u8 + 1).expect("in range"), *v);
            }
        }
        env
    }

    /// Human-readable description for divergence reports.
    pub fn render(&self) -> String {
        self.build().state_fingerprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use progmp_core::printer::print_program;

    #[test]
    fn generated_programs_compile() {
        for seed in 0..200 {
            let mut generator = Generator::new(seed);
            let program = generator.program();
            let src = print_program(&program);
            crate::compile_observed(&src).unwrap_or_else(|e| {
                panic!("seed {seed}: generated program must compile: {e}\n{src}")
            });
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mk = |seed| {
            let mut generator = Generator::new(seed);
            (
                print_program(&generator.program()),
                generator.env_spec().render(),
            )
        };
        assert_eq!(mk(42), mk(42));
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn printed_program_reparses_identically() {
        for seed in 0..100 {
            let mut generator = Generator::new(seed);
            let program = generator.program();
            let printed = print_program(&program);
            let reparsed = progmp_core::parser::parse(&printed).unwrap_or_else(|e| {
                panic!("seed {seed}: printed program must parse: {e}\n{printed}")
            });
            assert_eq!(
                print_program(&reparsed),
                printed,
                "seed {seed}: printing must be idempotent"
            );
        }
    }

    #[test]
    fn env_spec_builds_consistently() {
        let mut generator = Generator::new(9);
        let spec = generator.env_spec();
        assert_eq!(
            spec.build().state_fingerprint(),
            spec.build().state_fingerprint()
        );
    }
}
