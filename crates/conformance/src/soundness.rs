//! Verifier-soundness sweep: admitted programs never fail at runtime.
//!
//! The admission verifier ([`progmp_core::verify`]) claims that any
//! program it admits (a) runs to completion under its certified step
//! bound and (b) never hits a runtime error — the only ones possible
//! being `StepBudgetExhausted` and `MalformedBytecode`, both of which
//! the verifier's cost proof and the bytecode verifier are supposed to
//! exclude. This module checks that claim empirically: for each seed it
//! generates a random well-typed program, compiles it in observe mode,
//! and — when the verifier admits it — executes it several times on
//! every backend under the certified bound. Any execution error, or a
//! step count above the certified bound, is a *soundness violation*.
//!
//! Rejections are not failures (the verifier is allowed to be
//! conservative), but the sweep tracks the reject rate so precision
//! regressions are visible in CI logs.

use crate::gen::Generator;
use progmp_core::Backend;

/// Executions run per backend for each admitted program, to exercise
/// register persistence and repeated queue consumption.
const RUNS_PER_BACKEND: u32 = 3;

/// A counterexample to verifier soundness: the verifier admitted the
/// program, yet an execution misbehaved.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Seed that produced the program and environment.
    pub seed: u64,
    /// Program source (canonical printer output).
    pub source: String,
    /// Backend on which the violation occurred.
    pub backend: Backend,
    /// Certified step bound the program was admitted under.
    pub certified_bound: u64,
    /// What went wrong.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "soundness violation at seed {}", self.seed)?;
        writeln!(f, "backend: {}", self.backend.name())?;
        writeln!(f, "certified step bound: {}", self.certified_bound)?;
        writeln!(f, "detail: {}", self.detail)?;
        writeln!(f, "program:\n{}", self.source)
    }
}

/// Result of checking a single seed.
#[derive(Debug, Clone)]
pub enum SeedOutcome {
    /// The verifier rejected the program; nothing was executed.
    Rejected,
    /// Admitted and every execution stayed within the certified bound.
    Sound,
    /// Admitted, but an execution misbehaved.
    Unsound(Box<Violation>),
}

/// Generates the program and environment for `seed` and checks the
/// soundness contract, panicking on generator bugs (programs that fail
/// to compile) since those invalidate the harness itself.
///
/// `relational` selects the octagon domain; with it on, the seed is also
/// compiled with the projection-only fallback and the admission verdict
/// must move monotonically (anything the weaker domain admits, the
/// octagon must admit too).
pub fn check_seed(seed: u64, relational: bool) -> SeedOutcome {
    let mut generator = Generator::new(seed);
    let candidate = generator.program();
    let spec = generator.env_spec();
    let source = candidate.to_string();
    let program = crate::compile_observed_relational(&source, relational).unwrap_or_else(|e| {
        panic!("seed {seed}: generated program failed to compile: {e}\n{source}")
    });
    if relational {
        let fallback = crate::compile_observed_relational(&source, false).unwrap_or_else(|e| {
            panic!("seed {seed}: projection-only compile failed: {e}\n{source}")
        });
        if fallback.verdict().admitted() && !program.verdict().admitted() {
            return SeedOutcome::Unsound(Box::new(Violation {
                seed,
                source,
                backend: Backend::ALL[0],
                certified_bound: 0,
                detail: "octagon-monotonicity: the projection-only verifier admits the \
                         program but the octagon-enabled verifier rejects it"
                    .to_string(),
            }));
        }
    }
    if !program.verdict().admitted() {
        return SeedOutcome::Rejected;
    }
    let bound = program.certified_step_bound();
    for backend in Backend::ALL {
        // Instances inherit the certified bound as their step budget.
        let mut instance = program.instantiate(backend);
        let mut env = spec.build();
        for round in 0..RUNS_PER_BACKEND {
            match instance.execute(&mut env) {
                Ok(stats) if stats.steps > bound => {
                    return SeedOutcome::Unsound(Box::new(Violation {
                        seed,
                        source,
                        backend,
                        certified_bound: bound,
                        detail: format!(
                            "execution {round} took {} steps, above the certified bound",
                            stats.steps
                        ),
                    }));
                }
                Ok(_) => {}
                Err(e) => {
                    return SeedOutcome::Unsound(Box::new(Violation {
                        seed,
                        source,
                        backend,
                        certified_bound: bound,
                        detail: format!("execution {round} failed: {e}"),
                    }));
                }
            }
        }
    }
    SeedOutcome::Sound
}

/// Aggregate results of a soundness sweep over a seed range.
#[derive(Debug, Clone, Default)]
pub struct SweepReport {
    /// Seeds checked in total.
    pub checked: u64,
    /// Programs the verifier admitted (and which executed soundly).
    pub admitted: u64,
    /// Programs the verifier rejected (conservatism, not failure).
    pub rejected: u64,
    /// Soundness violations found (must be empty for a passing sweep).
    pub violations: Vec<Violation>,
}

impl SweepReport {
    /// Fraction of checked programs the verifier rejected, in percent.
    pub fn reject_rate_percent(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            100.0 * self.rejected as f64 / self.checked as f64
        }
    }

    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "soundness sweep: {} seeds, {} admitted, {} rejected ({:.1}% reject rate), {} violations",
            self.checked,
            self.admitted,
            self.rejected,
            self.reject_rate_percent(),
            self.violations.len()
        )
    }
}

/// Runs [`check_seed`] over seeds `[start, start + count)`.
pub fn sweep(start: u64, count: u64, relational: bool) -> SweepReport {
    let mut report = SweepReport::default();
    for seed in start..start + count {
        report.checked += 1;
        match check_seed(seed, relational) {
            SeedOutcome::Rejected => report.rejected += 1,
            SeedOutcome::Sound => report.admitted += 1,
            SeedOutcome::Unsound(v) => {
                report.admitted += 1;
                report.violations.push(*v);
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_sound() {
        let report = sweep(0, 32, true);
        assert_eq!(report.checked, 32);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        // The generator mostly emits guarded programs; the verifier must
        // not reject everything wholesale.
        assert!(report.admitted > 0, "{}", report.summary());
    }

    #[test]
    fn projection_only_sweep_is_sound() {
        // The octagon-disabled fallback must uphold the same contract.
        let report = sweep(0, 16, false);
        assert_eq!(report.checked, 16);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
