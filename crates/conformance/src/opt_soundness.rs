//! Differential optimizer-soundness sweep and per-pass sabotage check.
//!
//! Two complementary directions for the verified bytecode optimizer
//! ([`progmp_core::opt`]):
//!
//! * **Soundness / precision** ([`sweep`]): for every generated program,
//!   the VM running the *optimized* image must be bit-identical to the
//!   VM running the unoptimized image — same execution result, same
//!   effect trace, same environment fingerprint — on the same random
//!   environment, and the optimized image's bytecode-model step bound
//!   must never exceed the unoptimized one. Fail-open rollbacks (a sound
//!   rewrite the verifier's loop recognition cannot re-certify on a
//!   pathological generated program) are counted, not failed: they are
//!   the validation doing its job.
//! * **Sensitivity** ([`mutation_check`]): each [`Sabotage`] hook breaks
//!   one rewrite in one pass class (dropped live guard, deleted live
//!   increment, CSE over an effectful `POP`, hoisted loop-variant
//!   update, mis-threaded back edge). Per-pass translation validation
//!   must roll every one back and surface a spanned `misoptimization`
//!   diagnostic — a validator that can't catch seeded optimizer bugs
//!   proves nothing about the absence of unseeded ones.

use crate::gen::Generator;
use progmp_core::env::RecordingEnv;
use progmp_core::opt::Sabotage;
use progmp_core::verify::{Lint, Severity};
use progmp_core::{Backend, CompileOptions, SchedulerProgram};

/// One optimizer-soundness violation: the optimized VM diverged from the
/// unoptimized VM, the step bound grew, or a clean compile rolled back.
#[derive(Debug, Clone)]
pub struct OptViolation {
    /// Seed that produced the program.
    pub seed: u64,
    /// Program source (canonical printer output).
    pub source: String,
    /// Where the violation surfaced.
    pub context: String,
    /// Details (diffing both sides, or the offending diagnostics).
    pub detail: String,
}

impl std::fmt::Display for OptViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "optimizer-soundness violation at seed {}", self.seed)?;
        writeln!(f, "context: {}", self.context)?;
        writeln!(f, "detail: {}", self.detail)?;
        writeln!(f, "program:\n{}", self.source)
    }
}

/// Aggregate results of an optimizer-soundness sweep.
#[derive(Debug, Clone, Default)]
pub struct OptSweepReport {
    /// Seeds checked.
    pub checked: u64,
    /// Programs whose optimized VM matched the unoptimized VM exactly.
    pub clean: u64,
    /// Total rewrites the optimizer kept across all seeds.
    pub rewrites: u64,
    /// Seeds where at least one pass was rolled back fail-open (counted,
    /// not failed — the validation rejecting an unverifiable rewrite).
    pub rollbacks: u64,
    /// Violations found (must be empty for a passing sweep).
    pub violations: Vec<OptViolation>,
}

impl OptSweepReport {
    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "opt-soundness sweep: {} seeds, {} clean, {} rewrites kept, {} rolled back fail-open, {} violations",
            self.checked,
            self.clean,
            self.rewrites,
            self.rollbacks,
            self.violations.len()
        )
    }
}

fn compile_pair(source: &str) -> Result<(SchedulerProgram, SchedulerProgram), String> {
    let compile = |optimize: bool| {
        progmp_core::compile_with_options(
            None,
            source,
            CompileOptions {
                enforce_admission: false,
                optimize_bytecode: optimize,
                ..CompileOptions::default()
            },
        )
    };
    let unopt = compile(false).map_err(|e| format!("unoptimized compile failed: {e}"))?;
    let opt = compile(true).map_err(|e| format!("optimized compile failed: {e}"))?;
    Ok((unopt, opt))
}

/// Runs one program on the VM backend, returning the observable outcome.
fn run_vm(
    program: &SchedulerProgram,
    spec: &crate::gen::EnvSpec,
) -> (Result<(), progmp_core::ExecError>, String, String) {
    let mut env = RecordingEnv::new(spec.build());
    let mut instance = program.instantiate(Backend::Vm);
    let result = instance.execute(&mut env).map(|_| ());
    (result, env.trace.render(), env.inner.state_fingerprint())
}

/// Checks one seed: compiles the generated program with and without the
/// bytecode optimizer, runs both images on the VM over the same random
/// environment, and compares every observable. Returns `(kept rewrites,
/// rolled back?, violations)`. Panics if the generated program fails to
/// compile at all (generator bug).
pub fn check_seed(seed: u64) -> (u64, bool, Vec<OptViolation>) {
    let mut generator = Generator::new(seed);
    let candidate = generator.program();
    let spec = generator.env_spec();
    let source = candidate.to_string();
    let (unopt, opt) = compile_pair(&source).unwrap_or_else(|e| {
        panic!("seed {seed}: generated program failed to compile: {e}\n{source}")
    });
    let mut violations = Vec::new();

    let report = opt
        .opt_report()
        .expect("optimized compile records an OptReport");
    if report.bound_after > report.bound_before {
        violations.push(OptViolation {
            seed,
            source: source.clone(),
            context: "step-bound monotonicity".to_string(),
            detail: format!(
                "model bound grew {} -> {}",
                report.bound_before, report.bound_after
            ),
        });
    }
    // Fail-open rollbacks must still carry a spanned diagnostic — a
    // silent rollback would be unauditable.
    let rolled_back = report.passes.iter().any(|p| p.rolled_back);
    if rolled_back
        && !report
            .diagnostics
            .iter()
            .any(|d| d.lint == Lint::Misoptimization && d.pos.line > 0)
    {
        violations.push(OptViolation {
            seed,
            source: source.clone(),
            context: "rollback without a spanned misoptimization diagnostic".to_string(),
            detail: format!("{:?}", report.passes),
        });
    }

    let (r0, t0, f0) = run_vm(&unopt, &spec);
    let (r1, t1, f1) = run_vm(&opt, &spec);
    if r0 != r1 || t0 != t1 || f0 != f1 {
        let mut detail = String::new();
        if r0 != r1 {
            detail.push_str(&format!("result: {r0:?} vs {r1:?}\n"));
        }
        if t0 != t1 {
            detail.push_str(&format!(
                "trace:\n--- unoptimized ---\n{t0}--- optimized ---\n{t1}"
            ));
        }
        if f0 != f1 {
            detail.push_str(&format!(
                "fingerprint:\n--- unoptimized ---\n{f0}--- optimized ---\n{f1}"
            ));
        }
        violations.push(OptViolation {
            seed,
            source: source.clone(),
            context: "optimized vs unoptimized VM execution".to_string(),
            detail,
        });
    }
    (report.total_rewrites(), rolled_back, violations)
}

/// Runs [`check_seed`] over seeds `[start, start + count)`.
pub fn sweep(start: u64, count: u64) -> OptSweepReport {
    let mut report = OptSweepReport::default();
    for seed in start..start + count {
        report.checked += 1;
        let (rewrites, rolled_back, violations) = check_seed(seed);
        report.rewrites += rewrites;
        if rolled_back {
            report.rollbacks += 1;
        }
        if violations.is_empty() && !rolled_back {
            report.clean += 1;
        }
        report.violations.extend(violations);
    }
    report
}

/// One injected unsound rewrite and whether validation caught it.
#[derive(Debug, Clone)]
pub struct SabotageOutcome {
    /// Scheduler the sabotage was injected into.
    pub scheduler: &'static str,
    /// Stable sabotage name (`sccp-drop-live-guard`, ...).
    pub sabotage: &'static str,
    /// Whether the pass was rolled back with a `misoptimization`
    /// diagnostic.
    pub caught: bool,
    /// Whether the diagnostic carried a nonzero source span.
    pub has_span: bool,
    /// First rejecting diagnostic, rendered (empty when not caught).
    pub detail: String,
}

/// Result of the full per-pass sabotage check.
#[derive(Debug, Clone, Default)]
pub struct SabotageReport {
    /// Every injected sabotage.
    pub outcomes: Vec<SabotageOutcome>,
}

impl SabotageReport {
    /// True iff every sabotage was rolled back with a spanned diagnostic.
    pub fn all_caught(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(|o| o.caught && o.has_span)
    }

    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        let caught = self.outcomes.iter().filter(|o| o.caught).count();
        format!(
            "optimizer-sabotage check: {}/{} injected unsound rewrites rolled back",
            caught,
            self.outcomes.len()
        )
    }
}

/// Compiles `minRttSimple` once per [`Sabotage`] hook with that unsound
/// rewrite injected, and records whether per-pass translation validation
/// rolled it back with a spanned `misoptimization` diagnostic. The
/// sabotaged compile must also still execute identically to the
/// unoptimized program (fail-open).
pub fn mutation_check() -> SabotageReport {
    const TARGET: &str = "minRttSimple";
    let (_, source) = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == TARGET)
        .expect("bundled scheduler minRttSimple exists");
    let mut report = SabotageReport::default();
    for sabotage in Sabotage::ALL {
        let program = progmp_core::compile_with_options(
            None,
            source,
            CompileOptions {
                enforce_admission: false,
                optimize_bytecode: true,
                opt_sabotage: Some(sabotage),
                ..CompileOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{TARGET} compiles fail-open under sabotage: {e}"));
        let opt_report = program
            .opt_report()
            .expect("optimized compile records an OptReport");
        let diag = opt_report
            .diagnostics
            .iter()
            .find(|d| d.lint == Lint::Misoptimization && d.severity == Severity::Warning);
        let rolled_back = opt_report.passes.iter().any(|p| p.rolled_back);
        report.outcomes.push(SabotageOutcome {
            scheduler: TARGET,
            sabotage: sabotage.name(),
            caught: rolled_back && diag.is_some(),
            has_span: diag.map(|d| d.pos.line > 0).unwrap_or(false),
            detail: diag.map(|d| d.to_string()).unwrap_or_default(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_opt_sweep_is_clean() {
        let report = sweep(0, 32);
        assert_eq!(report.checked, 32);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.rewrites > 0, "{}", report.summary());
    }

    #[test]
    fn every_sabotage_class_is_rolled_back_with_a_span() {
        let report = mutation_check();
        assert_eq!(report.outcomes.len(), Sabotage::ALL.len());
        assert!(
            report.all_caught(),
            "every injected unsound rewrite rolled back with a spanned diagnostic:\n{}",
            report
                .outcomes
                .iter()
                .map(|o| format!(
                    "  caught={} span={} {} — {}",
                    o.caught, o.has_span, o.sabotage, o.detail
                ))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
