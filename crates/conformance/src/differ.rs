//! Differential execution of one program across all backends.
//!
//! A program diverges when any backend disagrees with the interpreter
//! (the reference) on any of:
//!
//! * the execution result (`Ok` vs which [`ExecError`]),
//! * the recorded [`EffectTrace`] (registers written, packets pushed or
//!   dropped, in order),
//! * the final environment fingerprint (queue contents, transmissions,
//!   packet state).
//!
//! Step counts and other performance statistics legitimately differ per
//! backend and are deliberately *not* compared.

use crate::gen::{EnvSpec, Generator};
use progmp_core::env::{EffectTrace, RecordingEnv};
use progmp_core::{Backend, CompileError, ExecError};

/// What one backend did with the program.
#[derive(Debug, Clone)]
pub struct BackendOutcome {
    /// The backend that ran.
    pub backend: Backend,
    /// Execution result, with backend-specific statistics erased.
    pub result: Result<(), ExecError>,
    /// Every effect the execution applied.
    pub trace: EffectTrace,
    /// Final environment state fingerprint.
    pub fingerprint: String,
}

/// A reproducible cross-backend disagreement.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Seed that produced the case, when known.
    pub seed: Option<u64>,
    /// Program source (canonical printer output).
    pub source: String,
    /// The environment the program ran on.
    pub env: EnvSpec,
    /// Per-backend outcomes, in [`Backend::ALL`] order.
    pub outcomes: Vec<BackendOutcome>,
}

impl Divergence {
    /// Full repro report: seed, program, environment, and each backend's
    /// observable outcome.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str("=== cross-backend divergence ===\n");
        if let Some(seed) = self.seed {
            out.push_str(&format!("seed: {seed}\n"));
        }
        out.push_str("--- program ---\n");
        out.push_str(&self.source);
        out.push_str("--- environment ---\n");
        out.push_str(&self.env.render());
        for o in &self.outcomes {
            out.push_str(&format!("--- backend {} ---\n", o.backend.name()));
            match &o.result {
                Ok(()) => out.push_str("result: ok\n"),
                Err(e) => out.push_str(&format!("result: error: {e}\n")),
            }
            out.push_str(&o.trace.render());
            out.push_str(&o.fingerprint);
        }
        out
    }
}

/// Runs `source` on a copy of `spec`'s environment under every backend.
///
/// Returns `Ok(None)` when all backends agree, `Ok(Some(divergence))`
/// otherwise, and `Err` if the program does not compile (a generator bug
/// when the source came from [`Generator`]).
///
/// Compiles in observe mode ([`crate::compile_observed`]): the
/// differential contract covers every well-typed program, including
/// ones the admission gate would reject.
pub fn run_differential(source: &str, spec: &EnvSpec) -> Result<Option<Divergence>, CompileError> {
    let program = crate::compile_observed(source)?;
    let mut outcomes = Vec::with_capacity(Backend::ALL.len());
    for backend in Backend::ALL {
        let mut env = RecordingEnv::new(spec.build());
        let mut instance = program.instantiate(backend);
        let result = instance.execute(&mut env).map(|_| ());
        outcomes.push(BackendOutcome {
            backend,
            result,
            trace: env.trace,
            fingerprint: env.inner.state_fingerprint(),
        });
    }
    let reference = &outcomes[0];
    let agrees = outcomes[1..].iter().all(|o| {
        o.result == reference.result
            && o.trace == reference.trace
            && o.fingerprint == reference.fingerprint
    });
    if agrees {
        Ok(None)
    } else {
        Ok(Some(Divergence {
            seed: None,
            source: source.to_string(),
            env: spec.clone(),
            outcomes,
        }))
    }
}

/// Generates the program and environment for `seed` and runs the
/// differential check, panicking on generator bugs (programs that fail to
/// compile) since those invalidate the harness itself.
pub fn check_seed(seed: u64) -> Option<Divergence> {
    let mut generator = Generator::new(seed);
    let program = generator.program();
    let spec = generator.env_spec();
    let source = program.to_string();
    match run_differential(&source, &spec) {
        Ok(None) => None,
        Ok(Some(mut d)) => {
            d.seed = Some(seed);
            Some(d)
        }
        Err(e) => panic!("seed {seed}: generated program failed to compile: {e}\n{source}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundled_min_rtt_agrees_across_backends() {
        let src =
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";
        let mut generator = Generator::new(1234);
        let spec = generator.env_spec();
        assert!(run_differential(src, &spec).unwrap().is_none());
    }

    #[test]
    fn report_contains_all_sections() {
        // Force a fake divergence to exercise the report path.
        let mut generator = Generator::new(5);
        let spec = generator.env_spec();
        let src = "RETURN;";
        let program = progmp_core::compile(src).unwrap();
        let mut outcomes = Vec::new();
        for backend in Backend::ALL {
            let mut env = RecordingEnv::new(spec.build());
            let mut instance = program.instantiate(backend);
            let result = instance.execute(&mut env).map(|_| ());
            outcomes.push(BackendOutcome {
                backend,
                result,
                trace: env.trace,
                fingerprint: env.inner.state_fingerprint(),
            });
        }
        let d = Divergence {
            seed: Some(5),
            source: src.to_string(),
            env: spec,
            outcomes,
        };
        let report = d.report();
        assert!(report.contains("seed: 5"));
        assert!(report.contains("RETURN;"));
        assert!(report.contains("backend interpreter"));
        assert!(report.contains("backend aot"));
        assert!(report.contains("backend vm"));
    }
}
