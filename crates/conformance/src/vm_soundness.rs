//! Bytecode-verifier soundness sweep and seeded codegen-mutation check.
//!
//! Two complementary directions for the translation-validation pair
//! ([`progmp_core::verify::vm`]):
//!
//! * **Soundness / precision** ([`sweep`]): for every generated program,
//!   the bytecode our own compiler emits must validate cleanly against
//!   the HIR admission certificate — any error-severity finding
//!   (including a `miscompile`) on correct codegen is a false positive
//!   that would reject working schedulers at load time. The sweep also
//!   re-verifies the constant-subflow-count specialized images the VM
//!   backend actually executes.
//! * **Sensitivity** ([`mutation_check`]): seeded in-place mutations of
//!   the compiled image (broken loop increments, swapped helpers,
//!   corrupted branch targets, clobbered null-handle initializations)
//!   simulate real codegen/register-allocator bugs; translation
//!   validation must reject every one with a `miscompile` diagnostic
//!   carrying a real source span. A harness that can't catch seeded
//!   bugs proves nothing about the absence of unseeded ones.

use crate::gen::Generator;
use progmp_core::bytecode::{AluOp, Helper, Insn};
use progmp_core::exec::NULL_HANDLE;
use progmp_core::verify::vm::verify_bytecode;
use progmp_core::verify::{Lint, Severity, VerifyConfig};

/// Subflow counts the sweep re-specializes each program for, covering
/// the empty, small, and cap-saturating cases.
const SPECIALIZE_COUNTS: [i64; 3] = [0, 3, 64];

/// One bytecode-verifier false positive: the verifier flagged code our
/// own compiler generated.
#[derive(Debug, Clone)]
pub struct VmViolation {
    /// Seed that produced the program.
    pub seed: u64,
    /// Program source (canonical printer output).
    pub source: String,
    /// Where the violation surfaced.
    pub context: String,
    /// The offending diagnostics, rendered.
    pub detail: String,
}

impl std::fmt::Display for VmViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "bytecode-verifier violation at seed {}", self.seed)?;
        writeln!(f, "context: {}", self.context)?;
        writeln!(f, "detail: {}", self.detail)?;
        writeln!(f, "program:\n{}", self.source)
    }
}

/// Aggregate results of a bytecode-verifier sweep.
#[derive(Debug, Clone, Default)]
pub struct VmSweepReport {
    /// Seeds checked.
    pub checked: u64,
    /// Programs whose generated and specialized images all validated.
    pub clean: u64,
    /// Bytecode images verified in total (base + specialized).
    pub images: u64,
    /// False positives found (must be empty for a passing sweep).
    pub violations: Vec<VmViolation>,
}

impl VmSweepReport {
    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "vm-soundness sweep: {} seeds, {} clean, {} images verified, {} violations",
            self.checked,
            self.clean,
            self.images,
            self.violations.len()
        )
    }
}

fn error_lines(diags: &[progmp_core::Diagnostic]) -> String {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

/// Checks one seed: the compiled bytecode must validate against the HIR
/// certificate, and every specialized image must pass the standalone
/// bytecode verifier. Panics if the generated program fails to compile
/// (generator bug — in enforcing pipelines the new `vm-verify` stage
/// surfaces there as a `CompileError`, but observe mode records instead).
pub fn check_seed(seed: u64) -> (u64, Vec<VmViolation>) {
    let mut generator = Generator::new(seed);
    let candidate = generator.program();
    let source = candidate.to_string();
    let program = crate::compile_observed(&source).unwrap_or_else(|e| {
        panic!("seed {seed}: generated program failed to compile: {e}\n{source}")
    });
    let mut images = 1;
    let mut violations = Vec::new();
    let verdict = program.bytecode_verdict();
    if !verdict.admitted() {
        violations.push(VmViolation {
            seed,
            source: source.clone(),
            context: "translation validation of the generated image".to_string(),
            detail: error_lines(&verdict.diagnostics),
        });
    }
    for n in SPECIALIZE_COUNTS {
        images += 1;
        let specialized = progmp_core::vm::specialize_subflow_count(program.bytecode(), n);
        let v = verify_bytecode(
            &specialized,
            Some(program.debug_table()),
            &VerifyConfig::default(),
        );
        if !v.admitted() {
            violations.push(VmViolation {
                seed,
                source: source.clone(),
                context: format!("re-verification of the image specialized for {n} subflows"),
                detail: error_lines(&v.diagnostics),
            });
        }
    }
    (images, violations)
}

/// Runs [`check_seed`] over seeds `[start, start + count)`.
pub fn sweep(start: u64, count: u64) -> VmSweepReport {
    let mut report = VmSweepReport::default();
    for seed in start..start + count {
        report.checked += 1;
        let (images, violations) = check_seed(seed);
        report.images += images;
        if violations.is_empty() {
            report.clean += 1;
        }
        report.violations.extend(violations);
    }
    report
}

/// One seeded compiler-bug simulation applied to a compiled scheduler.
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// Scheduler the mutation was applied to.
    pub scheduler: &'static str,
    /// What was mutated.
    pub description: String,
    /// Whether translation validation rejected the mutated image with a
    /// `miscompile` diagnostic.
    pub caught: bool,
    /// Whether the rejecting diagnostic carried a nonzero source span.
    pub has_span: bool,
    /// First rejecting diagnostic, rendered (empty when not caught).
    pub detail: String,
}

/// Result of the full mutation check.
#[derive(Debug, Clone, Default)]
pub struct MutationReport {
    /// Every applied mutation.
    pub outcomes: Vec<MutationOutcome>,
}

impl MutationReport {
    /// True iff every mutation was rejected with a spanned miscompile.
    pub fn all_caught(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(|o| o.caught && o.has_span)
    }

    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        let caught = self.outcomes.iter().filter(|o| o.caught).count();
        format!(
            "codegen-mutation check: {}/{} seeded miscompiles caught statically",
            caught,
            self.outcomes.len()
        )
    }
}

/// In-place mutations simulating codegen/regalloc bugs. Replacements
/// keep instruction indices stable so the debug side table stays
/// aligned — exactly the situation after a miscompiled instruction.
fn mutations(code: &[Insn]) -> Vec<(usize, Insn, String)> {
    let mut out = Vec::new();
    let mut nop_done = false;
    let mut helper_done = false;
    let mut target_done = false;
    let mut null_done = false;
    for (pc, insn) in code.iter().enumerate() {
        match *insn {
            // (a) Loop increment becomes a no-op: the loop never
            // terminates. The bound/termination analysis must notice.
            Insn::AluImm {
                op: AluOp::Add,
                dst,
                imm: 1,
            } if !nop_done => {
                nop_done = true;
                out.push((
                    pc,
                    Insn::AluImm {
                        op: AluOp::Add,
                        dst,
                        imm: 0,
                    },
                    format!("pc {pc}: loop increment r{dst} += 1 rewritten to += 0"),
                ));
            }
            // (b) Helper swap: a subflow-property read becomes a
            // packet-property read. Signature + audit must notice.
            Insn::Call {
                helper: Helper::SubflowProp,
            } if !helper_done => {
                helper_done = true;
                out.push((
                    pc,
                    Insn::Call {
                        helper: Helper::PacketProp,
                    },
                    format!("pc {pc}: call SubflowProp swapped for PacketProp"),
                ));
            }
            // (c) Branch target corrupted out of range: structural
            // verification must fail, surfaced as a miscompile.
            Insn::Jmp { cond, lhs, rhs, .. } if !target_done => {
                target_done = true;
                out.push((
                    pc,
                    Insn::Jmp {
                        cond,
                        lhs,
                        rhs,
                        off: i32::MAX / 2,
                    },
                    format!("pc {pc}: branch offset corrupted out of range"),
                ));
            }
            // (d) A null-handle initialization clobbered with a bogus
            // scalar: downstream handle uses become kind-confused.
            Insn::MovImm { dst, imm } if imm == NULL_HANDLE && !null_done => {
                null_done = true;
                out.push((
                    pc,
                    Insn::MovImm { dst, imm: 12_345 },
                    format!("pc {pc}: NULL-handle initialization r{dst} clobbered with 12345"),
                ));
            }
            _ => {}
        }
    }
    out
}

/// Compiles the named bundled schedulers, applies each seeded mutation
/// in place, and records whether translation validation against the
/// *original* program's HIR certificate catches it.
pub fn mutation_check() -> MutationReport {
    // minRttSimple exercises the list-minmax scan; redundant exercises
    // multi-push foreach loops — together they cover all four mutation
    // classes.
    const TARGETS: [&str; 2] = ["minRttSimple", "redundant"];
    let mut report = MutationReport::default();
    for name in TARGETS {
        let (_, source) = progmp_schedulers::sources::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("bundled scheduler {name} exists"));
        let program =
            crate::compile_observed(source).unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        for (pc, replacement, description) in mutations(&program.bytecode().code) {
            let mut image = program.bytecode().clone();
            image.code[pc] = replacement;
            let verdict = program.validate_bytecode(&image);
            let miscompile = verdict
                .diagnostics
                .iter()
                .find(|d| d.lint == Lint::Miscompile && d.severity == Severity::Error);
            report.outcomes.push(MutationOutcome {
                scheduler: name,
                description,
                caught: !verdict.admitted() && miscompile.is_some(),
                has_span: miscompile.map(|d| d.pos.line > 0).unwrap_or(false),
                detail: miscompile.map(|d| d.to_string()).unwrap_or_default(),
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_vm_sweep_is_clean() {
        let report = sweep(0, 32);
        assert_eq!(report.checked, 32);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.images >= 32 * 4, "{}", report.summary());
    }

    #[test]
    fn seeded_miscompiles_are_caught_with_spans() {
        let report = mutation_check();
        assert!(
            report.outcomes.len() >= 4,
            "all four mutation classes applied: {:?}",
            report.outcomes
        );
        assert!(
            report.all_caught(),
            "every seeded miscompile rejected with a spanned diagnostic:\n{}",
            report
                .outcomes
                .iter()
                .map(|o| format!(
                    "  caught={} span={} {} — {}",
                    o.caught, o.has_span, o.description, o.detail
                ))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
