//! Failure-case minimization.
//!
//! Given a program + environment pair for which some predicate holds
//! (normally "the backends diverge"), the shrinker greedily applies
//! structure-preserving reductions until a fixpoint:
//!
//! * delete any single statement (at any nesting depth),
//! * splice an `IF`/`FOREACH` body into its parent block,
//! * replace an `IF` condition with `TRUE` or `FALSE`,
//! * drop a subflow or packet from the environment, zero a register.
//!
//! Each candidate must still compile (checked by printing and
//! recompiling — deleting a `VAR` that later statements use is rejected
//! here) and must still satisfy the predicate. Because every accepted
//! step strictly shrinks either the statement count or the environment,
//! termination is guaranteed.

use crate::gen::EnvSpec;
use progmp_core::ast::{Expr, ExprKind, Program, Stmt, StmtKind};
use progmp_core::error::Pos;

/// Predicate over a candidate case. Returns true when the (possibly
/// shrunk) case still exhibits the behavior being minimized.
pub type Predicate<'a> = &'a mut dyn FnMut(&Program, &EnvSpec) -> bool;

/// Total number of statements, recursively.
pub fn stmt_count(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| {
            1 + match &s.kind {
                StmtKind::If {
                    then_body,
                    else_body,
                    ..
                } => stmt_count(then_body) + stmt_count(else_body),
                StmtKind::Foreach { body, .. } => stmt_count(body),
                _ => 0,
            }
        })
        .sum()
}

/// A single reduction applied to a preorder statement index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reduction {
    /// Delete the statement entirely.
    Delete,
    /// Replace an `IF`/`FOREACH` with its body's statements.
    Splice,
    /// Replace an `IF` condition with a boolean literal.
    LiteralCond(bool),
}

/// Outcome of trying a reduction at one preorder index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reduced {
    /// The target statement was changed.
    Applied,
    /// The target statement was found but the reduction does not apply
    /// to it (e.g. splicing a leaf).
    NoOp,
    /// The target index lies beyond this block.
    NotFound,
}

/// Applies `reduction` to the `n`-th statement (preorder) of `body`,
/// decrementing `n` as statements are passed over.
fn reduce_nth(body: &mut Vec<Stmt>, n: &mut usize, reduction: Reduction) -> Reduced {
    let mut i = 0;
    while i < body.len() {
        if *n == 0 {
            match reduction {
                Reduction::Delete => {
                    body.remove(i);
                    return Reduced::Applied;
                }
                Reduction::Splice => {
                    let replacement = match &mut body[i].kind {
                        StmtKind::If {
                            then_body,
                            else_body,
                            ..
                        } => {
                            let mut spliced = std::mem::take(then_body);
                            spliced.append(else_body);
                            spliced
                        }
                        StmtKind::Foreach { body: inner, .. } => std::mem::take(inner),
                        _ => return Reduced::NoOp,
                    };
                    body.splice(i..=i, replacement);
                    return Reduced::Applied;
                }
                Reduction::LiteralCond(value) => {
                    if let StmtKind::If { cond, .. } = &mut body[i].kind {
                        if matches!(cond.kind, ExprKind::Bool(_)) {
                            return Reduced::NoOp;
                        }
                        *cond = Expr {
                            pos: Pos { line: 1, col: 1 },
                            kind: ExprKind::Bool(value),
                        };
                        return Reduced::Applied;
                    }
                    return Reduced::NoOp;
                }
            }
        }
        *n -= 1;
        match &mut body[i].kind {
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                match reduce_nth(then_body, n, reduction) {
                    Reduced::NotFound => {}
                    done => return done,
                }
                match reduce_nth(else_body, n, reduction) {
                    Reduced::NotFound => {}
                    done => return done,
                }
            }
            StmtKind::Foreach { body: inner, .. } => match reduce_nth(inner, n, reduction) {
                Reduced::NotFound => {}
                done => return done,
            },
            _ => {}
        }
        i += 1;
    }
    Reduced::NotFound
}

fn compiles(program: &Program) -> bool {
    // Observe mode: shrunken repros may legitimately trip admission
    // lints (that is often the point of the repro), but they must stay
    // well-typed so the report replays.
    crate::compile_observed(&program.to_string()).is_ok()
}

/// One full pass over all program reductions; returns true if any
/// candidate was accepted into `program`.
fn shrink_program_pass(program: &mut Program, spec: &EnvSpec, pred: Predicate<'_>) -> bool {
    let reductions = [
        Reduction::Delete,
        Reduction::Splice,
        Reduction::LiteralCond(true),
        Reduction::LiteralCond(false),
    ];
    for reduction in reductions {
        let total = stmt_count(&program.body);
        for index in 0..total {
            let mut candidate = program.clone();
            let mut n = index;
            if reduce_nth(&mut candidate.body, &mut n, reduction) != Reduced::Applied {
                continue;
            }
            if candidate.body.is_empty() {
                continue; // empty programs are not valid schedulers
            }
            if compiles(&candidate) && pred(&candidate, spec) {
                *program = candidate;
                return true;
            }
        }
    }
    false
}

/// One full pass over all environment reductions; returns true if any
/// candidate was accepted into `spec`.
fn shrink_env_pass(program: &Program, spec: &mut EnvSpec, pred: Predicate<'_>) -> bool {
    for i in 0..spec.packets.len() {
        let mut candidate = spec.clone();
        candidate.packets.remove(i);
        if pred(program, &candidate) {
            *spec = candidate;
            return true;
        }
    }
    for i in 0..spec.subflows.len() {
        let mut candidate = spec.clone();
        let removed = candidate.subflows.remove(i).id;
        for p in &mut candidate.packets {
            p.sent_on.retain(|s| *s != removed);
        }
        if pred(program, &candidate) {
            *spec = candidate;
            return true;
        }
    }
    for i in 0..spec.registers.len() {
        if spec.registers[i] == 0 {
            continue;
        }
        let mut candidate = spec.clone();
        candidate.registers[i] = 0;
        if pred(program, &candidate) {
            *spec = candidate;
            return true;
        }
    }
    false
}

/// Shrinks `(program, spec)` to a locally minimal case still satisfying
/// `pred`. The inputs must satisfy `pred` already; the result always
/// does.
pub fn shrink(mut program: Program, mut spec: EnvSpec, pred: Predicate<'_>) -> (Program, EnvSpec) {
    debug_assert!(pred(&program, &spec), "shrink input must satisfy predicate");
    loop {
        let changed = shrink_program_pass(&mut program, &spec, pred)
            || shrink_env_pass(&program, &mut spec, pred);
        if !changed {
            return (program, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Generator;
    use progmp_core::parser::parse;

    #[test]
    fn counts_statements_recursively() {
        let p = parse("IF (TRUE) { RETURN; SET(R1, 1); } ELSE { RETURN; } RETURN;").unwrap();
        assert_eq!(stmt_count(&p.body), 5);
    }

    #[test]
    fn deletes_trailing_statement() {
        let p = parse("SET(R1, 1); SET(R2, 2);").unwrap();
        let spec = EnvSpec::default();
        let mut pred = |prog: &Program, _: &EnvSpec| prog.to_string().contains("R1");
        let (shrunk, _) = shrink(p, spec, &mut pred);
        assert_eq!(stmt_count(&shrunk.body), 1);
        assert!(shrunk.to_string().contains("R1"));
    }

    #[test]
    fn splices_if_bodies() {
        let p = parse("IF (R1 > 0) { SET(R2, 7); }").unwrap();
        let spec = EnvSpec::default();
        let mut pred = |prog: &Program, _: &EnvSpec| prog.to_string().contains("SET(R2, 7)");
        let (shrunk, _) = shrink(p, spec, &mut pred);
        // Minimal form keeps only the SET, with the IF gone entirely.
        assert_eq!(shrunk.to_string().trim(), "SET(R2, 7);");
    }

    #[test]
    fn rejects_deleting_used_var_decl() {
        let p = parse("VAR x = R1; SET(R2, x);").unwrap();
        let spec = EnvSpec::default();
        let mut pred = |prog: &Program, _: &EnvSpec| prog.to_string().contains("SET(R2");
        let (shrunk, _) = shrink(p, spec, &mut pred);
        // The VAR cannot be deleted (the SET uses it), so both remain.
        assert_eq!(stmt_count(&shrunk.body), 2);
    }

    #[test]
    fn shrinks_environment() {
        let mut generator = Generator::new(77);
        let spec = generator.env_spec();
        let p = parse("RETURN;").unwrap();
        let mut pred = |_: &Program, _: &EnvSpec| true;
        let (_, shrunk) = shrink(p, spec, &mut pred);
        assert!(shrunk.packets.is_empty());
        assert!(shrunk.subflows.is_empty());
        assert!(shrunk.registers.iter().all(|r| *r == 0));
    }

    #[test]
    fn generated_cases_shrink_small() {
        // A synthetic predicate ("program contains a PUSH") must shrink
        // any generated program to a handful of lines.
        for seed in [3u64, 11, 29] {
            let mut generator = Generator::new(seed);
            let program = generator.program();
            let spec = generator.env_spec();
            if !program.to_string().contains(".PUSH(") {
                continue;
            }
            let mut pred = |prog: &Program, _: &EnvSpec| prog.to_string().contains(".PUSH(");
            let (shrunk, _) = shrink(program, spec, &mut pred);
            assert!(
                shrunk.to_string().lines().count() <= 10,
                "seed {seed} shrunk repro too large:\n{shrunk}"
            );
        }
    }
}
