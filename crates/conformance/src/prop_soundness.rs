//! Property-soundness sweep and analysis-weakening sensitivity check.
//!
//! Two complementary directions for the scheduler-property verifier
//! ([`progmp_core::verify::props`]):
//!
//! * **Soundness** ([`sweep`]): for every generated program, derive the
//!   property certificate and run the program on all three backends over
//!   the same random environment. Every claim the verifier *proved* must
//!   hold in the observed execution — a proved-work-conserving program
//!   must push when the precondition held, no `PUSH` may target an id
//!   outside the certificate's allowed set, no packet may be pushed more
//!   often than the closed-form duplication bound evaluated at the
//!   actual subflow count, and a proved-guarded program must never
//!   observe a `NULL` pop. The dynamic checks are the *simulator
//!   oracle's own* ([`mptcp_sim::oracle::InvariantOracle::check_properties`]),
//!   so the sweep cross-validates the static analysis against the same
//!   code path the chaos tier arms.
//! * **Sensitivity** ([`mutation_check`]): each
//!   [`progmp_core::verify::props::PropWeakening`] hook
//!   deliberately weakens one analysis step (loops assumed to iterate,
//!   nullable push operands ignored, loop multiplicity dropped,
//!   transient properties treated as identities, pops assumed guarded).
//!   For every weakening there is a crafted scheduler + environment
//!   where the weakened certificate makes a false claim — and the
//!   dynamic check must catch it. An oracle that can't catch seeded
//!   analysis bugs proves nothing about the absence of unseeded ones.

use crate::gen::{EnvSpec, Generator, SubflowSpec};
use mptcp_sim::oracle::{InvariantOracle, PropObservation};
use progmp_core::env::{Action, QueueKind, SchedulerEnv, SubflowProp};
use progmp_core::exec::ExecCtx;
use progmp_core::testenv::MockEnv;
use progmp_core::verify::props::PropWeakening;
use progmp_core::{Backend, CompileOptions, PropertyCertificate, SchedulerProgram};

/// One property-soundness violation: a statically proved claim failed
/// dynamically.
#[derive(Debug, Clone)]
pub struct PropViolation {
    /// Seed that produced the program (u64::MAX for crafted cases).
    pub seed: u64,
    /// Backend the violating execution ran on.
    pub backend: Backend,
    /// Program source.
    pub source: String,
    /// Which property invariant failed (oracle catalogue name).
    pub invariant: &'static str,
    /// Offending values.
    pub detail: String,
}

impl std::fmt::Display for PropViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "property-soundness violation at seed {} on {:?}",
            self.seed, self.backend
        )?;
        writeln!(f, "invariant: {}", self.invariant)?;
        writeln!(f, "detail: {}", self.detail)?;
        writeln!(f, "program:\n{}", self.source)
    }
}

/// Aggregate results of a property-soundness sweep.
#[derive(Debug, Clone, Default)]
pub struct PropSweepReport {
    /// Seeds checked.
    pub checked: u64,
    /// Programs whose certificate proved work-conservation.
    pub wc_proved: u64,
    /// Programs with at least one refuted property.
    pub refuted: u64,
    /// Executions skipped because a backend reported a runtime error
    /// (counted, not failed — admission soundness is `--soundness`'s
    /// job).
    pub exec_errors: u64,
    /// Violations found (must be empty for a passing sweep).
    pub violations: Vec<PropViolation>,
}

impl PropSweepReport {
    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        format!(
            "prop-soundness sweep: {} seeds x 3 backends, {} wc-proved, {} with refutations, {} exec errors, {} violations",
            self.checked,
            self.wc_proved,
            self.refuted,
            self.exec_errors,
            self.violations.len()
        )
    }
}

/// Runs `program` once on `backend` against a fresh copy of `env`,
/// returning the oracle observation (or `None` on a runtime error).
fn observe(program: &SchedulerProgram, backend: Backend, env: &MockEnv) -> Option<PropObservation> {
    let pre_q_nonempty = !env.queue(QueueKind::SendQueue).is_empty();
    let pre_subflows_nonempty = !env.subflows().is_empty();
    // Mirror the work-conservation analysis' availability precondition
    // (and the simulator engine's pre-round sampling): not TSQ-throttled,
    // not lossy, congestion window above in-flight + queued (wrapping,
    // as the DSL's ADD evaluates).
    let pre_avail_subflow = env.subflows().iter().any(|&s| {
        let prop = |p| env.subflow_prop(s, p);
        prop(SubflowProp::TsqThrottled) == 0
            && prop(SubflowProp::Lossy) == 0
            && prop(SubflowProp::Cwnd)
                > prop(SubflowProp::SkbsInFlight).wrapping_add(prop(SubflowProp::Queued))
    });
    let n_subflows = env.subflows().len() as u64;
    let mut ctx = ExecCtx::new(env, program.certified_step_bound());
    let mut instance = program.instantiate(backend);
    instance.execute_raw(&mut ctx).ok()?;
    let (_regs, actions, stats) = ctx.finish();
    let push_targets = actions
        .iter()
        .filter_map(|a| match a {
            Action::Push { subflow, packet } => Some((subflow.0, *packet)),
            _ => None,
        })
        .collect();
    Some(PropObservation {
        pre_q_nonempty,
        pre_subflows_nonempty,
        pre_avail_subflow,
        pushes: u64::from(stats.pushes),
        null_pops: u64::from(stats.null_pops),
        push_targets,
        n_subflows,
    })
}

/// Checks one observed execution against `cert` through the simulator
/// oracle, returning any violations tagged with `seed`/`backend`.
fn check_observation(
    seed: u64,
    backend: Backend,
    source: &str,
    cert: &PropertyCertificate,
    obs: &PropObservation,
) -> Vec<PropViolation> {
    let mut oracle = InvariantOracle::new(format!("prop-soundness seed {seed}"), false);
    oracle.check_properties(0, 0, cert, obs);
    oracle
        .violations
        .iter()
        .map(|v| PropViolation {
            seed,
            backend,
            source: source.to_string(),
            invariant: v.invariant,
            detail: v.detail.clone(),
        })
        .collect()
}

/// Checks one seed: generates a program and a random environment,
/// derives the property certificate, and validates it against the
/// observed execution on every backend. Returns `(wc proved?, any
/// refutation?, exec errors, violations)`.
///
/// `relational` selects the octagon domain. With it on, the certificate
/// is also derived with the projection-only fallback and every verdict
/// must move monotonically toward PROVED (the octagon may sharpen a
/// verdict, never lose one).
pub fn check_seed(seed: u64, relational: bool) -> (bool, bool, u64, Vec<PropViolation>) {
    let mut generator = Generator::new(seed);
    let candidate = generator.program();
    let spec = generator.env_spec();
    let source = candidate.to_string();
    let compile = |rel: bool| {
        progmp_core::compile_with_options(
            None,
            &source,
            CompileOptions {
                enforce_admission: false,
                relational_domain: rel,
                ..CompileOptions::default()
            },
        )
        .unwrap_or_else(|e| {
            panic!("seed {seed}: generated program failed to compile: {e}\n{source}")
        })
    };
    let program = compile(relational);
    let cert = program.property_certificate().clone();
    let wc_proved = cert.work_conservation.status == progmp_core::PropStatus::Proved;
    let refuted = !cert.clean();
    let mut exec_errors = 0;
    let mut violations = Vec::new();
    if relational {
        let fallback = compile(false);
        let cert_off = fallback.property_certificate();
        for ((lint, on), (_, off)) in cert.outcomes().iter().zip(cert_off.outcomes().iter()) {
            if off.status == progmp_core::PropStatus::Proved
                && on.status != progmp_core::PropStatus::Proved
            {
                violations.push(PropViolation {
                    seed,
                    backend: Backend::ALL[0],
                    source: source.clone(),
                    invariant: "octagon-monotonicity",
                    detail: format!(
                        "{}: proved by the projection-only analysis but {} with the \
                         octagon enabled",
                        lint.name(),
                        on.status.name()
                    ),
                });
            }
        }
    }
    for backend in Backend::ALL {
        let env = spec.build();
        match observe(&program, backend, &env) {
            Some(obs) => {
                violations.extend(check_observation(seed, backend, &source, &cert, &obs));
            }
            None => exec_errors += 1,
        }
    }
    (wc_proved, refuted, exec_errors, violations)
}

/// Runs [`check_seed`] over seeds `[start, start + count)`.
pub fn sweep(start: u64, count: u64, relational: bool) -> PropSweepReport {
    let mut report = PropSweepReport::default();
    for seed in start..start + count {
        report.checked += 1;
        let (wc, refuted, exec_errors, violations) = check_seed(seed, relational);
        if wc {
            report.wc_proved += 1;
        }
        if refuted {
            report.refuted += 1;
        }
        report.exec_errors += exec_errors;
        report.violations.extend(violations);
    }
    report
}

/// One injected analysis weakening and whether the dynamic check caught
/// the false claim it introduces.
#[derive(Debug, Clone)]
pub struct WeakeningOutcome {
    /// Stable weakening name (`assume-loops-run`, ...).
    pub weakening: &'static str,
    /// Whether the weakened certificate's false claim was violated
    /// dynamically on every backend.
    pub caught: bool,
    /// Whether the *unweakened* certificate stayed silent on the same
    /// execution (the weakening, not the checker, is what broke).
    pub sound_baseline: bool,
    /// First violation detail (empty when not caught).
    pub detail: String,
}

/// Result of the full analysis-weakening sensitivity check.
#[derive(Debug, Clone, Default)]
pub struct WeakeningReport {
    /// Every injected weakening.
    pub outcomes: Vec<WeakeningOutcome>,
}

impl WeakeningReport {
    /// True iff every weakening's false claim was caught dynamically and
    /// every unweakened baseline stayed clean.
    pub fn all_caught(&self) -> bool {
        !self.outcomes.is_empty() && self.outcomes.iter().all(|o| o.caught && o.sound_baseline)
    }

    /// One-line human summary for CI logs.
    pub fn summary(&self) -> String {
        let caught = self.outcomes.iter().filter(|o| o.caught).count();
        format!(
            "prop-weakening check: {}/{} injected analysis weakenings caught dynamically",
            caught,
            self.outcomes.len()
        )
    }
}

/// A crafted scheduler + environment that exposes one weakening: the
/// weakened analysis makes a claim the execution falsifies.
fn weakening_case(weakening: PropWeakening) -> (&'static str, EnvSpec) {
    // The default environment: one established subflow (id 0, RTT 10,
    // open congestion window so it counts as *available* under the
    // work-conservation precondition), one packet in the send queue.
    let mut spec = EnvSpec {
        subflows: vec![SubflowSpec {
            id: 0,
            props: vec![(SubflowProp::Rtt, 10), (SubflowProp::Cwnd, 10)],
            has_window: true,
        }],
        ..EnvSpec::default()
    };
    spec.packets.push(crate::gen::PacketSpec {
        id: 1,
        queue: QueueKind::SendQueue,
        seq: 0,
        size: 1400,
        props: vec![],
        sent_on: vec![],
    });
    match weakening {
        // The filtered loop never iterates (no subflow has RTT < 0), so
        // nothing is pushed; assuming loops run falsely proves
        // work-conservation.
        PropWeakening::AssumeLoopsRun => (
            "FOREACH (VAR sbf IN SUBFLOWS.FILTER(s => s.RTT < 0)) { sbf.PUSH(Q.TOP); }",
            spec,
        ),
        // The filter is empty at runtime, the MIN is NULL, and the PUSH
        // no-ops; ignoring nullable operands falsely proves
        // work-conservation.
        PropWeakening::IgnoreNullableOperands => (
            "VAR f = SUBFLOWS.FILTER(s => s.RTT < 0).MIN(s => s.RTT);\nf.PUSH(Q.POP());",
            spec,
        ),
        // Two subflows make the broadcast push the same packet twice;
        // dropping loop multiplicity falsely certifies a bound of 1.
        PropWeakening::IgnoreLoopMultiplicity => {
            spec.subflows.push(SubflowSpec {
                id: 1,
                props: vec![(SubflowProp::Rtt, 20), (SubflowProp::Cwnd, 10)],
                has_window: true,
            });
            ("FOREACH (VAR sbf IN SUBFLOWS) { sbf.PUSH(Q.TOP); }", spec)
        }
        // The filter selects by RTT, a transient property; treating it
        // as an identity falsely restricts the allowed-id set to {0},
        // while the execution pushes on subflow 1 (the one whose RTT is
        // actually 0).
        PropWeakening::TreatTransientAsId => {
            spec.subflows.push(SubflowSpec {
                id: 1,
                props: vec![(SubflowProp::Rtt, 0), (SubflowProp::Cwnd, 10)],
                has_window: true,
            });
            (
                "VAR f = SUBFLOWS.FILTER(s => s.RTT == 0).MIN(s => s.ID);\n\
                 IF (f != NULL AND !Q.EMPTY) { f.PUSH(Q.POP()); }",
                spec,
            )
        }
        // The reinjection queue is empty, so the unguarded POP observes
        // NULL; assuming pops guarded falsely certifies
        // `pops_fully_guarded`.
        PropWeakening::AssumePopsGuarded => (
            "VAR p = RQ.POP();\nIF (p != NULL AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(s => s.RTT).PUSH(p); }",
            spec,
        ),
        // The contradictory relational guard pair (R1 < R2 then
        // R1 >= R2) makes the no-push RETURN path infeasible only while
        // the octagon tracks the R1/R2 relation: dropping relations must
        // lose the work-conservation proof (checked statically in
        // `mutation_check`), while the concrete run (registers default
        // to 0, taking the ELSE push) keeps the clean baseline silent.
        PropWeakening::OctagonDropRelations => (
            "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) {\n\
             IF (R1 < R2) {\n\
             IF (R1 >= R2) { RETURN; }\n\
             SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());\n\
             } ELSE {\n\
             SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP());\n\
             }\n\
             }",
            spec,
        ),
    }
}

/// Compiles each crafted scheduler once with its [`PropWeakening`]
/// injected and once clean, runs both against the crafted environment on
/// every backend, and records whether the weakened certificate's false
/// claim is caught dynamically while the unweakened certificate stays
/// silent.
pub fn mutation_check() -> WeakeningReport {
    let mut report = WeakeningReport::default();
    for weakening in PropWeakening::ALL {
        let (source, spec) = weakening_case(weakening);
        let compile = |weaken: Option<PropWeakening>| {
            progmp_core::compile_with_options(
                None,
                source,
                CompileOptions {
                    enforce_admission: false,
                    prop_weakening: weaken,
                    ..CompileOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("weakening case {}: compile failed: {e}", weakening.name()))
        };
        let weakened = compile(Some(weakening));
        let clean = compile(None);
        if weakening == PropWeakening::OctagonDropRelations {
            // Not an unsoundness injection: the weakening only discards
            // precision, so the catch is *losing a PROVED* — the clean
            // certificate proves work-conservation via the relational
            // guard contradiction, the weakened one must not. The clean
            // certificate must still stay dynamically silent on every
            // backend, pinning the proof's soundness.
            let clean_wc = clean.property_certificate().work_conservation.status;
            let weak_wc = weakened.property_certificate().work_conservation.status;
            let caught = clean_wc == progmp_core::PropStatus::Proved
                && weak_wc != progmp_core::PropStatus::Proved;
            let mut baseline_clean = true;
            for backend in Backend::ALL {
                let env = spec.build();
                let obs = observe(&clean, backend, &env)
                    .unwrap_or_else(|| panic!("weakening case {} must execute", weakening.name()));
                if !check_observation(
                    u64::MAX,
                    backend,
                    source,
                    clean.property_certificate(),
                    &obs,
                )
                .is_empty()
                {
                    baseline_clean = false;
                }
            }
            report.outcomes.push(WeakeningOutcome {
                weakening: weakening.name(),
                caught,
                sound_baseline: baseline_clean,
                detail: if caught {
                    format!(
                        "work-conservation {} -> {} when the relational domain is dropped",
                        clean_wc.name(),
                        weak_wc.name()
                    )
                } else {
                    String::new()
                },
            });
            continue;
        }
        let mut caught_everywhere = true;
        let mut baseline_clean = true;
        let mut detail = String::new();
        for backend in Backend::ALL {
            let env = spec.build();
            let obs = observe(&weakened, backend, &env)
                .unwrap_or_else(|| panic!("weakening case {} must execute", weakening.name()));
            let violations = check_observation(
                u64::MAX,
                backend,
                source,
                weakened.property_certificate(),
                &obs,
            );
            match violations.first() {
                Some(v) if detail.is_empty() => {
                    detail = format!("{}: {}", v.invariant, v.detail);
                }
                Some(_) => {}
                None => caught_everywhere = false,
            }
            // The same execution under the honest certificate must be
            // violation-free, pinning the blame on the weakening.
            let env = spec.build();
            let obs = observe(&clean, backend, &env)
                .unwrap_or_else(|| panic!("weakening case {} must execute", weakening.name()));
            if !check_observation(
                u64::MAX,
                backend,
                source,
                clean.property_certificate(),
                &obs,
            )
            .is_empty()
            {
                baseline_clean = false;
            }
        }
        report.outcomes.push(WeakeningOutcome {
            weakening: weakening.name(),
            caught: caught_everywhere,
            sound_baseline: baseline_clean,
            detail,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_prop_sweep_is_clean() {
        let report = sweep(0, 64, true);
        assert_eq!(report.checked, 64);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn projection_only_prop_sweep_is_clean() {
        // With the octagon force-disabled the weaker certificates must
        // still be dynamically sound.
        let report = sweep(0, 32, false);
        assert_eq!(report.checked, 32);
        assert!(
            report.violations.is_empty(),
            "{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn every_weakening_is_caught_dynamically() {
        let report = mutation_check();
        assert_eq!(report.outcomes.len(), PropWeakening::ALL.len());
        assert!(
            report.all_caught(),
            "every injected analysis weakening caught, with a clean baseline:\n{}",
            report
                .outcomes
                .iter()
                .map(|o| format!(
                    "  caught={} baseline-clean={} {} — {}",
                    o.caught, o.sound_baseline, o.weakening, o.detail
                ))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
