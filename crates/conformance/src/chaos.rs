//! Chaos-mode differential conformance: seeded fault plans against the
//! full simulator, diffed across all three execution backends.
//!
//! Where [`crate::differ`] exercises one scheduler execution on a mock
//! environment, chaos mode drives whole simulated transfers — paths,
//! congestion control, the receiver, and a generated
//! [`mptcp_sim::FaultPlan`] (blackouts, burst loss, jitter, rwnd stalls,
//! subflow churn) — with the runtime invariant oracle watching every
//! event. A case fails when
//!
//! * any backend's final trace digest differs from the others
//!   (per-backend cost counters such as `scheduler_steps` are excluded:
//!   they legitimately differ), or
//! * the invariant oracle reports a violation on any backend, or
//! * the run fails to complete inside the generous simulated horizon.
//!
//! Failing cases are shrunk with the same greedy-fixpoint discipline as
//! [`crate::shrink`]: drop fault clauses, shorten the flow, simplify the
//! path mix — keeping whatever still fails, until nothing smaller does.
//! Everything replays from the case seed alone.

use crate::rng::Xorshift;
use mptcp_sim::time::{from_millis, SimTime, SECONDS};
use mptcp_sim::{ConnectionConfig, FaultPlan, PathConfig, SchedulerSpec, Sim, SubflowConfig};
use progmp_core::env::RegId;
use progmp_core::Backend;

/// Domain separation for the case generator, so chaos seed `n` shares
/// nothing with program-generator seed `n`.
const CHAOS_SALT: u64 = 0x51AB_0C4A_0551_AB0C;

/// The backends every case runs on.
pub const BACKENDS: [Backend; 3] = [Backend::Interpreter, Backend::Aot, Backend::Vm];

/// The paper schedulers the sweep draws from (§3.4/§5): each must behave
/// identically on every backend under every fault plan.
pub const SCHEDULERS: [&str; 7] = [
    "minRttSimple",
    "default",
    "roundRobin",
    "redundant",
    "opportunisticRedundant",
    "tap",
    "targetRtt",
];

/// Simulated-time budget per run; transfers that miss it count as a
/// liveness failure for the case.
const HORIZON: SimTime = 300 * SECONDS;

/// One generated chaos case: everything needed to replay a simulated
/// transfer bit-identically, derived purely from [`ChaosCase::seed`].
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// The generating seed (also the simulator seed).
    pub seed: u64,
    /// Scheduler name in [`progmp_schedulers::sources::ALL`].
    pub scheduler: &'static str,
    /// Per-path round-trip times (milliseconds).
    pub rtts_ms: Vec<u64>,
    /// Baseline random loss applied to every path.
    pub loss: f64,
    /// Path rate in bytes/second.
    pub rate: u64,
    /// Application bytes to transfer (backlogged bulk source).
    pub flow_bytes: u64,
    /// The fault schedule.
    pub plan: FaultPlan,
    /// Initial `R1` value (application intent for `tap`/`targetRtt`).
    pub r1: Option<i64>,
}

impl ChaosCase {
    /// Derives a case from `seed`. Pure: equal seeds give equal cases.
    pub fn generate(seed: u64) -> ChaosCase {
        let mut rng = Xorshift::new(seed ^ CHAOS_SALT);
        let scheduler = SCHEDULERS[rng.below(SCHEDULERS.len() as u64) as usize];
        let n_paths = 2 + rng.below(2); // 2..=3
        let rtts_ms: Vec<u64> = (0..n_paths).map(|_| 5 + rng.below(75)).collect();
        let loss = rng.below(20) as f64 / 1000.0; // 0..2%
        let rate = [250_000u64, 1_250_000, 5_000_000][rng.below(3) as usize];
        let flow_bytes = 20_000 + rng.below(180_000);
        let plan = FaultPlan::generate(rng.next_u64(), n_paths as u32, 2 * SECONDS);
        let r1 = match scheduler {
            // Target bandwidth (bytes/s) for tap; tolerable RTT (µs) for
            // targetRtt — both must be non-degenerate to exercise the
            // interesting branches.
            "tap" => Some(1_000_000),
            "targetRtt" => Some(40_000 + rng.below(80_000) as i64),
            _ => None,
        };
        ChaosCase {
            seed,
            scheduler,
            rtts_ms,
            loss,
            rate,
            flow_bytes,
            plan,
            r1,
        }
    }

    /// One-line replayable description.
    pub fn describe(&self) -> String {
        format!(
            "seed={} scheduler={} paths={:?}ms loss={:.3} rate={} flow={} r1={:?} plan=[{}]",
            self.seed,
            self.scheduler,
            self.rtts_ms,
            self.loss,
            self.rate,
            self.flow_bytes,
            self.r1,
            self.plan.render().lines().collect::<Vec<_>>().join("; "),
        )
    }
}

/// Result of running one case on one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendRun {
    /// Backend-independent trace digest (see [`run_backend`]).
    pub digest: String,
    /// Rendered invariant-oracle violations (empty on a clean run).
    pub violations: Vec<String>,
    /// Whether the transfer fully completed inside the horizon.
    pub completed: bool,
    /// An incomplete transfer whose leftover data is stranded in the
    /// reinjection queue under a scheduler that provably never pops
    /// `RQ`: an expected stall (no reinjection logic), not a failure.
    pub stall_expected: bool,
}

/// Runs `case` on `backend`. With `inject_bug` the receiver's hidden
/// double-delivery defect is enabled (the mutation check's target).
pub fn run_backend(case: &ChaosCase, backend: Backend, inject_bug: bool) -> BackendRun {
    let source = progmp_schedulers::sources::ALL
        .iter()
        .find(|(n, _)| *n == case.scheduler)
        .map(|(_, s)| *s)
        .expect("known scheduler");
    let mut sim = Sim::new(case.seed);
    sim.enable_oracle(format!("chaos seed {}", case.seed), false);
    let subflows = case
        .rtts_ms
        .iter()
        .map(|ms| {
            SubflowConfig::new(
                PathConfig::symmetric(from_millis(*ms), case.rate).with_loss(case.loss),
            )
        })
        .collect();
    let cfg = ConnectionConfig::new(subflows, SchedulerSpec::dsl_on(source, backend));
    let conn = sim.add_connection(cfg).expect("paper schedulers compile");
    if inject_bug {
        sim.connections[conn].receiver.inject_double_delivery_bug();
    }
    if let Some(v) = case.r1 {
        sim.set_register_at(conn, 0, RegId::R1, v);
    }
    sim.add_bulk_source(conn, case.flow_bytes, 0);
    sim.apply_fault_plan(conn, &case.plan);
    sim.run_to_completion(HORIZON);

    let c = &sim.connections[conn];
    // The digest deliberately excludes per-backend cost counters
    // (`scheduler_steps`, `scheduler_host_ns`): they measure *how* a
    // backend executed, not *what* it did.
    let mut digest = String::new();
    for line in c.stats.snapshot_text().lines() {
        if !line.starts_with("scheduler_steps") {
            digest.push_str(line);
            digest.push('\n');
        }
    }
    digest.push_str(&format!(
        "reinjections {}\ndelivered_total {}\nall_acked {}\n",
        c.stats.reinjections,
        c.receiver.delivered_total,
        c.all_acked(),
    ));
    let rq_stranded = {
        use progmp_core::env::{QueueKind, SchedulerEnv};
        c.queue(QueueKind::SendQueue).is_empty() && !c.queue(QueueKind::Reinject).is_empty()
    };
    BackendRun {
        digest,
        violations: sim
            .oracle_violations()
            .iter()
            .map(|v| v.to_string())
            .collect(),
        completed: c.all_acked(),
        stall_expected: !c.all_acked() && rq_stranded && !c.pops_rq,
    }
}

/// Failure modes of one case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosFailure {
    /// Two backends produced different digests.
    Divergence {
        /// Name of the first disagreeing backend.
        backend: &'static str,
        /// First differing digest line: `(reference, disagreeing)`.
        first_diff: (String, String),
    },
    /// The invariant oracle flagged at least one violation.
    Violation(Vec<String>),
    /// The transfer missed the simulated-time horizon on some backend.
    Stalled,
}

impl std::fmt::Display for ChaosFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosFailure::Divergence {
                backend,
                first_diff,
            } => write!(
                f,
                "backend {backend} diverges: {:?} != {:?}",
                first_diff.0, first_diff.1
            ),
            ChaosFailure::Violation(v) => write!(f, "invariant violations: {}", v.join(" | ")),
            ChaosFailure::Stalled => write!(f, "transfer did not complete within the horizon"),
        }
    }
}

/// Runs `case` on every backend (optionally with the injected receiver
/// bug) and classifies the outcome. `None` means the case is clean.
pub fn check_case(case: &ChaosCase, inject_bug: bool) -> Option<ChaosFailure> {
    let runs: Vec<BackendRun> = BACKENDS
        .iter()
        .map(|b| run_backend(case, *b, inject_bug))
        .collect();
    for run in &runs {
        if !run.violations.is_empty() {
            return Some(ChaosFailure::Violation(run.violations.clone()));
        }
    }
    let reference = &runs[0];
    for (backend, run) in BACKENDS.iter().zip(&runs).skip(1) {
        if run.digest != reference.digest {
            let first_diff = reference
                .digest
                .lines()
                .zip(run.digest.lines())
                .find(|(a, b)| a != b)
                .map(|(a, b)| (a.to_string(), b.to_string()))
                .unwrap_or_else(|| ("<length mismatch>".into(), "<length mismatch>".into()));
            return Some(ChaosFailure::Divergence {
                backend: backend.name(),
                first_diff,
            });
        }
    }
    if runs.iter().any(|r| !r.completed && !r.stall_expected) {
        return Some(ChaosFailure::Stalled);
    }
    None
}

/// Greedy fixpoint shrink of a failing case, mirroring [`crate::shrink`]:
/// each accepted reduction strictly shrinks the case, so termination is
/// guaranteed. `still_fails` re-runs the candidate and reports whether
/// the failure persists.
pub fn shrink_case(
    mut case: ChaosCase,
    still_fails: &mut dyn FnMut(&ChaosCase) -> bool,
) -> ChaosCase {
    loop {
        let mut reduced = false;

        // Drop any single fault clause.
        let mut i = 0;
        while i < case.plan.clauses.len() {
            let mut cand = case.clone();
            cand.plan.clauses.remove(i);
            if still_fails(&cand) {
                case = cand;
                reduced = true;
            } else {
                i += 1;
            }
        }

        // Drop the last path, when no clause references it.
        if case.rtts_ms.len() > 1 {
            let last = case.rtts_ms.len() as u32 - 1;
            if case.plan.max_subflow().is_none_or(|m| m < last) {
                let mut cand = case.clone();
                cand.rtts_ms.pop();
                if still_fails(&cand) {
                    case = cand;
                    reduced = true;
                }
            }
        }

        // Halve the flow (floor at one segment).
        if case.flow_bytes > 1_400 {
            let mut cand = case.clone();
            cand.flow_bytes = (cand.flow_bytes / 2).max(1_400);
            if still_fails(&cand) {
                case = cand;
                reduced = true;
            }
        }

        // Remove the baseline loss, then the register intent.
        if case.loss > 0.0 {
            let mut cand = case.clone();
            cand.loss = 0.0;
            if still_fails(&cand) {
                case = cand;
                reduced = true;
            }
        }
        if case.r1.is_some() {
            let mut cand = case.clone();
            cand.r1 = None;
            if still_fails(&cand) {
                case = cand;
                reduced = true;
            }
        }

        if !reduced {
            return case;
        }
    }
}

/// Outcome of a chaos sweep.
#[derive(Debug, Default)]
pub struct ChaosReport {
    /// Cases executed.
    pub cases: u64,
    /// `(seed, shrunk description, failure)` per failing case.
    pub failures: Vec<(u64, String, ChaosFailure)>,
}

/// Sweeps seeds `[start, start + count)`, shrinking every failure.
/// `progress` is called after each case with `(seed, failed)`.
pub fn sweep(start: u64, count: u64, progress: &mut dyn FnMut(u64, bool)) -> ChaosReport {
    let mut report = ChaosReport::default();
    for seed in start..start.saturating_add(count) {
        let case = ChaosCase::generate(seed);
        let failure = check_case(&case, false);
        report.cases += 1;
        progress(seed, failure.is_some());
        if let Some(failure) = failure {
            let shrunk = shrink_case(case, &mut |cand| check_case(cand, false).is_some());
            let failure_now = check_case(&shrunk, false).unwrap_or(failure);
            report.failures.push((seed, shrunk.describe(), failure_now));
        }
    }
    report
}

/// The harness-validation mutation check: with the receiver's hidden
/// double-delivery defect enabled, a redundant-scheduler case must be
/// flagged by the conservation oracle, and the shrunk repro must still
/// catch it. Returns the shrunk case description, or `None` when the
/// defect escaped (a harness bug).
pub fn mutation_check(seed: u64) -> Option<String> {
    let mut case = ChaosCase::generate(seed);
    // Duplicate arrivals are what trip the defect; the redundant
    // scheduler guarantees them regardless of the drawn fault plan.
    case.scheduler = "redundant";
    case.r1 = None;
    let caught = |cand: &ChaosCase| {
        matches!(
            check_case(cand, true),
            Some(ChaosFailure::Violation(v))
                if v.iter().any(|m| m.contains("conservation-delivery"))
        )
    };
    if !caught(&case) {
        return None;
    }
    let shrunk = shrink_case(case, &mut |cand| caught(cand));
    Some(shrunk.describe())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_generation_is_pure() {
        for seed in 0..32 {
            let a = ChaosCase::generate(seed);
            let b = ChaosCase::generate(seed);
            assert_eq!(a.describe(), b.describe());
            assert!(!a.plan.clauses.is_empty());
            assert!((2..=3).contains(&a.rtts_ms.len()));
        }
    }

    #[test]
    fn small_sweep_is_clean() {
        let report = sweep(0, 6, &mut |_, _| {});
        assert_eq!(report.cases, 6);
        assert!(
            report.failures.is_empty(),
            "clean backends must not diverge: {:?}",
            report.failures
        );
    }

    #[test]
    fn mutation_check_catches_the_injected_defect() {
        let repro = mutation_check(1);
        let repro = repro.expect("the conservation oracle must catch double delivery");
        assert!(repro.contains("scheduler=redundant"));
    }

    #[test]
    fn shrinker_reaches_a_fixpoint_and_preserves_failure() {
        // Predicate: plan still contains a clause touching subflow 0.
        // Not a real failure, but exercises every reduction arm
        // deterministically.
        let case = ChaosCase::generate(7);
        let mut pred =
            |c: &ChaosCase| c.plan.max_subflow() == Some(0) || !c.plan.clauses.is_empty();
        let shrunk = shrink_case(case, &mut pred);
        assert!(pred(&shrunk), "shrinking never loses the property");
        assert!(shrunk.flow_bytes >= 1_400);
    }
}
