//! Fleet-chaos containment conformance: seeded fleets with deliberately
//! faulting schedulers, swept across worker counts.
//!
//! Where [`crate::chaos`] diffs one connection across execution
//! backends, fleet-chaos mode diffs one *fleet* across partitions. Each
//! seed builds a fleet in which most connections run deliberately broken
//! schedulers — step-budget bombs, starvers, certificate saboteurs,
//! trapping native code — under the containment supervisor, and runs it
//! at 1, 2, and 8 workers. A case fails when
//!
//! * the fleet digest or the canonical incident log differs between any
//!   two worker counts (containment decisions leaked partition state), or
//! * any connection fails to acknowledge all of its data (a fault
//!   escaped containment and permanently stalled the transfer), or
//! * no quarantine happened at all (the deliberately broken schedulers
//!   were not detected), or
//! * the first incident's replay string fails to reproduce the same
//!   fault class at the same simulated time in a fresh single-connection
//!   simulation.
//!
//! Zero panics is implicit: every shard runs with the oracle armed, and
//! a panic anywhere fails the whole sweep process. Everything replays
//! from the case seed alone.

use crate::rng::Xorshift;
use mptcp_sim::fleet::conn_seeds;
use mptcp_sim::time::{SimTime, SECONDS};
use mptcp_sim::{
    run_fleet, ConnScenario, ConnectionConfig, ContainmentConfig, FleetConfig, FleetReport,
    NativeTrapping, OracleMode, PathConfig, SchedulerSpec, Sim, SubflowConfig, Workload,
};

/// Domain separation for per-connection shape draws, so fleet-chaos
/// conn seed `n` shares nothing with the chaos case generator.
const FLEET_CHAOS_SALT: u64 = 0xF1EE_7CA0_5F1E_E7CA;

/// The worker counts every case runs at; digests and canonical incident
/// logs must be bit-identical across all of them.
pub const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Simulated-time budget per fleet; generous enough that every
/// quarantine/backoff/re-admission cycle resolves and the fallback
/// drains each transfer.
const HORIZON: SimTime = 120 * SECONDS;

/// A scheduler whose certificate honestly proves work-conservation —
/// the step-budget bomb pairs it with an absurdly small budget, and the
/// certificate saboteur steals its certificate.
const PROVED_WC_DSL: &str =
    "IF (!Q.EMPTY AND !SUBFLOWS.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

/// Never pushes (`R1` defaults to 0): wearing the proved-WC certificate
/// above, it fakes a verifier soundness gap the oracle must catch.
const REGISTER_GATED_DSL: &str =
    "IF (R1 > 0 AND !Q.EMPTY) { SUBFLOWS.MIN(sbf => sbf.RTT).PUSH(Q.POP()); }";

/// The five scheduler classes a fleet cycles through by global index.
/// Classes 1–4 are deliberate faults, one per supervisor fault class.
const CLASS_NAMES: [&str; 5] = [
    "healthy-minrtt",
    "step-budget-bomb",
    "starver",
    "cert-saboteur",
    "native-trapper",
];

/// One generated fleet-chaos case, derived purely from `(seed, conns)`.
#[derive(Debug, Clone, Copy)]
pub struct FleetCase {
    /// The generating seed (also the fleet seed).
    pub seed: u64,
    /// Fleet size; with the default 8, every scheduler class appears at
    /// least once.
    pub conns: usize,
}

impl FleetCase {
    /// One-line replayable description.
    pub fn describe(&self) -> String {
        format!(
            "seed={} conns={} workers={:?} classes={:?}",
            self.seed, self.conns, WORKER_COUNTS, CLASS_NAMES
        )
    }

    /// Builds the scenario of connection `global`: scheduler class by
    /// `global % 5`, path/flow shape from the connection seed. Pure, so
    /// the incident-replay path can rebuild any single connection.
    pub fn scenario(&self, global: usize, conn_seed: u64) -> ConnScenario {
        let mut rng = Xorshift::new(conn_seed ^ FLEET_CHAOS_SALT);
        let rtt_a = mptcp_sim::time::from_millis(5 + rng.below(40));
        let rtt_b = mptcp_sim::time::from_millis(20 + rng.below(60));
        let loss = rng.below(10) as f64 / 1000.0; // 0..0.9%
        let flow_bytes = 15_000 + rng.below(16) * 1400;
        let trap_after = 1 + rng.below(4);
        let paths = vec![
            SubflowConfig::new(PathConfig::symmetric(rtt_a, 1_250_000).with_loss(loss)),
            SubflowConfig::new(PathConfig::symmetric(rtt_b, 1_250_000)),
        ];
        let mut cfg = match global % 5 {
            0 => {
                let source = progmp_schedulers::sources::ALL
                    .iter()
                    .find(|(n, _)| *n == "minRttSimple")
                    .map(|(_, s)| *s)
                    .expect("paper scheduler exists");
                ConnectionConfig::new(paths, SchedulerSpec::dsl(source))
            }
            1 => ConnectionConfig::new(paths, SchedulerSpec::dsl(PROVED_WC_DSL)),
            2 => ConnectionConfig::new(paths, SchedulerSpec::dsl("RETURN;")),
            3 => {
                let proved = progmp_core::compile(PROVED_WC_DSL)
                    .expect("proved-WC scheduler compiles")
                    .property_certificate()
                    .clone();
                ConnectionConfig::new(paths, SchedulerSpec::dsl(REGISTER_GATED_DSL))
                    .with_cert_override(proved)
            }
            _ => ConnectionConfig::new(
                paths,
                SchedulerSpec::Native(Box::new(NativeTrapping::new(trap_after))),
            ),
        };
        if global % 5 == 1 {
            cfg.step_budget = 3; // far below the certified bound: every run aborts
        }
        ConnScenario::new(
            cfg,
            Workload::Bulk {
                bytes: flow_bytes,
                prop: 0,
            },
        )
    }

    /// Runs the fleet at `workers` with collection-mode oracle and
    /// default containment — the exact configuration every worker count
    /// must agree under.
    pub fn run(&self, workers: usize) -> FleetReport {
        let cfg = FleetConfig::new(self.conns, self.seed)
            .with_workers(workers)
            .with_horizon(HORIZON)
            .with_oracle(OracleMode::Collect)
            .with_containment(ContainmentConfig::default());
        run_fleet(&cfg, |global, conn_seed| self.scenario(global, conn_seed))
    }
}

/// Failure modes of one fleet-chaos case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetFailure {
    /// Fleet digests differ between worker counts.
    DigestMismatch {
        /// The worker count whose digest disagrees with 1 worker.
        workers: usize,
    },
    /// Canonical incident logs differ between worker counts.
    IncidentMismatch {
        /// The worker count whose log disagrees with 1 worker.
        workers: usize,
        /// First differing line: `(reference, disagreeing)`.
        first_diff: (String, String),
    },
    /// A connection never acknowledged all data: a fault escaped
    /// containment and permanently stalled the transfer.
    Stalled {
        /// Global index of the stalled connection.
        conn: usize,
    },
    /// The deliberately broken schedulers produced no quarantine at all.
    NoContainment,
    /// An incident's replay string failed to reproduce the fault.
    ReplayFailed {
        /// The replay string that did not reproduce.
        replay: String,
    },
}

impl std::fmt::Display for FleetFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetFailure::DigestMismatch { workers } => {
                write!(f, "fleet digest at {workers} workers differs from 1 worker")
            }
            FleetFailure::IncidentMismatch {
                workers,
                first_diff,
            } => write!(
                f,
                "canonical incidents at {workers} workers diverge: {:?} != {:?}",
                first_diff.0, first_diff.1
            ),
            FleetFailure::Stalled { conn } => {
                write!(f, "conn {conn} permanently stalled despite containment")
            }
            FleetFailure::NoContainment => {
                write!(f, "no quarantine despite deliberately faulting schedulers")
            }
            FleetFailure::ReplayFailed { replay } => {
                write!(f, "incident replay did not reproduce: {replay:?}")
            }
        }
    }
}

/// Rebuilds the single connection named by `replay` (an
/// [`mptcp_sim::IncidentReport::replay`] string, `k=v` tokens) inside a
/// fresh contained simulation and reports whether the same fault class
/// recurs at the same simulated time. Containment decisions are pure
/// functions of `(fleet seed, global index)`, so extracting one
/// connection from the fleet must not change its incident stream.
pub fn replay_reproduces(case: &FleetCase, replay: &str) -> bool {
    let mut seed = None;
    let mut conn = None;
    let mut class = None;
    let mut at = None;
    for tok in replay.split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else {
            return false;
        };
        match k {
            "seed" => seed = v.parse::<u64>().ok(),
            "conn" => conn = v.parse::<u64>().ok(),
            "class" => class = Some(v.to_string()),
            "at" => at = v.parse::<u64>().ok(),
            _ => return false,
        }
    }
    let (Some(seed), Some(conn), Some(class), Some(at)) = (seed, conn, class, at) else {
        return false;
    };
    let global = conn as usize;
    let seeds = conn_seeds(seed, case.conns);
    let Some(&conn_seed) = seeds.get(global) else {
        return false;
    };
    let sc = case.scenario(global, conn_seed);
    let mut sim = Sim::new(seed);
    sim.enable_containment(ContainmentConfig::default());
    sim.enable_oracle(format!("fleet-chaos replay seed={seed} conn={conn}"), false);
    let idx = sim
        .add_connection_with_identity(sc.config, conn)
        .expect("replayed scheduler compiles");
    let Workload::Bulk { bytes, prop } = sc.workload else {
        unreachable!("fleet-chaos scenarios are bulk-only");
    };
    sim.add_bulk_source(idx, bytes, prop);
    sim.run_to_completion(HORIZON);
    sim.incidents()
        .iter()
        .any(|i| i.conn == conn && i.at == at && i.class.name() == class)
}

/// Runs `case` at every worker count and classifies the outcome.
/// `None` means the case is clean: identical digests and incident logs
/// everywhere, every transfer drained, at least one quarantine, and a
/// reproducing replay string.
pub fn check_case(case: &FleetCase) -> Option<FleetFailure> {
    let runs: Vec<FleetReport> = WORKER_COUNTS.iter().map(|&w| case.run(w)).collect();
    let render = |r: &FleetReport| -> Vec<String> {
        r.canonical_incidents()
            .iter()
            .map(|i| i.to_string())
            .collect()
    };
    let reference = &runs[0];
    let ref_incidents = render(reference);
    for (&workers, run) in WORKER_COUNTS.iter().zip(&runs).skip(1) {
        if run.digest() != reference.digest() {
            return Some(FleetFailure::DigestMismatch { workers });
        }
        let incidents = render(run);
        if incidents != ref_incidents {
            let first_diff = ref_incidents
                .iter()
                .zip(&incidents)
                .find(|(a, b)| a != b)
                .map(|(a, b)| (a.clone(), b.clone()))
                .unwrap_or_else(|| ("<length mismatch>".into(), "<length mismatch>".into()));
            return Some(FleetFailure::IncidentMismatch {
                workers,
                first_diff,
            });
        }
    }
    for c in &reference.per_conn {
        if !c.all_acked {
            return Some(FleetFailure::Stalled { conn: c.conn });
        }
    }
    if reference.quarantines() == 0 {
        return Some(FleetFailure::NoContainment);
    }
    if let Some(incident) = reference.canonical_incidents().first() {
        if !replay_reproduces(case, &incident.replay) {
            return Some(FleetFailure::ReplayFailed {
                replay: incident.replay.clone(),
            });
        }
    }
    None
}

/// Outcome of a fleet-chaos sweep.
#[derive(Debug)]
pub struct FleetSweepReport {
    /// Cases executed.
    pub cases: u64,
    /// Quarantine transitions observed across all reference runs.
    pub quarantines: u64,
    /// Canonical (partition-independent) incidents across all cases.
    pub incidents: u64,
    /// Failing cases: `(seed, description, failure)`.
    pub failures: Vec<(u64, String, FleetFailure)>,
}

/// Sweeps seeds `[start, start + seeds)` with `conns` connections per
/// fleet, invoking `progress(seed)` after each case.
pub fn sweep(
    start: u64,
    seeds: u64,
    conns: usize,
    progress: &mut dyn FnMut(u64),
) -> FleetSweepReport {
    let mut report = FleetSweepReport {
        cases: 0,
        quarantines: 0,
        incidents: 0,
        failures: Vec::new(),
    };
    for seed in start..start.wrapping_add(seeds) {
        let case = FleetCase { seed, conns };
        // One extra reference run for the tallies keeps check_case pure;
        // the fleets are small, so the cost is negligible.
        let reference = case.run(WORKER_COUNTS[0]);
        report.quarantines += reference.quarantines() as u64;
        report.incidents += reference.canonical_incidents().len() as u64;
        if let Some(failure) = check_case(&case) {
            report.failures.push((seed, case.describe(), failure));
        }
        report.cases += 1;
        progress(seed);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_clean_and_contains_faults() {
        let mut swept = 0u64;
        let report = sweep(0, 2, 8, &mut |_| swept += 1);
        assert_eq!(swept, 2);
        assert_eq!(report.cases, 2);
        assert!(
            report.failures.is_empty(),
            "fleet-chaos failures: {:?}",
            report
                .failures
                .iter()
                .map(|(s, d, f)| format!("seed {s}: {f} ({d})"))
                .collect::<Vec<_>>()
        );
        assert!(
            report.quarantines > 0,
            "the faulting scheduler classes must be quarantined"
        );
        assert!(report.incidents >= report.quarantines);
    }

    #[test]
    fn malformed_replay_strings_do_not_reproduce() {
        let case = FleetCase { seed: 1, conns: 8 };
        assert!(!replay_reproduces(&case, "not a replay string"));
        assert!(!replay_reproduces(&case, "seed=1 conn=999 class=x at=0"));
    }
}
