//! Seed-sweeping differential fuzzer.
//!
//! ```text
//! conformance-fuzz [--start S] [--seeds N]
//! ```
//!
//! Explores seeds `[S, S+N)` (default `[0, 500)`). Each seed generates a
//! well-typed scheduler program and a random environment, runs the
//! program through all three backends, and compares the observable
//! outcomes. On the first divergence the case is shrunk to a minimal
//! repro, the report is printed, and the process exits non-zero.

use progmp_conformance::differ::{check_seed, run_differential, Divergence};
use progmp_conformance::gen::Generator;
use progmp_conformance::shrink::shrink;

fn parse_args() -> (u64, u64) {
    let mut start = 0u64;
    let mut seeds = 500u64;
    fn usage() -> ! {
        eprintln!("usage: conformance-fuzz [--start S] [--seeds N]");
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = match arg.as_str() {
            "--start" | "--seeds" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => v,
                None => usage(),
            },
            _ => usage(),
        };
        match arg.as_str() {
            "--start" => start = value,
            _ => seeds = value,
        }
    }
    (start, seeds)
}

fn minimize(divergence: Divergence) -> Divergence {
    let seed = divergence.seed;
    let mut generator = Generator::new(seed.expect("fuzzer divergences carry their seed"));
    let program = generator.program();
    let spec = generator.env_spec();
    let mut still_diverges = |p: &progmp_core::ast::Program,
                              s: &progmp_conformance::gen::EnvSpec| {
        matches!(run_differential(&p.to_string(), s), Ok(Some(_)))
    };
    let (program, spec) = shrink(program, spec, &mut still_diverges);
    match run_differential(&program.to_string(), &spec) {
        Ok(Some(mut d)) => {
            d.seed = seed;
            d
        }
        // Shrinking preserved the predicate at every step, so this is
        // unreachable; fall back to the original report if it somehow
        // happens.
        _ => divergence,
    }
}

fn main() {
    let (start, seeds) = parse_args();
    println!("conformance-fuzz: seeds [{start}, {})", start + seeds);
    for seed in start..start + seeds {
        if let Some(divergence) = check_seed(seed) {
            eprintln!("seed {seed}: backends diverged; shrinking...");
            let minimal = minimize(divergence);
            eprintln!("{}", minimal.report());
            std::process::exit(1);
        }
        if (seed - start + 1) % 100 == 0 {
            println!("  {} seeds ok", seed - start + 1);
        }
    }
    println!("all {seeds} seeds agree across interpreter, aot, and vm");
}
