//! Seed-sweeping differential and soundness fuzzer.
//!
//! ```text
//! conformance-fuzz [--start S] [--seeds N] [--no-octagon] [--fleet C] [--soundness | --vm-soundness | --opt-soundness | --prop-soundness | --chaos]
//! ```
//!
//! Explores seeds `[S, S+N)` (default `[0, 500)`).
//!
//! In the default **differential** mode, each seed generates a
//! well-typed scheduler program and a random environment, runs the
//! program through all three backends, and compares the observable
//! outcomes. On the first divergence the case is shrunk to a minimal
//! repro, the report is printed, and the process exits non-zero.
//!
//! With `--soundness`, each seed instead checks the admission
//! verifier's contract: programs the verifier admits must execute on
//! every backend without runtime errors and within their certified step
//! bound. Rejections are counted (and the reject rate reported) but are
//! not failures; a violation prints the counterexample and exits
//! non-zero.
//!
//! With `--vm-soundness`, each seed checks the *bytecode* verifier's
//! precision instead: the image our own compiler generates (and every
//! constant-subflow-count specialization of it) must validate against
//! the HIR admission certificate with zero error-severity findings. The
//! run finishes with the seeded codegen-mutation check, which must catch
//! every simulated miscompile statically with a spanned `miscompile`
//! diagnostic.
//!
//! With `--opt-soundness`, each seed checks the verified bytecode
//! optimizer differentially: the VM running the optimized image must be
//! bit-identical — execution result, effect trace, environment
//! fingerprint — to the VM running the unoptimized image on the same
//! random environment, the model step bound must never grow, and a
//! clean compile must keep no `misoptimization` rollbacks. The run
//! finishes with the per-pass sabotage check: every deliberately
//! unsound rewrite (one per pass class) must be rolled back by
//! translation validation with a spanned `misoptimization` diagnostic.
//!
//! With `--prop-soundness`, each seed derives the scheduler-property
//! certificate (work-conservation, per-subflow starvation, redundancy
//! bound, reinjection safety) for a generated program and validates it
//! against the observed execution on all three backends, using the
//! simulator oracle's own dynamic property checks. The run finishes
//! with the analysis-weakening sensitivity check: every deliberately
//! weakened analysis step must produce a false claim that the dynamic
//! check catches, while the honest certificate stays silent on the same
//! execution.
//!
//! `--no-octagon` combines with `--soundness` and `--prop-soundness` to
//! force the verifier's projection-only (pure interval) fallback,
//! exercising the differential contract: the relational octagon domain
//! may only sharpen verdicts, and both configurations must be sound.
//!
//! With `--chaos`, each seed generates a whole simulated transfer under
//! a random fault plan (blackouts, burst loss, jitter, rwnd stalls,
//! subflow churn) and runs one of the paper's schedulers across all
//! three backends with the runtime invariant oracle enabled. Divergent
//! traces, oracle violations, and stalled transfers are shrunk to
//! minimal fault plans and reported. The run finishes with a mutation
//! check: a deliberately injected double-delivery defect must be caught
//! by the conservation oracle with a shrunk, seed-replayable repro.
//!
//! `--chaos --fleet C` switches to the fleet-chaos containment sweep:
//! each seed builds a fleet of `C` connections in which most schedulers
//! deliberately fault (step-budget bombs, starvers, certificate
//! saboteurs, trapping native code) under the containment supervisor,
//! runs it at 1, 2, and 8 workers, and requires bit-identical fleet
//! digests and canonical incident logs, zero permanently stalled
//! connections, at least one quarantine, and a reproducing incident
//! replay string — with zero panics throughout.

use progmp_conformance::chaos;
use progmp_conformance::differ::{check_seed, run_differential, Divergence};
use progmp_conformance::fleet_chaos;
use progmp_conformance::gen::Generator;
use progmp_conformance::opt_soundness;
use progmp_conformance::prop_soundness;
use progmp_conformance::shrink::shrink;
use progmp_conformance::soundness;
use progmp_conformance::vm_soundness;

struct Args {
    start: u64,
    seeds: u64,
    fleet: u64,
    no_octagon: bool,
    soundness: bool,
    vm_soundness: bool,
    opt_soundness: bool,
    prop_soundness: bool,
    chaos: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        start: 0,
        seeds: 500,
        fleet: 0,
        no_octagon: false,
        soundness: false,
        vm_soundness: false,
        opt_soundness: false,
        prop_soundness: false,
        chaos: false,
    };
    fn usage() -> ! {
        eprintln!(
            "usage: conformance-fuzz [--start S] [--seeds N] [--no-octagon] [--fleet C] [--soundness | --vm-soundness | --opt-soundness | --prop-soundness | --chaos]"
        );
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--no-octagon" => parsed.no_octagon = true,
            "--soundness" => parsed.soundness = true,
            "--vm-soundness" => parsed.vm_soundness = true,
            "--opt-soundness" => parsed.opt_soundness = true,
            "--prop-soundness" => parsed.prop_soundness = true,
            "--chaos" => parsed.chaos = true,
            "--start" | "--seeds" | "--fleet" => {
                let value = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => usage(),
                };
                match arg.as_str() {
                    "--start" => parsed.start = value,
                    "--seeds" => parsed.seeds = value,
                    _ => parsed.fleet = value,
                }
            }
            _ => usage(),
        }
    }
    parsed
}

fn minimize(divergence: Divergence) -> Divergence {
    let seed = divergence.seed;
    let mut generator = Generator::new(seed.expect("fuzzer divergences carry their seed"));
    let program = generator.program();
    let spec = generator.env_spec();
    let mut still_diverges = |p: &progmp_core::ast::Program,
                              s: &progmp_conformance::gen::EnvSpec| {
        matches!(run_differential(&p.to_string(), s), Ok(Some(_)))
    };
    let (program, spec) = shrink(program, spec, &mut still_diverges);
    match run_differential(&program.to_string(), &spec) {
        Ok(Some(mut d)) => {
            d.seed = seed;
            d
        }
        // Shrinking preserved the predicate at every step, so this is
        // unreachable; fall back to the original report if it somehow
        // happens.
        _ => divergence,
    }
}

fn run_soundness(start: u64, seeds: u64, relational: bool) {
    println!(
        "conformance-fuzz --soundness{}: seeds [{start}, {})",
        if relational { "" } else { " --no-octagon" },
        start + seeds
    );
    let report = soundness::sweep(start, seeds, relational);
    println!("{}", report.summary());
    if !report.violations.is_empty() {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        std::process::exit(1);
    }
}

fn run_vm_soundness(start: u64, seeds: u64) {
    println!(
        "conformance-fuzz --vm-soundness: seeds [{start}, {})",
        start + seeds
    );
    let report = vm_soundness::sweep(start, seeds);
    println!("{}", report.summary());
    let mut failed = false;
    if !report.violations.is_empty() {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        failed = true;
    }
    let mutations = vm_soundness::mutation_check();
    println!("{}", mutations.summary());
    for outcome in &mutations.outcomes {
        println!(
            "  [{}] {} — {}",
            if outcome.caught && outcome.has_span {
                "caught"
            } else {
                "MISSED"
            },
            outcome.description,
            if outcome.detail.is_empty() {
                "admitted (BAD)"
            } else {
                &outcome.detail
            }
        );
    }
    if !mutations.all_caught() {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_opt_soundness(start: u64, seeds: u64) {
    println!(
        "conformance-fuzz --opt-soundness: seeds [{start}, {})",
        start + seeds
    );
    let report = opt_soundness::sweep(start, seeds);
    println!("{}", report.summary());
    let mut failed = false;
    if !report.violations.is_empty() {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        failed = true;
    }
    let sabotages = opt_soundness::mutation_check();
    println!("{}", sabotages.summary());
    for outcome in &sabotages.outcomes {
        println!(
            "  [{}] {} on {} — {}",
            if outcome.caught && outcome.has_span {
                "caught"
            } else {
                "MISSED"
            },
            outcome.sabotage,
            outcome.scheduler,
            if outcome.detail.is_empty() {
                "kept (BAD)"
            } else {
                &outcome.detail
            }
        );
    }
    if !sabotages.all_caught() {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_prop_soundness(start: u64, seeds: u64, relational: bool) {
    println!(
        "conformance-fuzz --prop-soundness{}: seeds [{start}, {})",
        if relational { "" } else { " --no-octagon" },
        start + seeds
    );
    let report = prop_soundness::sweep(start, seeds, relational);
    println!("{}", report.summary());
    let mut failed = false;
    if !report.violations.is_empty() {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        failed = true;
    }
    let weakenings = prop_soundness::mutation_check();
    println!("{}", weakenings.summary());
    for outcome in &weakenings.outcomes {
        println!(
            "  [{}] {} — {}",
            if outcome.caught && outcome.sound_baseline {
                "caught"
            } else {
                "MISSED"
            },
            outcome.weakening,
            if outcome.detail.is_empty() {
                "no dynamic violation (BAD)"
            } else {
                &outcome.detail
            }
        );
    }
    if !weakenings.all_caught() {
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn run_chaos(start: u64, seeds: u64) {
    println!(
        "conformance-fuzz --chaos: seeds [{start}, {})",
        start + seeds
    );
    let mut done = 0u64;
    let report = chaos::sweep(start, seeds, &mut |_, _| {
        done += 1;
        if done.is_multiple_of(50) {
            println!("  {done} fault plans swept");
        }
    });
    println!(
        "{} cases: {} divergence(s)/violation(s)",
        report.cases,
        report.failures.len()
    );
    let mut failed = false;
    for (seed, shrunk, failure) in &report.failures {
        eprintln!("seed {seed}: {failure}\n  shrunk repro: {shrunk}");
        failed = true;
    }
    match chaos::mutation_check(start.wrapping_add(1)) {
        Some(repro) => {
            println!("  [caught] injected double-delivery defect — shrunk repro: {repro}");
        }
        None => {
            eprintln!("  [MISSED] injected double-delivery defect escaped the oracle (BAD)");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all {seeds} fault plans agree across interpreter, aot, and vm with a silent oracle");
}

fn run_fleet_chaos(start: u64, seeds: u64, conns: usize) {
    println!(
        "conformance-fuzz --chaos --fleet {conns}: seeds [{start}, {}), workers {:?}",
        start + seeds,
        fleet_chaos::WORKER_COUNTS
    );
    let mut done = 0u64;
    let report = fleet_chaos::sweep(start, seeds, conns, &mut |_| {
        done += 1;
        if done.is_multiple_of(20) {
            println!("  {done} fleets swept");
        }
    });
    println!(
        "{} fleets: {} quarantine(s), {} canonical incident(s), {} failure(s)",
        report.cases,
        report.quarantines,
        report.incidents,
        report.failures.len()
    );
    if !report.failures.is_empty() {
        for (seed, describe, failure) in &report.failures {
            eprintln!("seed {seed}: {failure}\n  repro: {describe}");
        }
        std::process::exit(1);
    }
    println!(
        "all {seeds} fleets contained their faults with bit-identical digests and incident logs at {:?} workers",
        fleet_chaos::WORKER_COUNTS
    );
}

fn main() {
    let args = parse_args();
    if args.chaos {
        if args.fleet > 0 {
            run_fleet_chaos(args.start, args.seeds, args.fleet as usize);
        } else {
            run_chaos(args.start, args.seeds);
        }
        return;
    }
    if args.vm_soundness {
        run_vm_soundness(args.start, args.seeds);
        return;
    }
    if args.opt_soundness {
        run_opt_soundness(args.start, args.seeds);
        return;
    }
    if args.prop_soundness {
        run_prop_soundness(args.start, args.seeds, !args.no_octagon);
        return;
    }
    if args.soundness {
        run_soundness(args.start, args.seeds, !args.no_octagon);
        return;
    }
    let (start, seeds) = (args.start, args.seeds);
    println!("conformance-fuzz: seeds [{start}, {})", start + seeds);
    for seed in start..start + seeds {
        if let Some(divergence) = check_seed(seed) {
            eprintln!("seed {seed}: backends diverged; shrinking...");
            let minimal = minimize(divergence);
            eprintln!("{}", minimal.report());
            std::process::exit(1);
        }
        if (seed - start + 1) % 100 == 0 {
            println!("  {} seeds ok", seed - start + 1);
        }
    }
    println!("all {seeds} seeds agree across interpreter, aot, and vm");
}
