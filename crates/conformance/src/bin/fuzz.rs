//! Seed-sweeping differential and soundness fuzzer.
//!
//! ```text
//! conformance-fuzz [--start S] [--seeds N] [--soundness]
//! ```
//!
//! Explores seeds `[S, S+N)` (default `[0, 500)`).
//!
//! In the default **differential** mode, each seed generates a
//! well-typed scheduler program and a random environment, runs the
//! program through all three backends, and compares the observable
//! outcomes. On the first divergence the case is shrunk to a minimal
//! repro, the report is printed, and the process exits non-zero.
//!
//! With `--soundness`, each seed instead checks the admission
//! verifier's contract: programs the verifier admits must execute on
//! every backend without runtime errors and within their certified step
//! bound. Rejections are counted (and the reject rate reported) but are
//! not failures; a violation prints the counterexample and exits
//! non-zero.

use progmp_conformance::differ::{check_seed, run_differential, Divergence};
use progmp_conformance::gen::Generator;
use progmp_conformance::shrink::shrink;
use progmp_conformance::soundness;

struct Args {
    start: u64,
    seeds: u64,
    soundness: bool,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        start: 0,
        seeds: 500,
        soundness: false,
    };
    fn usage() -> ! {
        eprintln!("usage: conformance-fuzz [--start S] [--seeds N] [--soundness]");
        std::process::exit(2);
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--soundness" => parsed.soundness = true,
            "--start" | "--seeds" => {
                let value = match args.next().and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => usage(),
                };
                if arg == "--start" {
                    parsed.start = value;
                } else {
                    parsed.seeds = value;
                }
            }
            _ => usage(),
        }
    }
    parsed
}

fn minimize(divergence: Divergence) -> Divergence {
    let seed = divergence.seed;
    let mut generator = Generator::new(seed.expect("fuzzer divergences carry their seed"));
    let program = generator.program();
    let spec = generator.env_spec();
    let mut still_diverges = |p: &progmp_core::ast::Program,
                              s: &progmp_conformance::gen::EnvSpec| {
        matches!(run_differential(&p.to_string(), s), Ok(Some(_)))
    };
    let (program, spec) = shrink(program, spec, &mut still_diverges);
    match run_differential(&program.to_string(), &spec) {
        Ok(Some(mut d)) => {
            d.seed = seed;
            d
        }
        // Shrinking preserved the predicate at every step, so this is
        // unreachable; fall back to the original report if it somehow
        // happens.
        _ => divergence,
    }
}

fn run_soundness(start: u64, seeds: u64) {
    println!(
        "conformance-fuzz --soundness: seeds [{start}, {})",
        start + seeds
    );
    let report = soundness::sweep(start, seeds);
    println!("{}", report.summary());
    if !report.violations.is_empty() {
        for violation in &report.violations {
            eprintln!("{violation}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args = parse_args();
    if args.soundness {
        run_soundness(args.start, args.seeds);
        return;
    }
    let (start, seeds) = (args.start, args.seeds);
    println!("conformance-fuzz: seeds [{start}, {})", start + seeds);
    for seed in start..start + seeds {
        if let Some(divergence) = check_seed(seed) {
            eprintln!("seed {seed}: backends diverged; shrinking...");
            let minimal = minimize(divergence);
            eprintln!("{}", minimal.report());
            std::process::exit(1);
        }
        if (seed - start + 1) % 100 == 0 {
            println!("  {} seeds ok", seed - start + 1);
        }
    }
    println!("all {seeds} seeds agree across interpreter, aot, and vm");
}
