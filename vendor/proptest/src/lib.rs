//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the slice of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_shuffle` / `boxed`, range and
//! tuple strategies, [`collection::vec`], [`strategy::Union`], `any`,
//! `Just`, and the `proptest!` / `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports its deterministic case
//!   index instead of a minimized input. (The conformance harness in
//!   `crates/conformance` has its own domain-aware shrinker.)
//! * **Deterministic** — case `i` of test `t` always receives the same
//!   input, derived from FNV-1a(`t`) mixed with `i`; failures reproduce
//!   exactly on re-run.
//! * String strategies support only the `.{a,b}` pattern shape used in
//!   this workspace and panic loudly on anything else.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Deterministic generator handed to strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives the deterministic generator for case `case` of test `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, then mix in the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng::from_seed(h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Statement-style assertion macros: plain panics (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// See [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between strategies of one value type, optionally
/// weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Defines deterministic property tests over strategies.
///
/// Supports the subset of proptest's syntax used in this workspace: an
/// optional `#![proptest_config(...)]` header followed by test functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            let mut __rng = $crate::TestRng::for_case(test_name, case);
                            $(
                                let $pat = $crate::strategy::Strategy::generate(
                                    &{ $strat },
                                    &mut __rng,
                                );
                            )*
                            $body
                        }),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed at deterministic case {}/{}",
                            test_name, case, config.cases
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
