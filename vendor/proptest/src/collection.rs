//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use std::ops::{Range, RangeInclusive};

/// The number of elements a collection strategy may produce.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy yielding `Vec`s whose elements come from `element`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a `Vec` strategy with the given element strategy and size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn sizes_respected() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(vec(Just(1u8), 3).generate(&mut rng).len(), 3);
            let n = vec(0u8..10, 2..6).generate(&mut rng).len();
            assert!((2..6).contains(&n));
            let n = vec(0u8..10, 0..=4).generate(&mut rng).len();
            assert!(n <= 4);
        }
    }
}
