//! The [`Strategy`] trait and its combinators.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value and derives a second strategy
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles the generated collection (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle(self)
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone)]
pub struct Shuffle<S>(S);

impl<S, T> Strategy for Shuffle<S>
where
    S: Strategy<Value = Vec<T>>,
{
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let mut v = self.0.generate(rng);
        for i in (1..v.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
        v
    }
}

/// Picks one of several strategies, with optional weights.
pub struct Union<S> {
    options: Vec<(u32, S)>,
    total_weight: u64,
}

impl<S: Strategy> Union<S> {
    /// Uniform choice over `options`.
    pub fn new(options: impl IntoIterator<Item = S>) -> Self {
        Union::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice over `options`.
    pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
        assert!(!options.is_empty(), "Union needs at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum::<u64>();
        assert!(total_weight > 0, "Union weights must not all be zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (*self.start() as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String strategies from a regex-like pattern. Only the `.{a,b}` shape
/// (any chars, length between `a` and `b`) is supported; other patterns
/// panic so a silently weakened test cannot slip through.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or_else(|| {
            panic!("vendored proptest supports only `.{{a,b}}` string patterns, got {self:?}")
        });
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII with a sprinkle of arbitrary
            // Unicode scalars, mirroring proptest's `.` distribution
            // closely enough for never-panics robustness tests.
            if rng.below(5) != 0 {
                s.push((0x20 + rng.below(0x5f) as u8) as char);
            } else {
                loop {
                    if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                        s.push(c);
                        break;
                    }
                }
            }
        }
        s
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    let lo = lo.trim().parse().ok()?;
    let hi = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// The canonical full-range strategy of the type.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Function-style strategy over the full range of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> {
                Any(std::marker::PhantomData)
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;
    fn arbitrary() -> Any<bool> {
        Any(std::marker::PhantomData)
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f64 {
    type Strategy = Any<f64>;
    fn arbitrary() -> Any<f64> {
        Any(std::marker::PhantomData)
    }
}

/// The canonical full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (5u64..80).generate(&mut rng);
            assert!((5..80).contains(&v));
            let v = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&v));
            let v = (1u8..=4).generate(&mut rng);
            assert!((1..=4).contains(&v));
            let f = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn map_flat_map_shuffle_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (1usize..5)
            .prop_flat_map(|n| Just((0..n).collect::<Vec<_>>()).prop_shuffle())
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = s.generate(&mut rng);
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn union_respects_weights() {
        let u = Union::new_weighted(vec![(0, Just(1u8).boxed()), (5, Just(2u8).boxed())]);
        let mut rng = TestRng::from_seed(3);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    fn string_pattern_lengths() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = ".{0,20}".generate(&mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(gen(9), gen(9));
    }
}
