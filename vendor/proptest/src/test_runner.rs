//! Test-runner configuration.

/// Configuration accepted by `proptest!`'s `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of deterministic cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
