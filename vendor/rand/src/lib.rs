//! Offline drop-in subset of the `rand` crate API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually uses: a seedable
//! deterministic generator (`rngs::StdRng`) and uniform sampling through
//! `RngExt::random`. The generator is splitmix64 — statistically solid
//! for simulation noise and byte-for-byte reproducible per seed, which is
//! all the simulator requires.

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling extension methods (subset of `rand::Rng`).
pub trait RngExt {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from its canonical uniform distribution
    /// (`[0, 1)` for floats, full range for integers).
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types samplable by [`RngExt::random`].
pub trait Sample {
    /// Draws one value from `rng`.
    fn sample<R: RngExt>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    fn sample<R: RngExt>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood): one 64-bit state word,
            // passes BigCrush when used as a counter-based generator.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
