//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides just enough of criterion's surface for the workspace benches
//! to compile and run: `Criterion`, `BenchmarkGroup`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurements are a simple best-of-N wall-clock loop — adequate for
//! relative comparisons, with none of criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per measurement sample (tuned for sub-second benches).
const WARMUP_ITERS: u64 = 10;
const SAMPLES: u32 = 5;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { _c: self, name }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), &mut f);
        self
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Runs one parameterized benchmark of the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_bench(&format!("{}/{}", self.name, id.0), &mut g);
        self
    }

    /// Ends the group (reporting no-op).
    pub fn finish(self) {}
}

/// A two-part benchmark identifier (`function/parameter`).
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    best: Duration,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `f`, keeping the best mean over several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: aim for samples of roughly 10 ms.
        let start = Instant::now();
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let per_iter = start.elapsed() / (WARMUP_ITERS as u32);
        let target = Duration::from_millis(10);
        let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
        self.iters_per_sample = iters;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let mean = start.elapsed() / (iters as u32);
            if mean < self.best {
                self.best = mean;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        best: Duration::MAX,
        iters_per_sample: 0,
    };
    f(&mut b);
    if b.best == Duration::MAX {
        eprintln!("  {name}: no measurement");
    } else {
        eprintln!(
            "  {name}: {:?}/iter (best of {SAMPLES} samples x {} iters)",
            b.best, b.iters_per_sample
        );
    }
}

/// Declares a benchmark group function calling each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
