#!/usr/bin/env bash
# Full local CI: formatting, lints, tests, and a bounded conformance
# sweep. Mirrors what reviewers run; keep it green before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc -D warnings"
RUSTDOCFLAGS="-D warnings" cargo doc -q --workspace --no-deps

echo "==> cargo test"
cargo test -q --workspace

echo "==> admission lint (examples + all bundled schedulers)"
cargo run -q --release -p progmp --bin progmp-lint -- examples/schedulers/*.progmp
cargo run -q --release -p progmp --bin progmp-lint -- --all

echo "==> bytecode verification lint (all bundled schedulers; output elided)"
cargo run -q --release -p progmp --bin progmp-lint -- --bytecode --all > /dev/null

echo "==> property certificates (all bundled schedulers; output elided)"
cargo run -q --release -p progmp --bin progmp-lint -- --properties --all > /dev/null

echo "==> conformance sweep (500 seeds, all backends)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --seeds 500

echo "==> verifier-soundness sweep (500 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --soundness --seeds 500

echo "==> verifier-soundness sweep, octagon disabled (500 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --soundness --no-octagon --seeds 500

echo "==> bytecode-verifier soundness sweep + codegen-mutation check (500 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --vm-soundness --seeds 500

echo "==> optimizer-soundness sweep + per-pass sabotage check (1000 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --opt-soundness --seeds 1000

echo "==> property-soundness sweep + analysis-weakening check (500 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --prop-soundness --seeds 500

echo "==> property-soundness sweep, octagon disabled (500 seeds)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --prop-soundness --no-octagon --seeds 500

echo "==> chaos sweep: fault plans x schedulers x backends + oracle mutation check (200 plans)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --chaos --seeds 200

echo "==> fleet-chaos containment sweep: faulting fleets at 1/2/8 workers (100 fleets of 8)"
cargo run -q --release -p progmp-conformance --bin conformance-fuzz -- --chaos --fleet 8 --seeds 100

echo "==> containment regression suite (supervisor + end-to-end fault classes)"
cargo test -q --release -p mptcp-sim --test containment

echo "==> bench smoke: every experiment binary in --smoke mode"
cargo build -q --release -p progmp-bench --bins
for bin in crates/bench/src/bin/*.rs; do
  name="$(basename "$bin" .rs)"
  echo "    -> $name --smoke"
  "./target/release/$name" --smoke > /dev/null
done

echo "==> scale tier: scale_fleet --smoke emits schema-valid BENCH_scale.json"
./target/release/scale_fleet --smoke --json /tmp/BENCH_scale.smoke.json | tail -n 1

echo "==> fleet soak: 1k connections, oracle armed, zero violations"
cargo test -q --release -p progmp-conformance --test fleet_soak -- --ignored

echo "CI green"
