//! Integration tests for the `progmp-lint` binary: exit-code contract
//! (0 clean / 1 reject / 2 warnings under `--strict-warnings` / 64 usage
//! error) and the `--properties` certificate output in both renderings.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_progmp-lint"))
        .args(args)
        .output()
        .expect("failed to spawn progmp-lint")
}

fn example(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("examples/schedulers")
        .join(name);
    path.to_str().expect("utf-8 path").to_string()
}

#[test]
fn clean_scheduler_exits_zero() {
    let out = lint(&["minRttSimple"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {:?}", out.stderr);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("minRttSimple: ADMITTED"));
}

#[test]
fn rejected_program_exits_one() {
    // An unguarded POP whose packet is pushed on a provably-NULL subflow
    // is an admission error even in observe mode.
    let dir = std::env::temp_dir().join("progmp_lint_cli_reject");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bad.progmp");
    std::fs::write(&path, "NULL.PUSH(Q.POP());\n").unwrap();
    let out = lint(&[path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn usage_error_exits_sixtyfour() {
    let out = lint(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(64));
    let out = lint(&[]);
    assert_eq!(out.status.code(), Some(64));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("--strict-warnings"),
        "help must document the flag"
    );
    assert!(
        stderr.contains("exit status"),
        "help must document exit codes"
    );
}

#[test]
fn strict_warnings_escalates_warning_findings_to_exit_two() {
    // `starver` is ADMITTED (exit 0 by default) but its property
    // certificate refutes subflow-starvation, a warning-class finding.
    let starver = example("starver.progmp");
    let out = lint(&["--properties", &starver]);
    assert_eq!(out.status.code(), Some(0), "refutations alone never reject");
    let out = lint(&["--properties", "--strict-warnings", &starver]);
    assert_eq!(out.status.code(), Some(2));
    // Without --properties the certificate is not derived for gating, so
    // the same program stays clean under --strict-warnings.
    let out = lint(&["--strict-warnings", &starver]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn properties_human_output_carries_spanned_witness() {
    let starver = example("starver.progmp");
    let out = lint(&["--properties", &starver]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("property certificate"));
    assert!(
        stdout.contains("subflow-starvation: REFUTED"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("witness at 10:5"),
        "witness must be anchored to the PUSH site: {stdout}"
    );
    assert!(stdout.contains("allowed-ids: {0}"));
}

#[test]
fn properties_json_is_spliced_into_each_entry() {
    let out = lint(&["--properties", "--json", "minRttSimple"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("\"properties\":{"), "stdout: {stdout}");
    assert!(stdout.contains("\"work_conservation\":{\"status\":\"proved\""));
    assert!(stdout.contains("\"dup_bound\":\"1\""));
    assert!(stdout.contains("\"pops_fully_guarded\":true"));
}
