//! Cross-crate integration tests: the application API, the compiled
//! scheduler programs, the MPTCP simulator, and the HTTP/2 page model
//! working together end to end.

use progmp::prelude::*;

fn two_path_cfg(scheduler: SchedulerSpec) -> ConnectionConfig {
    ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)).with_cost(1),
        ],
        scheduler,
    )
    .with_timelines()
}

#[test]
fn application_defined_scheduler_end_to_end() {
    // An application-defined scheduler written from scratch: strict
    // primary/secondary failover on a latency threshold.
    let custom = "
        VAR rqSkb = RQ.TOP;
        VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
        IF (rqSkb != NULL) {
            VAR r = avail.MIN(sbf => sbf.RTT);
            IF (r != NULL) { r.PUSH(RQ.POP()); RETURN; }
        }
        IF (!Q.EMPTY) {
            VAR primary = avail.FILTER(sbf => sbf.RTT < 25000).MIN(sbf => sbf.RTT);
            IF (primary != NULL) { primary.PUSH(Q.POP()); RETURN; }
            /* wait for the primary unless no sub-25ms subflow exists */
            IF (SUBFLOWS.FILTER(sbf => sbf.RTT < 25000).EMPTY) {
                VAR secondary = avail.MIN(sbf => sbf.RTT);
                IF (secondary != NULL) { secondary.PUSH(Q.POP()); }
            }
        }";

    let mut api = ProgMp::new();
    api.load_scheduler("failover", custom).expect("compiles");
    let mut sim = Sim::new(3);
    let conn = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(custom)))
        .unwrap();
    api.set_scheduler(&mut sim, conn, "failover", Backend::Vm)
        .unwrap();
    sim.app_send_at(conn, 0, 300_000, 0);
    sim.run_to_completion(30 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked());
    assert_eq!(
        c.stats.subflows[1].tx_packets, 0,
        "strict failover never touches the secondary while the primary lives"
    );
    let stats = api.scheduler_stats(&sim, conn).unwrap();
    assert!(stats.executions > 100);
}

#[test]
fn all_backends_produce_identical_simulations() {
    // Full-stack determinism: the same seed and scheduler on all three
    // backends yields bit-identical simulation outcomes.
    let mut outcomes = Vec::new();
    for backend in Backend::ALL {
        let mut sim = Sim::new(99);
        let conn = sim
            .add_connection(two_path_cfg(SchedulerSpec::dsl_on(
                schedulers::DEFAULT_MIN_RTT,
                backend,
            )))
            .unwrap();
        sim.app_send_at(conn, 0, 200_000, 0);
        sim.run_to_completion(30 * SECONDS);
        let c = &sim.connections[conn];
        outcomes.push((
            c.stats.tx_packets,
            c.stats.subflows[0].tx_packets,
            c.stats.subflows[1].tx_packets,
            c.stats.delivered_bytes,
            sim.events_processed,
        ));
    }
    assert_eq!(outcomes[0], outcomes[1], "interpreter vs aot");
    assert_eq!(outcomes[0], outcomes[2], "interpreter vs vm");
}

#[test]
fn per_connection_scheduler_choice() {
    // Two concurrent connections with different schedulers over the same
    // simulator — the multi-tenancy isolation story of the paper.
    let mut sim = Sim::new(5);
    let bulk = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(
            schedulers::DEFAULT_MIN_RTT,
        )))
        .unwrap();
    let latency = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(schedulers::REDUNDANT)))
        .unwrap();
    sim.app_send_at(bulk, 0, 150_000, 0);
    sim.app_send_at(latency, 0, 15_000, 0);
    sim.run_to_completion(30 * SECONDS);
    assert!(sim.connections[bulk].all_acked());
    assert!(sim.connections[latency].all_acked());
    assert!(
        sim.connections[latency].stats.overhead_ratio() > 1.5,
        "redundant connection duplicated its traffic"
    );
    assert!(
        sim.connections[bulk].stats.overhead_ratio() < 1.1,
        "default connection stayed single-copy"
    );
}

#[test]
fn register_signalling_changes_behavior_mid_stream() {
    // The §3.2 story: no scheduler switching, just registers.
    let mut sim = Sim::new(8);
    let conn = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(schedulers::COMPENSATING)))
        .unwrap();
    sim.app_send_at(conn, 0, 20 * 1400, 0);
    // Signal flow end shortly after enqueueing: the scheduler switches
    // into compensation mode without being replaced.
    sim.set_register_at(conn, from_millis(1), RegId::R2, 1);
    sim.run_to_completion(30 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked());
    assert!(
        c.stats.overhead_ratio() > 1.2,
        "compensation duplicated tail packets: {}",
        c.stats.overhead_ratio()
    );
}

#[test]
fn http2_page_load_through_facade() {
    let page = Page::amazon_like();
    let result = run_page_load(
        &page,
        &WifiLteProfile::default(),
        schedulers::HTTP2_AWARE,
        ServerMode::Aware,
        17,
    )
    .unwrap();
    assert!(result.dependency_resolved < SECONDS);
    assert!(result.initial_page_time >= result.dependency_resolved);
    assert!(result.wifi_bytes > result.lte_bytes);
}

#[test]
fn packet_properties_flow_from_api_to_scheduler() {
    // Per-packet intents: property-1 packets must go out on the fast
    // subflow only (http2Aware head-data rule).
    let api = ProgMp::new();
    let mut sim = Sim::new(2);
    let conn = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(schedulers::HTTP2_AWARE)))
        .unwrap();
    api.send_with_property(&mut sim, conn, 0, 10 * 1400, 1);
    sim.run_to_completion(10 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked());
    assert_eq!(
        c.stats.subflows[1].tx_packets, 0,
        "head data never touches the 4x-RTT subflow"
    );
}

#[test]
fn subflow_churn_mid_transfer_is_safe() {
    // Teardown + re-establishment while data is flowing: the "stale
    // subflow reference" scenario that crashes naive kernel schedulers.
    let mut sim = Sim::new(21);
    let conn = sim
        .add_connection(two_path_cfg(SchedulerSpec::dsl(
            schedulers::DEFAULT_MIN_RTT,
        )))
        .unwrap();
    sim.add_bulk_source(conn, 400_000, 0);
    for k in 0..4 {
        sim.subflow_down_at(conn, 0, (2 * k + 1) * 200 * MILLIS);
        sim.subflow_up_at(conn, 0, (2 * k + 2) * 200 * MILLIS);
    }
    sim.run_to_completion(60 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked(), "transfer survives repeated subflow churn");
    assert_eq!(c.stats.delivered_bytes, 400_000);
}

#[test]
fn step_budget_violation_is_contained() {
    // A pathological scheduler with a huge scan over a huge queue and a
    // tiny budget: the error is contained, the connection survives, and
    // the transfer still completes thanks to later executions.
    let mut sim = Sim::new(4);
    let mut cfg = two_path_cfg(SchedulerSpec::dsl(schedulers::DEFAULT_MIN_RTT));
    cfg.step_budget = 10_000;
    let conn = sim.add_connection(cfg).unwrap();
    sim.app_send_at(conn, 0, 100_000, 0);
    sim.run_to_completion(30 * SECONDS);
    assert!(sim.connections[conn].all_acked());
}

#[test]
fn automated_handover_via_path_manager() {
    use progmp::mptcp_sim::{PathManager, PathManagerPolicy, PathProfileEntry};
    // WiFi degrades at t=1s (loss ramps up); the path manager detects the
    // loss burst, establishes the standby LTE subflow, and signals R3 so
    // the handover-aware scheduler compensates — no manual orchestration.
    let mut sim = Sim::new(33);
    let wifi =
        PathConfig::symmetric(from_millis(15), 1_250_000).with_profile_entry(PathProfileEntry {
            at: SECONDS,
            rate: None,
            loss: Some(0.5),
            fwd_delay: None,
        });
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(wifi),
            // Standby subflow: configured but not established at start.
            SubflowConfig::new(PathConfig::symmetric(from_millis(45), 1_250_000))
                .starting_at(u64::MAX), // never auto-established
        ],
        SchedulerSpec::dsl(schedulers::HANDOVER_AWARE),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.attach_path_manager(
        conn,
        PathManager::new(
            PathManagerPolicy::Handover {
                primary: 0,
                standby: 1,
                rtt_threshold: from_millis(500),
                loss_delta_threshold: 2,
                recovery_ticks: 3,
            },
            50 * MILLIS,
        ),
    );
    sim.add_cbr_source(conn, 0, 3 * SECONDS, 300_000, from_millis(20), 0);
    sim.run_to_completion(60 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked(), "stream survives the automated handover");
    assert!(
        c.stats.subflows[1].tx_packets > 0,
        "the path manager established and used the standby subflow"
    );
    assert!(
        c.subflows[1].established,
        "standby remains established after the handover"
    );
}

#[test]
fn fifty_connection_multi_tenancy_stress() {
    // The multi-tenancy claim at scale: 50 concurrent connections with a
    // mix of schedulers and backends in one simulation, all isolated.
    let mut sim = Sim::new(77);
    let names = progmp_schedulers::names();
    let mut conns = Vec::new();
    for i in 0..50usize {
        let name = names[i % names.len()];
        let source = progmp_schedulers::sources::ALL
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| *s)
            .unwrap();
        let backend = Backend::ALL[i % 3];
        let conn = sim
            .add_connection(
                ConnectionConfig::new(
                    vec![
                        SubflowConfig::new(PathConfig::symmetric(
                            from_millis(10 + (i as u64 % 5) * 7),
                            1_250_000,
                        )),
                        SubflowConfig::new(PathConfig::symmetric(
                            from_millis(30 + (i as u64 % 3) * 11),
                            1_250_000,
                        ))
                        .with_cost(1),
                    ],
                    SchedulerSpec::dsl_on(source, backend),
                )
                .with_timelines(),
            )
            .unwrap();
        // Generic intents so preference/deadline schedulers have inputs.
        sim.set_register_at(conn, 0, RegId::R1, 4_000_000);
        sim.app_send_at(conn, (i as u64) * MILLIS, 30_000, 2);
        sim.set_register_at(conn, (i as u64) * MILLIS + 1, RegId::R2, 1);
        conns.push(conn);
    }
    sim.run_to_completion(120 * SECONDS);
    for conn in conns {
        assert!(
            sim.connections[conn].all_acked(),
            "connection {conn} ({:?}) did not finish",
            sim.connections[conn].stats.delivered_bytes
        );
    }
}

#[test]
fn every_scheduler_on_every_backend_delivers() {
    // The full cross product: 18 schedulers x 3 backends, each driving a
    // small two-path transfer end to end with intents signaled.
    for (name, source) in progmp_schedulers::sources::ALL {
        for backend in Backend::ALL {
            let mut sim = Sim::new(1);
            let conn = sim
                .add_connection(two_path_cfg(SchedulerSpec::dsl_on(*source, backend)))
                .unwrap();
            sim.set_register_at(conn, 0, RegId::R1, 4_000_000);
            sim.app_send_at(conn, 0, 20_000, 2);
            sim.set_register_at(conn, 1, RegId::R2, 1);
            sim.set_register_at(conn, 2, RegId::R3, 1);
            sim.run_to_completion(60 * SECONDS);
            assert!(
                sim.connections[conn].all_acked(),
                "{name} on {} failed to deliver",
                backend.name()
            );
        }
    }
}
