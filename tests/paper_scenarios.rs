//! Regression tests pinning the qualitative results of every evaluation
//! scenario in the paper (small/fast variants of the bench binaries; see
//! EXPERIMENTS.md for the full sweeps).

use progmp::mptcp_sim::PathProfileEntry;
use progmp::prelude::*;

/// Fig. 10b core claim: redundancy improves short-flow FCT on lossy paths.
#[test]
fn redundancy_helps_short_lossy_flows() {
    let fct = |scheduler: &'static str| -> f64 {
        let mut total = 0.0;
        let runs = 12;
        for seed in 0..runs {
            let mut sim = Sim::new(500 + seed);
            let cfg = ConnectionConfig::new(
                vec![
                    SubflowConfig::new(
                        PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(0.02),
                    ),
                    SubflowConfig::new(
                        PathConfig::symmetric(from_millis(30), 1_250_000).with_loss(0.02),
                    ),
                ],
                SchedulerSpec::dsl(scheduler),
            )
            .with_timelines();
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 6 * 1400, 0);
            sim.run_to_completion(30 * SECONDS);
            total += sim.connections[conn]
                .stats
                .delivery_time_of(6 * 1400)
                .expect("completes") as f64;
        }
        total / runs as f64
    };
    let default = fct(schedulers::DEFAULT_MIN_RTT);
    let redundant = fct(schedulers::REDUNDANT_IF_NO_Q);
    assert!(
        redundant < default,
        "redundantIfNoQ {redundant} must beat default {default} on lossy short flows"
    );
}

/// Fig. 12 core claim: end-of-flow compensation retains FCT at RTT ratio 6.
#[test]
fn compensating_retains_fct_at_high_rtt_ratio() {
    let fct = |scheduler: &'static str| -> f64 {
        let mut total = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let mut sim = Sim::new(700 + seed);
            let cfg = ConnectionConfig::new(
                vec![
                    SubflowConfig::new(PathConfig::symmetric(from_millis(15), 1_250_000)),
                    SubflowConfig::new(PathConfig::symmetric(from_millis(90), 1_250_000)),
                ],
                SchedulerSpec::dsl(scheduler),
            )
            .with_timelines();
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 12 * 1400, 0);
            sim.set_register_at(conn, 1, RegId::R2, 1);
            sim.run_to_completion(30 * SECONDS);
            total += sim.connections[conn]
                .stats
                .delivery_time_of(12 * 1400)
                .expect("completes") as f64;
        }
        total / runs as f64
    };
    let default = fct(schedulers::DEFAULT_MIN_RTT);
    let comp = fct(schedulers::COMPENSATING);
    assert!(
        comp < default * 0.6,
        "compensation must cut the FCT substantially at ratio 6: {comp} vs {default}"
    );
}

/// Fig. 13 core claim: TAP keeps a sustainable stream off the metered path.
#[test]
fn tap_preserves_preferences_for_sustainable_streams() {
    let lte_share = |scheduler: &'static str, signal: bool| -> f64 {
        let mut sim = Sim::new(42);
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 3_000_000)),
                SubflowConfig::new(PathConfig::symmetric(from_millis(40), 2_500_000)).with_cost(1),
            ],
            SchedulerSpec::dsl(scheduler),
        )
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        if signal {
            sim.set_register_at(conn, 0, RegId::R1, 1_000_000);
        }
        sim.add_cbr_source(conn, 0, 4 * SECONDS, 1_000_000, from_millis(20), 0);
        sim.run_to_completion(10 * SECONDS);
        let c = &sim.connections[conn];
        assert!(c.all_acked(), "stream must be delivered");
        c.stats.subflows[1].tx_bytes as f64 / c.stats.tx_bytes as f64
    };
    let default = lte_share(schedulers::DEFAULT_MIN_RTT, false);
    let tap = lte_share(schedulers::TAP, true);
    assert!(
        tap < default / 4.0,
        "TAP must cut the metered share by far more than 4x: {tap:.3} vs {default:.3}"
    );
}

/// Fig. 14 core claim: content-aware scheduling cuts metered usage without
/// hurting dependency resolution.
#[test]
fn http2_aware_cuts_metered_usage() {
    let page = Page::amazon_like();
    let profile = WifiLteProfile::default();
    let unaware = run_page_load(
        &page,
        &profile,
        schedulers::DEFAULT_MIN_RTT,
        ServerMode::Legacy,
        9,
    )
    .unwrap();
    let aware = run_page_load(
        &page,
        &profile,
        schedulers::HTTP2_AWARE,
        ServerMode::Aware,
        9,
    )
    .unwrap();
    assert!(aware.lte_bytes * 2 < unaware.lte_bytes);
    assert!(aware.dependency_resolved <= unaware.dependency_resolved + from_millis(5));
}

/// §5.2 core claim: handover-aware retransmission shortens the stall.
#[test]
fn handover_aware_shortens_stall() {
    let stall = |scheduler: &'static str, signal: bool| -> u64 {
        let mut sim = Sim::new(31);
        let wifi = PathConfig::symmetric(from_millis(15), 1_250_000).with_profile_entry(
            PathProfileEntry {
                at: SECONDS,
                rate: None,
                loss: Some(1.0),
                fwd_delay: None,
            },
        );
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(wifi),
                SubflowConfig::new(PathConfig::symmetric(from_millis(45), 1_250_000)),
            ],
            SchedulerSpec::dsl(scheduler),
        )
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        sim.add_cbr_source(conn, 0, 2 * SECONDS, 400_000, from_millis(20), 0);
        if signal {
            sim.set_register_at(conn, SECONDS - 50 * MILLIS, RegId::R3, 1);
        }
        sim.subflow_down_at(conn, 0, SECONDS + 600 * MILLIS);
        sim.run_to_completion(20 * SECONDS);
        let c = &sim.connections[conn];
        let mut last = SECONDS - 100 * MILLIS;
        let mut max_gap = 0;
        for &(t, _) in c
            .stats
            .delivery_timeline
            .iter()
            .filter(|(t, _)| *t + 200 * MILLIS >= SECONDS && *t < 3 * SECONDS)
        {
            max_gap = max_gap.max(t.saturating_sub(last));
            last = t;
        }
        max_gap
    };
    let default = stall(schedulers::DEFAULT_MIN_RTT, false);
    let aware = stall(schedulers::HANDOVER_AWARE, true);
    assert!(
        aware < default,
        "handover-aware stall {aware} must undercut default {default}"
    );
}

/// Fig. 1 core claim: kernel backup mode practically deactivates a subflow.
#[test]
fn backup_mode_starves_subflow() {
    let mut sim = Sim::new(6);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(10), 3_000_000)),
            SubflowConfig::new(PathConfig::symmetric(from_millis(40), 2_500_000)).backup(),
        ],
        SchedulerSpec::dsl(schedulers::DEFAULT_MIN_RTT),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.add_cbr_source(conn, 0, 3 * SECONDS, 1_000_000, from_millis(20), 0);
    sim.run_to_completion(10 * SECONDS);
    let c = &sim.connections[conn];
    assert!(c.all_acked());
    assert_eq!(
        c.stats.subflows[1].tx_packets, 0,
        "backup subflow unused while a non-backup subflow is established"
    );
}

/// §4.2 core claim: the improved receiver beats the legacy multi-layer
/// queue behaviour under loss.
#[test]
fn improved_receiver_delivers_earlier_under_loss() {
    let mean_fct = |mode: ReceiverMode| -> f64 {
        let runs = 10;
        let mut total = 0.0;
        for seed in 0..runs {
            let mut sim = Sim::new(800 + seed);
            let cfg = ConnectionConfig::new(
                vec![
                    SubflowConfig::new(
                        PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(0.03),
                    ),
                    SubflowConfig::new(
                        PathConfig::symmetric(from_millis(30), 1_250_000).with_loss(0.03),
                    ),
                ],
                SchedulerSpec::dsl(schedulers::DEFAULT_MIN_RTT),
            )
            .with_receiver_mode(mode)
            .with_timelines();
            let conn = sim.add_connection(cfg).unwrap();
            sim.app_send_at(conn, 0, 60_000, 0);
            sim.run_to_completion(60 * SECONDS);
            total += sim.connections[conn]
                .stats
                .delivery_time_of(60_000)
                .expect("completes") as f64;
        }
        total / runs as f64
    };
    let improved = mean_fct(ReceiverMode::Improved);
    let legacy = mean_fct(ReceiverMode::Legacy);
    assert!(
        improved <= legacy,
        "improved receiver must not be slower: {improved} vs {legacy}"
    );
}
