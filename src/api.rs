//! The application-facing ProgMP API, mirroring the paper's Python
//! library (Fig. 8) and extended socket API (§3.2):
//!
//! * **Choosing a scheduler** — load named scheduler specifications once,
//!   reuse them across connections (avoiding recompilation), and bind a
//!   scheduler per connection.
//! * **Setting registers** — signal scheduling intents (target
//!   throughput, end-of-flow, handover) to the in-kernel scheduler.
//! * **Packet properties** — annotate application data for differentiated
//!   per-packet handling.
//!
//! In the paper these operations travel through `sockopts` into the
//! kernel runtime; here they operate on a [`Sim`] connection.

use mptcp_sim::{ConnId, SchedulerHandle, Sim};
use progmp_core::env::{RegId, Trigger};
use progmp_core::{compile_named, Backend, CompileError, InstanceStats, SchedulerProgram};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Errors of the application API.
#[derive(Debug)]
pub enum ApiError {
    /// The scheduler source failed to compile.
    Compile(CompileError),
    /// No scheduler with this name has been loaded.
    UnknownScheduler(String),
    /// The connection id does not exist.
    UnknownConnection(ConnId),
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Compile(e) => write!(f, "scheduler loading error: {e}"),
            ApiError::UnknownScheduler(n) => write!(f, "unknown scheduler `{n}`"),
            ApiError::UnknownConnection(c) => write!(f, "unknown connection {c}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<CompileError> for ApiError {
    fn from(e: CompileError) -> Self {
        ApiError::Compile(e)
    }
}

/// The ProgMP application library: a registry of loaded schedulers plus
/// per-connection control operations.
#[derive(Default)]
pub struct ProgMp {
    registry: HashMap<String, Arc<SchedulerProgram>>,
}

impl ProgMp {
    /// Creates an empty API handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads (compiles and verifies) a scheduler specification under
    /// `name`. Reloading the same name replaces the program; running
    /// connections keep their current instance.
    ///
    /// # Errors
    ///
    /// [`ApiError::Compile`] when the specification is rejected by any
    /// compilation stage.
    pub fn load_scheduler(&mut self, name: &str, source: &str) -> Result<(), ApiError> {
        let program = compile_named(Some(name), source)?;
        self.registry.insert(name.to_string(), Arc::new(program));
        Ok(())
    }

    /// Whether `name` is loaded.
    pub fn is_loaded(&self, name: &str) -> bool {
        self.registry.contains_key(name)
    }

    /// Names of loaded schedulers.
    pub fn loaded(&self) -> Vec<&str> {
        self.registry.keys().map(String::as_str).collect()
    }

    /// Total resident bytes of all loaded scheduler programs (the §4.3
    /// memory accounting).
    pub fn loaded_bytes(&self) -> usize {
        self.registry.values().map(|p| p.size_bytes()).sum()
    }

    /// Binds the loaded scheduler `name` to `conn`, instantiated on
    /// `backend`. The paper discourages switching schedulers mid-stream
    /// (§3.2); this API allows it but the new instance starts from the
    /// connection's current register state.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownScheduler`] / [`ApiError::UnknownConnection`].
    pub fn set_scheduler(
        &self,
        sim: &mut Sim,
        conn: ConnId,
        name: &str,
        backend: Backend,
    ) -> Result<(), ApiError> {
        let program = self
            .registry
            .get(name)
            .ok_or_else(|| ApiError::UnknownScheduler(name.to_string()))?;
        let connection = sim
            .connections
            .get_mut(conn)
            .ok_or(ApiError::UnknownConnection(conn))?;
        let instance = SchedulerProgram::instantiate_shared(Arc::clone(program), backend);
        connection.scheduler = Some(SchedulerHandle::Dsl(instance));
        Ok(())
    }

    /// Writes scheduler register `reg` of `conn` and triggers a scheduler
    /// execution (the `RegisterChanged` event of the calling model).
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownConnection`].
    pub fn set_register(
        &self,
        sim: &mut Sim,
        conn: ConnId,
        reg: RegId,
        value: i64,
    ) -> Result<(), ApiError> {
        let connection = sim
            .connections
            .get_mut(conn)
            .ok_or(ApiError::UnknownConnection(conn))?;
        connection.set_register_direct(reg, value);
        let now = sim.now;
        sim.trigger_at(conn, now, Trigger::RegisterChanged);
        Ok(())
    }

    /// Reads scheduler register `reg` of `conn`.
    ///
    /// # Errors
    ///
    /// [`ApiError::UnknownConnection`].
    pub fn register(&self, sim: &Sim, conn: ConnId, reg: RegId) -> Result<i64, ApiError> {
        sim.connections
            .get(conn)
            .map(|c| c.register_direct(reg))
            .ok_or(ApiError::UnknownConnection(conn))
    }

    /// Sends application data annotated with packet property `prop`
    /// (per-packet scheduling intents, §3.2) at simulation time `at`.
    pub fn send_with_property(&self, sim: &mut Sim, conn: ConnId, at: u64, bytes: u64, prop: u32) {
        sim.app_send_at(conn, at, bytes, prop);
    }

    /// Proc-style introspection: the cumulative execution statistics of
    /// the connection's scheduler instance, when it runs a DSL program.
    pub fn scheduler_stats(&self, sim: &Sim, conn: ConnId) -> Option<InstanceStats> {
        match sim.connections.get(conn)?.scheduler.as_ref()? {
            SchedulerHandle::Dsl(inst) => Some(inst.stats()),
            SchedulerHandle::Native(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mptcp_sim::time::{from_millis, SECONDS};
    use mptcp_sim::{ConnectionConfig, PathConfig, SchedulerSpec, SubflowConfig};

    fn sim_with_conn() -> (Sim, ConnId) {
        let mut sim = Sim::new(1);
        let conn = sim
            .add_connection(ConnectionConfig::new(
                vec![
                    SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
                    SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
                ],
                SchedulerSpec::dsl(progmp_schedulers::DEFAULT_MIN_RTT),
            ))
            .unwrap();
        (sim, conn)
    }

    #[test]
    fn load_and_bind_scheduler() {
        let mut api = ProgMp::new();
        api.load_scheduler("minRtt", progmp_schedulers::MIN_RTT_SIMPLE)
            .unwrap();
        assert!(api.is_loaded("minRtt"));
        assert!(api.loaded_bytes() > 0);
        let (mut sim, conn) = sim_with_conn();
        api.set_scheduler(&mut sim, conn, "minRtt", Backend::Vm)
            .unwrap();
        sim.app_send_at(conn, 0, 10_000, 0);
        sim.run_to_completion(5 * SECONDS);
        assert!(sim.connections[conn].all_acked());
        let stats = api.scheduler_stats(&sim, conn).unwrap();
        assert!(stats.executions > 0);
    }

    #[test]
    fn loading_error_is_reported() {
        let mut api = ProgMp::new();
        let err = api.load_scheduler("bad", "VAR x = ;").unwrap_err();
        assert!(matches!(err, ApiError::Compile(_)));
        assert!(err.to_string().contains("scheduler loading error"));
    }

    #[test]
    fn unknown_scheduler_and_connection() {
        let api = ProgMp::new();
        let (mut sim, conn) = sim_with_conn();
        assert!(matches!(
            api.set_scheduler(&mut sim, conn, "nope", Backend::Vm),
            Err(ApiError::UnknownScheduler(_))
        ));
        assert!(matches!(
            api.set_register(&mut sim, 99, RegId::R1, 1),
            Err(ApiError::UnknownConnection(99))
        ));
    }

    #[test]
    fn set_register_triggers_scheduler() {
        let mut api = ProgMp::new();
        api.load_scheduler("counter", "SET(R2, R2 + 1);").unwrap();
        let (mut sim, conn) = sim_with_conn();
        api.set_scheduler(&mut sim, conn, "counter", Backend::Interpreter)
            .unwrap();
        api.set_register(&mut sim, conn, RegId::R1, 5).unwrap();
        sim.run_until(SECONDS);
        assert_eq!(api.register(&sim, conn, RegId::R1).unwrap(), 5);
        assert!(api.register(&sim, conn, RegId::R2).unwrap() >= 1);
    }

    #[test]
    fn scheduler_swap_mid_stream() {
        // The API allows replacing a connection's scheduler (the paper
        // discourages it but supports it); registers survive the swap.
        let mut api = ProgMp::new();
        api.load_scheduler("a", "SET(R1, R1 + 1);").unwrap();
        api.load_scheduler("b", progmp_schedulers::DEFAULT_MIN_RTT)
            .unwrap();
        let (mut sim, conn) = sim_with_conn();
        api.set_scheduler(&mut sim, conn, "a", Backend::Vm).unwrap();
        api.set_register(&mut sim, conn, RegId::R5, 77).unwrap();
        sim.run_until(from_millis(10));
        api.set_scheduler(&mut sim, conn, "b", Backend::Aot)
            .unwrap();
        sim.app_send_at(conn, sim.now, 10_000, 0);
        sim.run_to_completion(5 * SECONDS);
        assert!(sim.connections[conn].all_acked());
        assert_eq!(api.register(&sim, conn, RegId::R5).unwrap(), 77);
    }

    #[test]
    fn reloading_a_scheduler_replaces_it() {
        let mut api = ProgMp::new();
        api.load_scheduler("x", "SET(R1, 1);").unwrap();
        let first = api.loaded_bytes();
        api.load_scheduler("x", progmp_schedulers::TAP).unwrap();
        assert!(api.loaded_bytes() > first, "larger program replaced it");
        assert_eq!(api.loaded().len(), 1);
    }

    #[test]
    fn shared_program_across_connections() {
        let mut api = ProgMp::new();
        api.load_scheduler("shared", progmp_schedulers::DEFAULT_MIN_RTT)
            .unwrap();
        let mut sim = Sim::new(2);
        let mut conns = Vec::new();
        for _ in 0..3 {
            let c = sim
                .add_connection(ConnectionConfig::new(
                    vec![SubflowConfig::new(PathConfig::symmetric(
                        from_millis(10),
                        1_250_000,
                    ))],
                    SchedulerSpec::dsl(progmp_schedulers::MIN_RTT_SIMPLE),
                ))
                .unwrap();
            api.set_scheduler(&mut sim, c, "shared", Backend::Vm)
                .unwrap();
            sim.app_send_at(c, 0, 5_000, 0);
            conns.push(c);
        }
        sim.run_to_completion(5 * SECONDS);
        for c in conns {
            assert!(sim.connections[c].all_acked());
        }
    }
}
