//! # progmp
//!
//! A programming model for application-defined Multipath TCP scheduling —
//! a Rust reproduction of Frömmgen et al., *Middleware '17*.
//!
//! This facade crate re-exports the workspace members and provides the
//! high-level application API mirroring the paper's Python library
//! (Fig. 8): load schedulers, bind them to connections, set registers,
//! and annotate packets.
//!
//! * [`progmp_core`] — the scheduler specification language, its three
//!   execution backends (interpreter, AOT closures, eBPF-flavoured
//!   bytecode VM with verifier + linear-scan register allocation), and
//!   the effect model.
//! * [`mptcp_sim`] — the discrete-event MPTCP substrate (subflows,
//!   congestion control, meta socket queues, receiver reordering).
//! * [`progmp_schedulers`] — every scheduler from the paper as a DSL
//!   program.
//! * [`http2_sim`] — the HTTP/2-aware page-load model of §5.5.
//!
//! ## Quickstart
//!
//! ```
//! use progmp::prelude::*;
//!
//! // Specify a scheduler (the paper's Fig. 3 example), load it, and run
//! // a two-path transfer in the simulator.
//! let mut sim = Sim::new(42);
//! let conn = sim.add_connection(ConnectionConfig::new(
//!     vec![
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(10), 1_250_000)),
//!         SubflowConfig::new(PathConfig::symmetric(from_millis(40), 1_250_000)),
//!     ],
//!     SchedulerSpec::dsl(progmp_schedulers::DEFAULT_MIN_RTT),
//! )).expect("scheduler compiles");
//! sim.app_send_at(conn, 0, 100_000, 0);
//! sim.run_to_completion(10 * SECONDS);
//! assert!(sim.connections[conn].all_acked());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use http2_sim;
pub use mptcp_sim;
pub use progmp_core;
pub use progmp_schedulers;

pub mod api;

/// Convenient single-import surface for examples and applications.
pub mod prelude {
    pub use crate::api::ProgMp;
    pub use http2_sim::{run_page_load, Page, PageLoadResult, ServerMode, WifiLteProfile};
    pub use mptcp_sim::time::{from_micros, from_millis, from_secs_f64, MILLIS, SECONDS};
    pub use mptcp_sim::{
        CcAlgo, ConnectionConfig, PathConfig, ReceiverMode, SchedulerSpec, Sim, SubflowConfig,
    };
    pub use progmp_core::env::{PacketProp, QueueKind, RegId, SubflowProp, Trigger};
    pub use progmp_core::{compile, Backend, SchedulerInstance, SchedulerProgram};
    pub use progmp_schedulers as schedulers;
}
