//! Admission-verifier lint driver.
//!
//! ```text
//! progmp-lint [--json] [--inspect] [--bytecode] <file.progmp | scheduler-name>...
//! progmp-lint [--json] [--inspect] [--bytecode] --all
//! ```
//!
//! Each argument is either a path to a scheduler source file or the name
//! of a bundled scheduler (e.g. `minRttSimple`, `tap` — see
//! `progmp_schedulers::sources::ALL`). `--all` lints every bundled
//! scheduler. Programs are compiled in *observe* mode so diagnostics are
//! reported even for programs the enforcing admission gate would reject.
//!
//! * default: human-readable verdicts (severity, lint name, source span,
//!   certified step bound);
//! * `--json`: one JSON object per program, machine-readable;
//! * `--inspect`: additionally print the static audit report
//!   (`progmp_core::analysis`) next to each verdict;
//! * `--bytecode`: additionally print the bytecode verifier's verdict
//!   and annotated register-state listing — each instruction with its
//!   source span and the abstract values (intervals, handle kinds,
//!   nullability) the dataflow verifier inferred on entry. The bytecode
//!   verdict participates in the exit status like the admission verdict.
//! * `--optimize`: run the verified bytecode optimizer and print the
//!   per-pass rewrite counts, instruction count before/after, step bound
//!   before/after, any `misoptimization` rollback diagnostics, and the
//!   annotated disassembly of the *optimized* image. With `--json`, the
//!   report appears as an `"optimizer"` object on each program entry.
//! * `--strict` (with `--optimize`): escalate any fail-open optimizer
//!   rollback to a hard compile error — the CI posture, where a pass
//!   that cannot be re-certified on a first-party scheduler is a
//!   compiler regression, not a shrug.
//! * `--properties`: additionally derive and print the semantic property
//!   certificate (work-conservation, per-subflow starvation, redundancy
//!   bound, reinjection safety; see `progmp_core::verify::props`). A
//!   *refuted* property counts as a warning-class finding; with `--json`
//!   the certificate appears as a `"properties"` object on each entry.
//! * `--strict-warnings`: exit `2` when the run is otherwise clean but
//!   any program produced warning-severity findings (including refuted
//!   properties under `--properties`) — lets CI gate on warnings without
//!   conflating them with rejects.
//!
//! Exit status: `0` when every program is admitted and (under
//! `--strict-warnings`) warning-free, `1` when any program has
//! error-severity findings or fails to compile, `2` when clean of errors
//! but a warning was reported and `--strict-warnings` is set, `64` on
//! usage errors.

use std::process::ExitCode;

use progmp_core::{compile_with_options, CompileOptions, Severity};

struct Options {
    json: bool,
    inspect: bool,
    bytecode: bool,
    optimize: bool,
    strict: bool,
    properties: bool,
    strict_warnings: bool,
    targets: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: progmp-lint [--json] [--inspect] [--bytecode] [--optimize [--strict]] [--properties] [--strict-warnings] <file.progmp | scheduler-name>...\n\
         \x20      progmp-lint [... same flags ...] --all\n\
         \n\
         flags:\n\
         \x20 --json             machine-readable output, one JSON object per program\n\
         \x20 --inspect          also print the static audit report\n\
         \x20 --bytecode         also run and print the bytecode verifier\n\
         \x20 --optimize         run the verified bytecode optimizer and report per-pass counts\n\
         \x20 --strict           (with --optimize) escalate optimizer rollbacks to hard errors\n\
         \x20 --properties       derive and print the semantic property certificate\n\
         \x20                    (work-conservation, starvation, redundancy bound, reinjection)\n\
         \x20 --strict-warnings  exit 2 when clean of errors but warnings were reported\n\
         \n\
         exit status: 0 clean; 1 admission/bytecode reject or compile error;\n\
         \x20            2 warnings under --strict-warnings; 64 usage error\n\
         \n\
         bundled scheduler names:"
    );
    for (name, _) in progmp_schedulers::sources::ALL {
        eprintln!("  {name}");
    }
    ExitCode::from(64)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        json: false,
        inspect: false,
        bytecode: false,
        optimize: false,
        strict: false,
        properties: false,
        strict_warnings: false,
        targets: Vec::new(),
    };
    let mut all = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--inspect" => opts.inspect = true,
            "--bytecode" => opts.bytecode = true,
            "--optimize" => opts.optimize = true,
            "--strict" => opts.strict = true,
            "--properties" => opts.properties = true,
            "--strict-warnings" => opts.strict_warnings = true,
            "--all" => all = true,
            "--help" | "-h" => return Err(usage()),
            other if other.starts_with("--") => return Err(usage()),
            other => opts.targets.push(other.to_string()),
        }
    }
    if all {
        opts.targets.extend(
            progmp_schedulers::sources::ALL
                .iter()
                .map(|(name, _)| name.to_string()),
        );
    }
    if opts.targets.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Resolves a target to `(display name, source text)`: bundled scheduler
/// names take precedence, anything else is read as a file path.
fn resolve(target: &str) -> Result<(String, String), String> {
    if let Some((name, src)) = progmp_schedulers::sources::ALL
        .iter()
        .find(|(name, _)| *name == target)
    {
        return Ok((name.to_string(), src.to_string()));
    }
    match std::fs::read_to_string(target) {
        Ok(src) => Ok((target.to_string(), src)),
        Err(e) => Err(format!(
            "{target}: not a bundled scheduler name and unreadable as a file: {e}"
        )),
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let mut failed = false;
    let mut warned = false;
    let mut first = true;
    if opts.json {
        println!("[");
    }
    for target in &opts.targets {
        if opts.json && !first {
            println!(",");
        }
        first = false;
        let (name, source) = match resolve(target) {
            Ok(pair) => pair,
            Err(msg) => {
                failed = true;
                if opts.json {
                    print!(
                        "{{\"name\":\"{}\",\"error\":\"{}\"}}",
                        json_escape(target),
                        json_escape(&msg)
                    );
                } else {
                    eprintln!("error: {msg}");
                }
                continue;
            }
        };
        let compiled = compile_with_options(
            Some(&name),
            &source,
            CompileOptions {
                enforce_admission: false,
                optimize_bytecode: opts.optimize,
                strict_optimize: opts.strict,
                ..CompileOptions::default()
            },
        );
        match compiled {
            Ok(program) => {
                let verdict = program.verdict();
                if !verdict.admitted() {
                    failed = true;
                }
                if verdict.count(Severity::Warning) > 0 {
                    warned = true;
                }
                if opts.properties {
                    // A refuted property surfaces as a warning-severity
                    // diagnostic: it never gates admission, but it does
                    // trip `--strict-warnings`.
                    let cert = program.property_certificate();
                    if cert
                        .diagnostics()
                        .iter()
                        .any(|d| d.severity == Severity::Warning)
                    {
                        warned = true;
                    }
                }
                if opts.json {
                    let mut obj = verdict.render_json(&name);
                    if let Some(report) = program.opt_report() {
                        // Splice the optimizer report into the verdict
                        // object as an "optimizer" key.
                        let trimmed = obj.trim_end().strip_suffix('}').unwrap().to_string();
                        obj = format!("{trimmed},\"optimizer\":{}}}", report.render_json());
                    }
                    if opts.properties {
                        let trimmed = obj.trim_end().strip_suffix('}').unwrap().to_string();
                        obj = format!(
                            "{trimmed},\"properties\":{}}}",
                            program.property_certificate().render_json()
                        );
                    }
                    print!("{obj}");
                } else {
                    println!("{}", verdict.render_human(&name));
                    if opts.properties {
                        print!("{}", program.property_certificate().render_human(&name));
                        println!();
                    }
                }
                if opts.optimize && !opts.json {
                    if let Some(report) = program.opt_report() {
                        println!("--- optimizer: {name} ---");
                        print!("{}", report.render_human());
                        println!("--- optimized disassembly: {name} ---");
                        println!("{}", program.bytecode_report());
                    }
                }
                if opts.inspect && !opts.json {
                    println!("--- static audit: {name} ---");
                    println!("{}", program.analyze());
                    println!();
                }
                if opts.bytecode {
                    let bv = program.bytecode_verdict();
                    if !bv.admitted() {
                        failed = true;
                    }
                    if bv.count(Severity::Warning) > 0 {
                        warned = true;
                    }
                    if !opts.json {
                        println!("--- bytecode verification: {name} ---");
                        println!("{}", program.bytecode_report());
                    }
                }
            }
            Err(e) => {
                failed = true;
                if opts.json {
                    print!(
                        "{{\"name\":\"{}\",\"error\":\"{}\"}}",
                        json_escape(&name),
                        json_escape(&e.to_string())
                    );
                } else {
                    eprintln!("{name}: COMPILE ERROR: {e}");
                }
            }
        }
    }
    if opts.json {
        println!("\n]");
    }
    if failed {
        ExitCode::from(1)
    } else if opts.strict_warnings && warned {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
