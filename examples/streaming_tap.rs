//! Interactive streaming with the throughput- and preference-aware (TAP)
//! scheduler — the paper's motivating scenario (Fig. 1) and its solution
//! (Fig. 13).
//!
//! An interactive stream runs at 1 MB/s for 6 s, then switches to 4 MB/s.
//! WiFi (10 ms RTT, ~3 MB/s with fluctuations) is preferred; LTE (40 ms)
//! is metered. The default minRTT scheduler spills a substantial share
//! onto LTE even when WiFi would suffice; TAP uses LTE only for the
//! leftover above WiFi capacity once the 4 MB/s phase starts.
//!
//! Run with: `cargo run --example streaming_tap`

use progmp::prelude::*;

const WIFI_RATE: u64 = 3_000_000;
const LTE_RATE: u64 = 2_500_000;
const STREAM_END_S: u64 = 12;

fn run_stream(scheduler: SchedulerSpec, target_bw: Option<(u64, u64)>) -> (f64, f64, u64, u64) {
    let mut sim = Sim::new(1234);
    // WiFi with throughput fluctuations (±20% every 2 s).
    let mut wifi = PathConfig::symmetric(from_millis(10), WIFI_RATE);
    for (i, rate) in [2_400_000u64, 3_000_000, 2_600_000, 3_200_000, 2_500_000]
        .iter()
        .enumerate()
    {
        wifi = wifi.with_profile_entry(mptcp_sim::PathProfileEntry {
            at: (2 * (i as u64 + 1)) * SECONDS,
            rate: Some(*rate),
            loss: None,
            fwd_delay: None,
        });
    }
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(wifi),
            SubflowConfig::new(PathConfig::symmetric(from_millis(40), LTE_RATE)).with_cost(1),
        ],
        scheduler,
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();

    // Application signals its target bitrate to the scheduler (TAP reads
    // it from R1; the default scheduler ignores it).
    if let Some((r1_initial, r1_high)) = target_bw {
        sim.set_register_at(conn, 0, RegId::R1, r1_initial as i64);
        sim.set_register_at(conn, 6 * SECONDS, RegId::R1, r1_high as i64);
    }

    // The stream: 1 MB/s for 6 s, then 4 MB/s (Fig. 1).
    sim.add_cbr_source(conn, 0, 6 * SECONDS, 1_000_000, from_millis(20), 0);
    sim.add_cbr_source(
        conn,
        6 * SECONDS,
        STREAM_END_S * SECONDS,
        4_000_000,
        from_millis(20),
        0,
    );
    sim.run_to_completion((STREAM_END_S + 8) * SECONDS);

    let c = &sim.connections[conn];
    let goodput = c.stats.goodput(sim.now.min(STREAM_END_S * SECONDS));
    let lte_share = c.stats.subflows[1].tx_bytes as f64 / c.stats.tx_bytes.max(1) as f64;
    (
        goodput,
        lte_share,
        c.stats.subflows[0].tx_bytes,
        c.stats.subflows[1].tx_bytes,
    )
}

fn main() {
    println!("Interactive stream: 1 MB/s (0-6s) then 4 MB/s (6-12s)");
    println!("WiFi preferred (10 ms, ~3 MB/s fluctuating), LTE metered (40 ms)\n");
    println!(
        "{:<22} {:>12} {:>10} {:>12} {:>12}",
        "scheduler", "goodput B/s", "LTE share", "WiFi bytes", "LTE bytes"
    );

    let (gp, lte, wb, lb) = run_stream(SchedulerSpec::dsl(schedulers::DEFAULT_MIN_RTT), None);
    println!(
        "{:<22} {:>12.0} {:>9.1}% {:>12} {:>12}",
        "default (minRTT)",
        gp,
        lte * 100.0,
        wb,
        lb
    );
    let default_lte = lte;

    let (gp, lte, wb, lb) = run_stream(
        SchedulerSpec::dsl(schedulers::TAP),
        Some((1_000_000, 4_000_000)),
    );
    println!(
        "{:<22} {:>12.0} {:>9.1}% {:>12} {:>12}",
        "TAP (R1 = bitrate)",
        gp,
        lte * 100.0,
        wb,
        lb
    );

    println!(
        "\nTAP reduced the metered-LTE share from {:.1}% to {:.1}% while sustaining the stream.",
        default_lte * 100.0,
        lte * 100.0
    );
    assert!(
        lte < default_lte,
        "TAP must use less LTE than the default scheduler"
    );
}
