//! Automated WiFi→LTE handover: the path manager (paper building block
//! (ii)) monitors the primary subflow, establishes the standby cellular
//! subflow when WiFi degrades, and signals `R3` so the handover-aware
//! scheduler (§5.2) aggressively compensates WiFi's in-flight losses —
//! all without any manual orchestration by the application.
//!
//! Run with: `cargo run --release --example automated_handover`

use progmp::mptcp_sim::{PathManager, PathManagerPolicy, PathProfileEntry};
use progmp::prelude::*;

fn run(with_path_manager: bool) -> (f64, u64, u64) {
    let mut sim = Sim::new(99);
    // WiFi degrades hard at t = 1.5 s (50% loss: the user walks away from
    // the access point), then the link is gone.
    let wifi = PathConfig::symmetric(from_millis(15), 1_250_000)
        .with_profile_entry(PathProfileEntry {
            at: 1500 * MILLIS,
            rate: None,
            loss: Some(0.5),
            fwd_delay: None,
        })
        .with_profile_entry(PathProfileEntry {
            at: 2500 * MILLIS,
            rate: None,
            loss: Some(1.0),
            fwd_delay: None,
        });
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(wifi),
            // Cellular standby: configured but not established.
            SubflowConfig::new(PathConfig::symmetric(from_millis(45), 1_250_000))
                .starting_at(u64::MAX),
        ],
        SchedulerSpec::dsl(schedulers::HANDOVER_AWARE),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();

    if with_path_manager {
        sim.attach_path_manager(
            conn,
            PathManager::new(
                PathManagerPolicy::Handover {
                    primary: 0,
                    standby: 1,
                    rtt_threshold: from_millis(400),
                    loss_delta_threshold: 2,
                    recovery_ticks: 5,
                },
                50 * MILLIS,
            ),
        );
    } else {
        // Without a path manager, nothing ever establishes the standby.
        // Bring it up manually late, as a distracted application might.
        sim.subflow_up_at(conn, 1, 4 * SECONDS);
    }
    // The WiFi link is eventually torn down by the OS either way.
    sim.subflow_down_at(conn, 0, 4500 * MILLIS);

    // A 400 KB/s stream across the handover.
    sim.add_cbr_source(conn, 0, 5 * SECONDS, 400_000, from_millis(20), 0);
    sim.run_to_completion(60 * SECONDS);

    let c = &sim.connections[conn];
    // Longest delivery stall after the degradation begins.
    let mut last = 1400 * MILLIS;
    let mut max_gap = 0u64;
    for &(t, _) in c
        .stats
        .delivery_timeline
        .iter()
        .filter(|(t, _)| *t >= 1400 * MILLIS)
    {
        max_gap = max_gap.max(t.saturating_sub(last));
        last = t;
    }
    (
        max_gap as f64 / 1e6,
        c.stats.subflows[1].tx_packets,
        c.stats.delivered_bytes,
    )
}

fn main() {
    println!("WiFi degrades at t=1.5s and dies at 2.5s; 400 KB/s stream until t=5s\n");
    println!(
        "{:<28} {:>15} {:>12} {:>12}",
        "configuration", "max stall (ms)", "LTE packets", "delivered"
    );
    let (stall_manual, lte_manual, deliv_manual) = run(false);
    println!(
        "{:<28} {:>15.1} {:>12} {:>12}",
        "manual (late) handover", stall_manual, lte_manual, deliv_manual
    );
    let (stall_pm, lte_pm, deliv_pm) = run(true);
    println!(
        "{:<28} {:>15.1} {:>12} {:>12}",
        "path manager + R3 signal", stall_pm, lte_pm, deliv_pm
    );
    println!(
        "\nThe path manager detects the loss burst within one tick, brings the\n\
         cellular subflow up, and signals the handover-aware scheduler: the\n\
         delivery stall drops from {stall_manual:.0} ms to {stall_pm:.0} ms."
    );
    assert!(stall_pm < stall_manual, "automation must shorten the stall");
    assert_eq!(deliv_pm, deliv_manual, "both deliver the full stream");
}
