//! Quickstart: write a scheduler in the ProgMP specification language,
//! compile it through the full pipeline (parse → type check → optimize →
//! bytecode → verify), bind it to a simulated two-path MPTCP connection,
//! and watch it schedule.
//!
//! Run with: `cargo run --example quickstart`

use progmp::prelude::*;

fn main() {
    // A scheduler in the specification language (paper Fig. 3, extended
    // with window checks): push on the lowest-RTT subflow that still has
    // congestion-window space.
    let spec = "
        VAR avail = SUBFLOWS.FILTER(sbf => !sbf.TSQ_THROTTLED AND !sbf.LOSSY
            AND sbf.CWND > sbf.SKBS_IN_FLIGHT + sbf.QUEUED);
        IF (!Q.EMPTY) {
            VAR s = avail.MIN(sbf => sbf.RTT);
            IF (s != NULL) { s.PUSH(Q.POP()); }
        }";

    // 1. Load the scheduler through the application API.
    let mut api = ProgMp::new();
    api.load_scheduler("myMinRtt", spec)
        .expect("scheduler compiles");
    println!(
        "loaded scheduler `myMinRtt` ({} bytes resident)",
        api.loaded_bytes()
    );

    // Peek at what the eBPF-flavoured cross-compiler produced.
    let program = compile(spec).unwrap();
    let dis = program.disassemble();
    println!(
        "\nbytecode ({} instructions), first lines:",
        dis.lines().count()
    );
    for line in dis.lines().take(8) {
        println!("  {line}");
    }

    // 2. Build a WiFi + LTE connection in the simulator.
    let mut sim = Sim::new(42);
    let conn = sim
        .add_connection(ConnectionConfig::new(
            vec![
                SubflowConfig::new(PathConfig::symmetric(from_millis(10), 2_500_000)), // WiFi
                SubflowConfig::new(PathConfig::symmetric(from_millis(40), 2_500_000)), // LTE
            ],
            SchedulerSpec::dsl(spec),
        ))
        .unwrap();
    api.set_scheduler(&mut sim, conn, "myMinRtt", Backend::Vm)
        .unwrap();

    // 3. Send 1 MB and run.
    sim.app_send_at(conn, 0, 1_000_000, 0);
    sim.run_to_completion(30 * SECONDS);

    // 4. Inspect the outcome.
    let c = &sim.connections[conn];
    println!("\ntransfer finished at t = {:.3} s", sim.now as f64 / 1e9);
    println!(
        "  delivered:  {} bytes (all acked: {})",
        c.stats.delivered_bytes,
        c.all_acked()
    );
    println!("  tx packets: {}", c.stats.tx_packets);
    for (i, s) in c.stats.subflows.iter().enumerate() {
        println!(
            "  subflow {i} ({}): {:>6} packets, {:>9} bytes",
            if i == 0 { "WiFi, 10 ms" } else { "LTE, 40 ms" },
            s.tx_packets,
            s.tx_bytes,
        );
    }
    let stats = api.scheduler_stats(&sim, conn).unwrap();
    println!(
        "  scheduler: {} executions, {} steps total, backend = vm",
        stats.executions, c.stats.scheduler_steps
    );

    assert!(c.all_acked(), "quickstart transfer must complete");
}
