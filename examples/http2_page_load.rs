//! HTTP/2-aware scheduling (paper §5.5, Fig. 14): an MPTCP-aware web
//! server annotates packets with content classes; the HTTP/2-aware
//! scheduler speeds up dependency resolution (head data avoids high-RTT
//! subflows) and keeps post-initial content off the metered LTE subflow.
//!
//! Run with: `cargo run --release --example http2_page_load`

use progmp::prelude::*;

fn main() {
    let page = Page::amazon_like();
    println!(
        "Page: {} objects, {} KB total ({} KB post-initial)\n",
        page.objects.len(),
        page.total_bytes() / 1000,
        page.class_bytes(progmp::http2_sim::ContentClass::PostInitial) / 1000
    );

    let profile = WifiLteProfile::default();
    println!(
        "Paths: WiFi {} ms (preferred), LTE {} ms (metered)\n",
        profile.wifi_rtt / MILLIS,
        profile.lte_rtt / MILLIS
    );

    println!(
        "{:<34} {:>10} {:>12} {:>10} {:>10}",
        "configuration", "deps (ms)", "initial (ms)", "full (ms)", "LTE KB"
    );

    let unaware = run_page_load(
        &page,
        &profile,
        schedulers::DEFAULT_MIN_RTT,
        ServerMode::Legacy,
        7,
    )
    .unwrap();
    print_row("default scheduler, legacy server", &unaware);

    let aware = run_page_load(
        &page,
        &profile,
        schedulers::HTTP2_AWARE,
        ServerMode::Aware,
        7,
    )
    .unwrap();
    print_row("HTTP/2-aware + MPTCP-aware server", &aware);

    println!(
        "\nMetered LTE usage reduced by {:.0}% ({} KB -> {} KB) \
         while the initial page time stays comparable.",
        (1.0 - aware.lte_bytes as f64 / unaware.lte_bytes.max(1) as f64) * 100.0,
        unaware.lte_bytes / 1000,
        aware.lte_bytes / 1000
    );
    assert!(aware.lte_bytes < unaware.lte_bytes);
}

fn print_row(name: &str, r: &PageLoadResult) {
    println!(
        "{:<34} {:>10.1} {:>12.1} {:>10.1} {:>10}",
        name,
        r.dependency_resolved as f64 / 1e6,
        r.initial_page_time as f64 / 1e6,
        r.full_load_time as f64 / 1e6,
        r.lte_bytes / 1000
    );
}
