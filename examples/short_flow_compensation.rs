//! Signaling to boost short flows (paper §5.3, Fig. 12): the application
//! signals the end of a flow through register `R2`; the `Compensating`
//! scheduler retransmits packets in flight on the subflows they have not
//! used, compensating earlier scheduling decisions on heterogeneous
//! paths. The `Selective Compensation` variant only compensates when the
//! RTT ratio exceeds 2.
//!
//! Run with: `cargo run --release --example short_flow_compensation`

use progmp::prelude::*;

const FLOW_BYTES: u64 = 12 * 1400;
const BASE_RTT_MS: u64 = 15;

/// Runs one short flow; the application signals end-of-flow right after
/// the last byte is handed to the transport.
fn one_flow(scheduler_src: &str, rtt_ratio: u64, seed: u64) -> (f64, f64) {
    let mut sim = Sim::new(seed);
    let cfg = ConnectionConfig::new(
        vec![
            SubflowConfig::new(PathConfig::symmetric(from_millis(BASE_RTT_MS), 1_250_000)),
            SubflowConfig::new(PathConfig::symmetric(
                from_millis(BASE_RTT_MS * rtt_ratio),
                1_250_000,
            )),
        ],
        SchedulerSpec::dsl(scheduler_src),
    )
    .with_timelines();
    let conn = sim.add_connection(cfg).unwrap();
    sim.app_send_at(conn, 0, FLOW_BYTES, 0);
    // End-of-flow signal (paper: "signaling the end of flow by the
    // application"): R2 = 1 immediately after the data is enqueued.
    sim.set_register_at(conn, 1, RegId::R2, 1);
    sim.run_to_completion(30 * SECONDS);
    let c = &sim.connections[conn];
    let fct = c.stats.delivery_time_of(FLOW_BYTES).expect("completed") as f64 / 1e6;
    (fct, c.stats.overhead_ratio())
}

fn mean(scheduler_src: &str, ratio: u64) -> (f64, f64) {
    let runs = 15;
    let mut fct = 0.0;
    let mut ovh = 0.0;
    for i in 0..runs {
        let (f, o) = one_flow(scheduler_src, ratio, 900 + i);
        fct += f;
        ovh += o;
    }
    (fct / runs as f64, ovh / runs as f64)
}

fn main() {
    println!(
        "Short flow ({} packets), subflow 1 at {} ms, subflow 2 at ratio x {} ms\n",
        FLOW_BYTES / 1400,
        BASE_RTT_MS,
        BASE_RTT_MS
    );
    println!(
        "{:>5} | {:>12} {:>9} | {:>12} {:>9} | {:>12} {:>9}",
        "ratio", "default FCT", "ovh", "compens FCT", "ovh", "selective", "ovh"
    );
    for ratio in [1u64, 2, 4, 6, 8] {
        let (d_fct, d_ovh) = mean(schedulers::DEFAULT_MIN_RTT, ratio);
        let (c_fct, c_ovh) = mean(schedulers::COMPENSATING, ratio);
        let (s_fct, s_ovh) = mean(schedulers::SELECTIVE_COMPENSATION, ratio);
        println!(
            "{ratio:>5} | {d_fct:>9.1} ms {d_ovh:>8.2}x | {c_fct:>9.1} ms {c_ovh:>8.2}x | {s_fct:>9.1} ms {s_ovh:>8.2}x"
        );
    }
    println!(
        "\nThe Compensating scheduler retains the FCT under skewed RTT ratios; \
         Selective Compensation avoids the overhead when the ratio is small."
    );
}
