//! Exploring redundancy (paper §5.1): four schedulers on short flows over
//! two lossy subflows, comparing mean flow-completion time (FCT) and
//! transmission overhead.
//!
//! Expected ranking for short flows (Fig. 10b): every redundant flavour
//! beats the default scheduler, and `RedundantIfNoQ` — which never delays
//! fresh packets — performs best overall.
//!
//! Run with: `cargo run --release --example redundant_latency`

use progmp::prelude::*;

const FLOW_BYTES: u64 = 8 * 1400; // an 8-packet flow
const FLOWS: usize = 40;
const LOSS: f64 = 0.02;

fn mean_fct(scheduler_src: &str, seed: u64) -> (f64, f64) {
    let mut total_fct = 0.0;
    let mut total_overhead = 0.0;
    for flow in 0..FLOWS {
        let mut sim = Sim::new(seed + flow as u64);
        let cfg = ConnectionConfig::new(
            vec![
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(20), 1_250_000).with_loss(LOSS),
                ),
                SubflowConfig::new(
                    PathConfig::symmetric(from_millis(30), 1_250_000).with_loss(LOSS),
                ),
            ],
            SchedulerSpec::dsl(scheduler_src),
        )
        .with_timelines();
        let conn = sim.add_connection(cfg).unwrap();
        sim.app_send_at(conn, 0, FLOW_BYTES, 0);
        sim.run_to_completion(30 * SECONDS);
        let c = &sim.connections[conn];
        let fct = c
            .stats
            .delivery_time_of(FLOW_BYTES)
            .expect("flow completed");
        total_fct += fct as f64 / 1e6; // ms
        total_overhead += c.stats.overhead_ratio();
    }
    (total_fct / FLOWS as f64, total_overhead / FLOWS as f64)
}

fn main() {
    println!(
        "Short flows ({} packets) over 2 subflows with {:.0}% loss, {} runs each\n",
        FLOW_BYTES / 1400,
        LOSS * 100.0,
        FLOWS
    );
    println!(
        "{:<26} {:>14} {:>10}",
        "scheduler", "mean FCT (ms)", "overhead"
    );

    let candidates = [
        ("default (minRTT)", schedulers::DEFAULT_MIN_RTT),
        ("redundant (existing)", schedulers::REDUNDANT),
        (
            "opportunisticRedundant",
            schedulers::OPPORTUNISTIC_REDUNDANT,
        ),
        ("redundantIfNoQ", schedulers::REDUNDANT_IF_NO_Q),
    ];
    let mut results = Vec::new();
    for (name, src) in candidates {
        let (fct, overhead) = mean_fct(src, 777);
        println!("{name:<26} {fct:>14.2} {overhead:>9.2}x");
        results.push((name, fct));
    }

    let default_fct = results[0].1;
    let best_redundant = results[1..]
        .iter()
        .map(|(_, f)| *f)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nBest redundant flavour improves mean FCT by {:.0}% over the default scheduler.",
        (1.0 - best_redundant / default_fct) * 100.0
    );
    assert!(
        best_redundant < default_fct,
        "redundancy must help short flows in lossy networks"
    );
}
